//! Umbrella crate for the coMtainer reproduction workspace.
//!
//! This crate only re-exports the member crates so that workspace-level
//! examples (`examples/`) and integration tests (`tests/`) can reach the
//! whole system through one dependency. The actual functionality lives in
//! the `crates/` members; start with [`comtainer`] for the paper's core
//! contribution.

pub use comt_analyze as analyze;
pub use comt_buildsys as buildsys;
pub use comt_digest as digest;
pub use comt_oci as oci;
pub use comt_perfsim as perfsim;
pub use comt_pkg as pkg;
pub use comt_tar as tar;
pub use comt_toolchain as toolchain;
pub use comt_vfs as vfs;
pub use comt_workloads as workloads;
pub use comtainer as core;
