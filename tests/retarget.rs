//! `comt retarget`: the audit-gated multi-ISA fan-out. One extended image
//! rebuilds for N microarchitectures concurrently over one shared artifact
//! cache — the paper's adaptability claim (§4.2), pluralized for a
//! heterogeneous fleet — with the ISA-compatibility audit (COMT-A001/A005)
//! gating admission so an unsatisfiable target set never spends a compile.

use bytes::Bytes;
use comt_bench::Lab;
use comtainer_suite::buildsys::{Builder, Executor};
use comtainer_suite::core::cache::{load_rebuild, write_cache};
use comtainer_suite::core::models::{BuildGraph, ImageModel, ProcessModels};
use comtainer_suite::core::{
    comtainer_build_mode, comtainer_retarget, ArtifactCache, CacheMode, RebuildOptions,
    SystemSide,
};
use comtainer_suite::oci::layout::OciDir;
use comtainer_suite::pkg::catalog;
use comtainer_suite::toolchain::Toolchain;
use comt_workloads::{containerfile, source_tree};
use std::collections::BTreeMap;

fn side() -> SystemSide {
    SystemSide::native("x86_64", catalog::MINI_SCALE).unwrap()
}

/// Build the minife extended image in the given cache mode; return the lab,
/// layout and extended ref, ready for a fan-out.
fn build_extended(mode: CacheMode) -> (Lab, OciDir, String) {
    let isa = "x86_64";
    let scale = catalog::MINI_SCALE;
    let mut lab = Lab::new(isa, scale);

    let context = source_tree("minife", isa, scale).unwrap();
    let cf = containerfile("minife", isa).unwrap();
    let executor = Executor::new(isa, vec![Toolchain::distro_gcc()])
        .with_repo(catalog::generic_repo_scaled(isa, scale));
    let env_image = lab.stock.env.clone();
    let base_image = lab.stock.base.clone();
    let mut builder = Builder::new(&mut lab.store, executor);
    builder.tag("comt:x86-64.env", &env_image);
    builder.tag("comt:x86-64.base", &base_image);
    let result = builder.build("minife", &cf, &context).unwrap();

    let mut oci = OciDir::new();
    oci.export(
        "minife.dist",
        result.images["dist"].manifest_digest,
        &lab.store,
    )
    .unwrap();
    let base_fs = comtainer_suite::oci::flatten(&lab.store, &lab.stock.base).unwrap();
    let ext = comtainer_build_mode(
        &mut oci,
        "minife.dist",
        &result.containers["build"],
        &result.traces["build"],
        &base_fs,
        mode,
    )
    .unwrap();
    (lab, oci, ext)
}

fn targets(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

#[test]
fn unsatisfiable_target_set_aborts_before_any_build() {
    // One object explicitly requires an x86 feature (avx2), another an
    // AArch64 one (neon): each passes one of the requested targets, no
    // single target passes both — COMT-A005, the ISSUE's mutually-
    // unsatisfiable set. The gate must refuse before any engine runs.
    let mut store = comtainer_suite::oci::BlobStore::new();
    let mut dist_fs = comtainer_suite::vfs::Vfs::new();
    dist_fs
        .write_file_p("/app/run", Bytes::from_static(b"BIN"), 0o755)
        .unwrap();
    let img = comtainer_suite::oci::ImageBuilder::from_scratch("x86_64")
        .with_layer_from_fs(&comtainer_suite::vfs::Vfs::new(), &dist_fs)
        .commit(&mut store)
        .unwrap();
    let mut oci = OciDir::new();
    oci.export("app.dist", img.manifest_digest, &store).unwrap();

    let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
    let trace = comtainer_suite::buildsys::BuildTrace {
        commands: vec![
            comtainer_suite::buildsys::RawCommand {
                argv: argv("gcc -O2 -mavx2 -c x.c -o x.o"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec![],
                outputs: vec![],
            },
            comtainer_suite::buildsys::RawCommand {
                argv: argv("gcc -O2 -mneon -c a.c -o a.o"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec![],
                outputs: vec![],
            },
        ],
    };
    let models = ProcessModels {
        image: ImageModel::default(),
        graph: BuildGraph::new(),
        isa: "x86_64".into(),
        cache_mode: Default::default(),
        targets: vec![],
    };
    write_cache(&mut oci, "app.dist", &models, &trace, &BTreeMap::new()).unwrap();

    let err = comtainer_suite::analyze::retarget_audited(
        &mut oci,
        "app.dist+coM",
        &side(),
        &targets(&["x86-64-v4", "armv8-a"]),
        &RebuildOptions::default(),
    )
    .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("COMT-A005"), "{text}");
    assert!(text.contains("unsatisfiable"), "{text}");
    // Aborted before any build: no per-target rebuilt ref ever appeared.
    assert!(
        oci.index.ref_names().iter().all(|r| !r.contains("+coMre@")),
        "{:?}",
        oci.index.ref_names()
    );
}

#[test]
fn clean_fanout_produces_per_target_images() {
    let (_lab, mut oci, ext) = build_extended(CacheMode::Source);
    let side = side();
    // minife carries an explicit -mavx2 step, so x86-64-v2 would (rightly)
    // fail the admission audit; fan out over the AVX2-capable tiers.
    let wanted = targets(&["x86-64-v3", "x86-64-v4", "icelake-server"]);
    let (outcome, audit) = comtainer_suite::analyze::retarget_audited(
        &mut oci,
        &ext,
        &side,
        &wanted,
        &RebuildOptions::default(),
    )
    .unwrap();
    assert!(!audit.has_errors());
    assert_eq!(outcome.report.counter("retarget.targets"), 3);

    // One registered image per target, named <base>+coMre@<target>.
    assert_eq!(outcome.images.len(), 3);
    let mut per_target: Vec<(String, BTreeMap<String, Bytes>)> = Vec::new();
    for (target, new_ref) in &outcome.images {
        assert_eq!(new_ref, &format!("minife.dist+coMre@{target}"));
        assert!(oci.index.find_ref(new_ref).is_some(), "{new_ref} registered");
        per_target.push((target.clone(), load_rebuild(&oci, new_ref).unwrap()));
    }

    // Every target rebuilt the same artifact set…
    let paths: Vec<Vec<&String>> = per_target
        .iter()
        .map(|(_, a)| a.keys().collect())
        .collect();
    assert!(paths.windows(2).all(|w| w[0] == w[1]), "same artifact sets");

    // …and the images differ only in target-dependent objects: each
    // binary carries its own march, while the symbol surface (the
    // target-invariant half) is identical across the fan-out.
    let mut defined = Vec::new();
    for (target, artifacts) in &per_target {
        let bin = comtainer_suite::toolchain::artifact::read_linked(&artifacts["/app/minife"])
            .unwrap();
        assert_eq!(
            bin.target.as_ref().unwrap().march.as_str(),
            target.as_str(),
            "binary pinned to its fan-out target"
        );
        defined.push(bin.defined.clone());
    }
    assert!(defined.windows(2).all(|w| w[0] == w[1]));
    // Distinct targets produced distinct bytes (the per-target split is
    // real, not three copies of one rebuild).
    let bins: Vec<&Bytes> = per_target.iter().map(|(_, a)| &a["/app/minife"]).collect();
    assert!(bins[0] != bins[1] && bins[1] != bins[2]);
}

#[test]
fn warm_fanout_over_shared_cache_executes_zero_compiles() {
    let (_lab, mut oci, ext) = build_extended(CacheMode::Source);
    let side = side();
    let wanted = targets(&["x86-64-v2", "x86-64-v3"]);
    let shared = ArtifactCache::new();
    let opts = RebuildOptions {
        artifact_cache: Some(std::sync::Arc::clone(&shared)),
        ..Default::default()
    };

    let cold = comtainer_retarget(&mut oci, &ext, &side, &wanted, &opts).unwrap();
    for t in &wanted {
        assert!(
            cold.report.counter(&format!("retarget.exec.compile.{t}")) > 0,
            "cold run compiles for {t}"
        );
    }

    let warm = comtainer_retarget(&mut oci, &ext, &side, &wanted, &opts).unwrap();
    for t in &wanted {
        assert_eq!(
            warm.report.counter(&format!("retarget.exec.compile.{t}")),
            0,
            "warm run reuses every step for {t}"
        );
        assert!(warm.report.counter(&format!("retarget.cache.hit.{t}")) > 0);
    }
    // Identical artifacts either way (⇒ identical layer digests).
    for (target, new_ref) in &warm.images {
        let a = load_rebuild(&oci, new_ref).unwrap();
        let b = load_rebuild(
            &oci,
            cold.images
                .iter()
                .find(|(t, _)| t == target)
                .map(|(_, r)| r.as_str())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn ir_mode_retarget_skips_frontend_and_warm_runs_skip_backend() {
    // IR-mode cache: the front-end never runs during a retarget (the IR
    // objects ship in the cache layer), and with the split IR/object keys
    // a warm fan-out skips the back-end too.
    let (_lab, mut oci, ext) = build_extended(CacheMode::Ir);
    let side = side();
    let wanted = targets(&["x86-64-v2", "icelake-server"]);
    let shared = ArtifactCache::new();
    let opts = RebuildOptions {
        artifact_cache: Some(std::sync::Arc::clone(&shared)),
        ..Default::default()
    };

    let cold = comtainer_retarget(&mut oci, &ext, &side, &wanted, &opts).unwrap();
    // Zero front-end executions in IR mode — ever.
    assert_eq!(cold.report.counter("exec.compile"), 0);
    for t in &wanted {
        assert!(cold.report.counter(&format!("retarget.exec.recodegen.{t}")) > 0);
        assert_eq!(cold.report.counter(&format!("retarget.ir_hits.{t}")), 0);
    }

    let warm = comtainer_retarget(&mut oci, &ext, &side, &wanted, &opts).unwrap();
    assert_eq!(warm.report.counter("exec.compile"), 0);
    for t in &wanted {
        assert_eq!(
            warm.report.counter(&format!("retarget.exec.recodegen.{t}")),
            0,
            "warm IR retarget executes zero back-end steps for {t}"
        );
    }
    assert!(warm.report.counter("retarget.ir_hits") > 0);

    // Each target's binary really is retargeted off the shared IR.
    for (target, new_ref) in &warm.images {
        let artifacts = load_rebuild(&oci, new_ref).unwrap();
        let bin = comtainer_suite::toolchain::artifact::read_linked(&artifacts["/app/minife"])
            .unwrap();
        assert_eq!(bin.target.as_ref().unwrap().march.as_str(), target.as_str());
    }
}
