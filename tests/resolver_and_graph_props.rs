//! Property tests over the dependency resolver and the build graph:
//! structural invariants for randomly generated inputs.

use comtainer_suite::core::models::{BuildGraph, CompilationModel};
use comtainer_suite::pkg::{resolve_install, Dependency, Package, Repository};
use proptest::prelude::*;

/// A random acyclic dependency universe: package i may depend on packages
/// with larger indices (guaranteeing a DAG).
fn arb_universe() -> impl Strategy<Value = Vec<Vec<prop::sample::Index>>> {
    prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 0..4), 2..20)
}

fn build_repo(universe: &[Vec<prop::sample::Index>]) -> Repository {
    let n = universe.len();
    let mut repo = Repository::new("prop");
    for (i, deps) in universe.iter().enumerate() {
        let dep_names: Vec<String> = deps
            .iter()
            .map(|idx| {
                // Only depend "forward" to keep the universe acyclic.
                let j = i + 1 + (idx.index(n - i).saturating_sub(1)).min(n - i - 1);
                format!("pkg{}", j.min(n - 1))
            })
            .filter(|d| d != &format!("pkg{i}"))
            .collect();
        let mut p = Package::new(&format!("pkg{i}"), "1.0-1", "amd64");
        if !dep_names.is_empty() {
            p = p.with_depends(&dep_names.join(", "));
        }
        repo.add(p);
    }
    repo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Resolution of any package in an acyclic universe succeeds, contains
    /// the request, is dependency-closed, duplicate-free, and ordered with
    /// dependencies before dependents.
    #[test]
    fn resolver_invariants(universe in arb_universe(), pick in any::<prop::sample::Index>()) {
        let repo = build_repo(&universe);
        let target = format!("pkg{}", pick.index(universe.len()));
        let dep: Dependency = target.parse().unwrap();
        let closure = resolve_install(&repo, &[dep]).unwrap();

        // Contains the request.
        prop_assert!(closure.iter().any(|p| p.name == target));
        // Duplicate-free.
        let mut names: Vec<&str> = closure.iter().map(|p| p.name.as_str()).collect();
        let len = names.len();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), len);
        // Closed + ordered: every dependency of an element appears earlier.
        for (i, p) in closure.iter().enumerate() {
            for d in &p.depends {
                let name = &d.alternatives[0].name;
                let pos = closure.iter().position(|q| q.satisfies_name(name));
                prop_assert!(pos.is_some(), "closure misses {name}");
                prop_assert!(pos.unwrap() < i, "{name} must precede {}", p.name);
            }
        }
    }

    /// Random build traces (object per source, batched archives, one link)
    /// always yield an acyclic graph whose topological levels respect
    /// dependencies, and whose required leaves are exactly the sources.
    #[test]
    fn build_graph_invariants(n_units in 1usize..40, batch in 2usize..8) {
        let mut g = BuildGraph::new();
        let cmd = |s: &str| {
            let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
            CompilationModel::classify(&argv, "/src", &[], &[])
        };
        for i in 0..n_units {
            g.record_production(
                &format!("/src/u{i}.o"),
                &[format!("/src/u{i}.c")],
                cmd(&format!("gcc -c u{i}.c")),
            );
        }
        let mut archives = Vec::new();
        for (a, chunk) in (0..n_units).collect::<Vec<_>>().chunks(batch).enumerate() {
            let members: Vec<String> = chunk.iter().map(|i| format!("/src/u{i}.o")).collect();
            let ar = format!("/src/lib{a}.a");
            g.record_production(&ar, &members, cmd(&format!("ar rcs lib{a}.a …")));
            archives.push(ar);
        }
        g.record_production("/src/app", &archives, cmd("gcc -o app …"));

        let levels = g.topo_levels().unwrap();
        // Three strata: objects, archives, binary.
        prop_assert_eq!(levels.len(), 3);
        prop_assert_eq!(levels[0].len(), n_units);
        prop_assert_eq!(levels[2].len(), 1);
        // Every node's deps live in strictly earlier levels.
        let level_of = |id| levels.iter().position(|l| l.contains(&id));
        for node in g.products() {
            let my_level = level_of(node.id).unwrap();
            for d in &node.deps {
                if let Some(dl) = level_of(*d) {
                    prop_assert!(dl < my_level);
                }
            }
        }
        // Required leaves of the binary = all sources.
        let app = g.by_path("/src/app").unwrap().id;
        let leaves = g.required_leaves(&[app]);
        prop_assert_eq!(leaves.len(), n_units);
        prop_assert!(leaves.iter().all(|n| n.path.ends_with(".c")));
    }
}
