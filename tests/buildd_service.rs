//! End-to-end multi-tenant rebuild service: a real coMtainer extended
//! image served by `comt buildd` over the loopback wire. Multiple tenants
//! submit concurrent rebuild jobs through one shared engine; the shared
//! content-addressed artifact cache must make a repeat workload compile
//! nothing, per-tenant quotas must hold under contention, and every
//! remote submitter must receive the same observe report a local
//! `comt rebuild --stats` run would print.

use comt_bench::Lab;
use comt_dist::{serve_buildd, BuilddClient, HttpOptions, JobRequest};
use comtainer::{
    load_cache, rebuild_artifacts_with_report, BuildService, RebuildOptions, ServiceOptions,
    SystemSide,
};
use comtainer_suite::pkg::catalog;
use std::time::Duration;

const EXT_REF: &str = "hpccg.dist+coM";
const DEADLINE: Duration = Duration::from_secs(120);

#[test]
fn concurrent_tenants_share_cache_over_the_wire() {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("hpccg");

    // Reference run: what a *local* `comt rebuild --stats` would report
    // for this workload. Captured before the layout moves into the
    // daemon, against the same cache contents the daemon will load.
    let contents = load_cache(&art.oci, EXT_REF).expect("extended image has cache layers");
    let side = SystemSide::native("x86_64", catalog::MINI_SCALE).unwrap();
    let (local_artifacts, local_report) =
        rebuild_artifacts_with_report(&contents, &side, &RebuildOptions::default()).unwrap();
    assert!(local_report.counter("steps.total") > 0);

    // Daemon: 2 workers, quota 1 job per tenant, paused so all four jobs
    // are queued before any dispatch — maximum contention for the
    // fairness and quota checks below.
    let svc = BuildService::start(
        art.oci,
        ServiceOptions {
            workers: 2,
            default_quota: 1,
            paused: true,
            ..Default::default()
        },
    );
    let server = serve_buildd(
        std::sync::Arc::clone(&svc),
        "127.0.0.1:0",
        HttpOptions::default(),
    )
    .unwrap();
    let client = BuilddClient::new(server.addr().to_string());

    // Four concurrent jobs from two tenants, all for the same workload.
    let mut ids = Vec::new();
    for tenant in ["alice", "alice", "bob", "bob"] {
        let status = client.submit(&JobRequest::new(tenant, EXT_REF)).unwrap();
        assert_eq!(status.state, "queued");
        assert_eq!(status.tenant, tenant);
        ids.push(status.id);
    }
    let listed = client.list(None).unwrap();
    assert_eq!(listed.len(), 4);
    assert_eq!(client.list(Some("alice")).unwrap().len(), 2);
    svc.resume();

    let mut finals = Vec::new();
    for &id in &ids {
        let fin = client.wait(id, DEADLINE).unwrap();
        assert_eq!(fin.state, "done", "job {id}: {:?}", fin.error);
        assert_eq!(fin.result_ref.as_deref(), Some("hpccg.dist+coMre"));
        finals.push(fin);
    }

    // Per-tenant quota held under contention: with quota 1 and 2 workers,
    // no tenant ever had two jobs running at once.
    let stats = client.stats().unwrap();
    for tenant in ["alice", "bob"] {
        let peak = stats.counter(&format!("service.tenant.{tenant}.running_max"));
        assert_eq!(peak, 1, "tenant {tenant} exceeded its quota");
    }
    assert_eq!(stats.counter("service.jobs.done"), 4);

    // Every submitter's streamed report matches the local --stats run on
    // the engine's deterministic dimensions: same step counts, same
    // artifact count, same pipeline stages.
    for (&id, fin) in ids.iter().zip(&finals) {
        let report = client
            .report(id)
            .unwrap()
            .expect("done job streams its report");
        for counter in [
            "steps.total",
            "steps.compile",
            "steps.other",
            "collect.artifacts",
            "materialize.files",
        ] {
            assert_eq!(
                report.counter(counter),
                local_report.counter(counter),
                "job {id} ({}) diverged from local --stats on {counter}",
                fin.tenant
            );
        }
        for stage in ["stage.materialize", "stage.replay", "stage.collect"] {
            assert_eq!(
                report.span(stage).count,
                local_report.span(stage).count,
                "job {id} missing pipeline stage {stage}"
            );
        }
        assert_eq!(
            report.counter("collect.artifacts"),
            local_artifacts.len() as u64
        );
    }

    // A fifth job from a new tenant, after the cache is fully warm:
    // the shared artifact cache must satisfy every compile step, so the
    // engine execs zero compiles.
    let warm = client.submit(&JobRequest::new("carol", EXT_REF)).unwrap();
    let fin = client.wait(warm.id, DEADLINE).unwrap();
    assert_eq!(fin.state, "done", "warm job: {:?}", fin.error);
    let warm_report = client.report(warm.id).unwrap().expect("warm job report");
    assert_eq!(
        warm_report.counter("exec.compile"),
        0,
        "warm repeat workload must compile nothing:\n{}",
        warm_report.render()
    );
    assert!(
        warm_report.counter("cache.hit") >= 1,
        "warm job should hit the shared cache:\n{}",
        warm_report.render()
    );
    // Same workload, same outputs — only the cache path differs.
    assert_eq!(
        warm_report.counter("collect.artifacts"),
        local_report.counter("collect.artifacts")
    );

    // Log streaming is resumable: fetching from a mid-stream offset
    // returns exactly the suffix of the full log.
    let (full, next, done) = client.log(warm.id, 0).unwrap();
    assert!(done, "terminal job log is complete");
    assert_eq!(next, full.len());
    assert!(full.contains("engine finished"), "{full}");
    let mid = full.len() / 2;
    let (suffix, _, _) = client.log(warm.id, mid).unwrap();
    assert_eq!(suffix, full[mid..], "offset fetch must resume, not restart");

    let svc = server.shutdown();
    let report = svc.stats();
    assert_eq!(report.counter("service.jobs.done"), 5);
    assert!(report.counter("service.cache.hits") >= 1);
}
