//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs across the substrate boundary.

use bytes::Bytes;
use comtainer_suite::oci::{flatten, BlobStore, ImageBuilder};
use comtainer_suite::pkg::Version;
use comtainer_suite::toolchain::parse_source;
use comtainer_suite::vfs::Vfs;
use proptest::prelude::*;

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z]{1,6}", 1..4).prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Building an image from arbitrary filesystem states and flattening it
    /// reproduces the state exactly — the OCI layer pipeline is lossless.
    #[test]
    fn image_build_flatten_roundtrip(
        files in prop::collection::btree_map(arb_path(), prop::collection::vec(any::<u8>(), 0..128), 1..20)
    ) {
        let mut fs = Vfs::new();
        for (p, content) in &files {
            // Later writes may conflict with earlier dirs; skip those.
            let _ = fs.write_file_p(p, Bytes::from(content.clone()), 0o644);
        }
        let mut store = BlobStore::new();
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        prop_assert_eq!(flatten(&store, &img).unwrap(), fs);
    }

    /// Two-layer builds flatten identically to the final state.
    #[test]
    fn two_layer_flatten(
        files_a in prop::collection::btree_map(arb_path(), any::<u8>(), 1..12),
        files_b in prop::collection::btree_map(arb_path(), any::<u8>(), 1..12),
    ) {
        let mut base = Vfs::new();
        for (p, b) in &files_a {
            let _ = base.write_file_p(p, Bytes::from(vec![*b]), 0o644);
        }
        let mut upper = base.clone();
        for (p, b) in &files_b {
            let _ = upper.write_file_p(p, Bytes::from(vec![*b, *b]), 0o644);
        }
        let mut store = BlobStore::new();
        let base_img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &base)
            .commit(&mut store)
            .unwrap();
        let app = ImageBuilder::from_base(&store, &base_img)
            .unwrap()
            .with_layer_from_fs(&base, &upper)
            .commit(&mut store)
            .unwrap();
        prop_assert_eq!(flatten(&store, &app).unwrap(), upper);
    }

    /// Debian version comparison is a total order: antisymmetric and
    /// transitive over arbitrary version strings.
    #[test]
    fn version_order_is_total(
        raw in prop::collection::vec("[0-9]{1,3}(\\.[0-9]{1,3}){0,2}(~rc[0-9])?(-[0-9a-z]{1,6})?", 3)
    ) {
        let v: Vec<Version> = raw.iter().map(|s| Version::new(s)).collect();
        // Antisymmetry.
        for a in &v {
            for b in &v {
                if a < b {
                    prop_assert!(b > a);
                    prop_assert!(a != b);
                }
            }
        }
        // Transitivity.
        if v[0] <= v[1] && v[1] <= v[2] {
            prop_assert!(v[0] <= v[2]);
        }
    }

    /// Minification never changes the semantics the rebuild depends on.
    #[test]
    fn minify_preserves_annotations(
        provides in prop::collection::vec("[a-z_][a-z0-9_]{0,10}", 1..5),
        externs in prop::collection::vec("[a-z]{1,5}:[a-z_]{1,8}", 0..4),
        kernel_val in 0.0f64..1e15,
        filler in prop::collection::vec("[a-z0-9 +*=\\[\\];]{0,60}", 0..30),
    ) {
        let mut src = format!("#pragma comt provides({})\n", provides.join(", "));
        if !externs.is_empty() {
            src.push_str(&format!("#pragma comt extern({})\n", externs.join(", ")));
        }
        src.push_str(&format!("#pragma comt kernel(flops={kernel_val})\n"));
        for line in &filler {
            src.push_str(line);
            src.push('\n');
        }
        let min = comtainer_suite::core::minify::minify_source(&src);
        let orig = parse_source(&src);
        let back = parse_source(&min);
        prop_assert_eq!(back.provides, orig.provides);
        prop_assert_eq!(back.externs, orig.externs);
        prop_assert_eq!(back.kernel, orig.kernel);
    }

    /// Command lines round-trip through parse/unparse for arbitrary mixes
    /// of known options.
    #[test]
    fn cmdline_roundtrip(
        opts in prop::collection::vec(
            prop_oneof![
                Just("-O2".to_string()),
                Just("-O3".to_string()),
                Just("-c".to_string()),
                Just("-fopenmp".to_string()),
                Just("-flto".to_string()),
                Just("-ffast-math".to_string()),
                Just("-Wall".to_string()),
                "[a-z]{1,8}\\.c".prop_map(|f| f),
                "-I[a-z]{1,8}".prop_map(|f| f),
                "-D[A-Z]{1,8}=1".prop_map(|f| f),
                "-l[a-z]{1,6}".prop_map(|f| f),
                "-march=[a-z0-9-]{2,12}".prop_map(|f| f),
            ],
            0..12,
        )
    ) {
        let mut argv = vec!["gcc".to_string()];
        argv.extend(opts);
        if let Ok(inv) = comtainer_suite::toolchain::CompilerInvocation::parse(&argv) {
            prop_assert_eq!(inv.to_argv(), argv);
        }
    }
}
