//! End-to-end distribution: a real coMtainer extended image over the
//! loopback wire, with injected mid-blob disconnects. The workflow the
//! subsystem exists for — `comt push --remote` on the build host, `comt
//! pull --remote` on the compute site — must deliver a bit-identical
//! closure even when connections die partway through a blob.

use comt_bench::Lab;
use comt_dist::{serve, split_ref, tag_key, Chaos, DistClient, ServerOptions};
use comt_oci::store::closure_digests;
use comt_oci::{BlobStore, Registry};
use comtainer_suite::pkg::catalog;

#[test]
fn extended_image_survives_mid_blob_disconnects() {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("hpccg");
    let r = "hpccg.dist+coM";
    let md = art.oci.resolve(r).unwrap();
    let (name, tag) = split_ref(r);

    // The daemon truncates the first 4 blob GET responses after 512 bytes
    // and drops the connection — the client must resume, not restart.
    let server = serve(
        Registry::new(),
        "127.0.0.1:0",
        ServerOptions {
            chaos: Some(Chaos {
                truncate_blob_gets: 4,
                truncate_after: 512,
                ..Chaos::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let client = DistClient::new(server.addr().to_string());

    let pushed = client.push_image(name, tag, md, &art.oci.blobs).unwrap();
    assert!(pushed.blobs_moved >= 3, "manifest + config + layers");

    comt_observe::global().reset();
    let mut pulled = BlobStore::new();
    let (got, stats) = client.pull_image(name, tag, &mut pulled).unwrap();
    assert_eq!(got, md);
    assert_eq!(stats.blobs_moved, pushed.blobs_moved);

    // Bit-identical closure on the pull side, every blob digest-checked
    // against the build host's bytes.
    for d in closure_digests(&art.oci.blobs, &md).unwrap() {
        assert_eq!(
            pulled.get(&d).unwrap(),
            art.oci.blobs.get(&d).unwrap(),
            "blob {d} corrupted in transit"
        );
    }
    // The kills really happened and were survived by Range resume.
    assert!(
        comt_observe::global().counter("dist.client.resumes") >= 1,
        "expected at least one mid-blob resume"
    );

    let reg = server.shutdown();
    assert_eq!(reg.resolve(&tag_key(name, tag)), Some(md));
}

#[test]
fn shared_layers_dedupe_across_pushed_refs() {
    // The extended image shares every original layer with the dist image;
    // pushing both must move the shared blobs once, and pulling the
    // extended image into a store that already has the dist closure must
    // only fetch the delta (the cache layer + new manifest/config).
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("hpccg");
    let dist_md = art.oci.resolve("hpccg.dist").unwrap();
    let ext_md = art.oci.resolve("hpccg.dist+coM").unwrap();

    let server = serve(Registry::new(), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let client = DistClient::new(server.addr().to_string());

    let first = client
        .push_image("hpccg.dist", "latest", dist_md, &art.oci.blobs)
        .unwrap();
    assert_eq!(first.blobs_skipped, 0);
    let second = client
        .push_image("hpccg.dist+coM", "latest", ext_md, &art.oci.blobs)
        .unwrap();
    assert!(
        second.blobs_skipped >= first.blobs_moved - 2,
        "original layers should dedupe via HEAD: {second:?}"
    );

    // Pull the dist image, then the extended one into the same store: the
    // second pull only moves what the first didn't deliver.
    let mut site = BlobStore::new();
    client.pull_image("hpccg.dist", "latest", &mut site).unwrap();
    let (got, delta) = client
        .pull_image("hpccg.dist+coM", "latest", &mut site)
        .unwrap();
    assert_eq!(got, ext_md);
    assert!(
        delta.blobs_skipped >= 1,
        "shared layers should not transfer twice: {delta:?}"
    );
    for d in closure_digests(&art.oci.blobs, &ext_md).unwrap() {
        assert_eq!(site.get(&d).unwrap(), art.oci.blobs.get(&d).unwrap());
    }
    drop(server);
}
