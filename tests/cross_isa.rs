//! Cross-ISA integration (paper §5.5): extended images built on x86-64
//! processed on the AArch64 system side.

use comt_bench::Lab;
use comtainer_suite::core::crossisa::{analyze_cross, Blocker};
use comtainer_suite::core::{load_cache, rebuild_artifacts, RebuildOptions, SystemSide};
use comtainer_suite::pkg::catalog;

#[test]
fn isa_locked_app_is_blocked() {
    // comd carries ISA-specific source (its SIMD force loops): the
    // analysis flags it and the rebuild genuinely fails.
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("comd");
    let cache = load_cache(&art.oci, "comd.dist+coM").unwrap();

    let report = analyze_cross(&cache, "aarch64");
    assert!(!report.portable());
    assert!(!report.portable_with_script_edits());
    assert!(report
        .blockers
        .iter()
        .any(|b| matches!(b, Blocker::IsaSpecificSource { isa, .. } if isa == "x86_64")));

    let arm = SystemSide::native("aarch64", catalog::MINI_SCALE).unwrap();
    let err = rebuild_artifacts(&cache, &arm, &RebuildOptions::default()).unwrap_err();
    assert!(err.to_string().contains("ISA-specific"), "{err}");
}

#[test]
fn flag_blocked_app_crosses_with_script_edits() {
    // minimd's only x86-ism is a `-mfma` flag: analysis says
    // script-fixable, and dropping the flag makes the rebuild succeed on
    // the AArch64 system with its native toolchain.
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("minimd");
    let cache = load_cache(&art.oci, "minimd.dist+coM").unwrap();

    let report = analyze_cross(&cache, "aarch64");
    assert!(!report.portable());
    assert!(report.portable_with_script_edits());

    let arm = SystemSide::native("aarch64", catalog::MINI_SCALE).unwrap();
    // Unmodified: fails (the flag would mean nothing / break on aarch64 —
    // our model rejects the foreign-ISA flag via the compile).
    assert!(rebuild_artifacts(&cache, &arm, &RebuildOptions::default()).is_err());

    // The "minor modification": strip the flag from the recorded commands.
    let mut ported = load_cache(&art.oci, "minimd.dist+coM").unwrap();
    for cmd in &mut ported.trace.commands {
        cmd.argv.retain(|t| t != "-mfma");
    }
    let artifacts = rebuild_artifacts(&ported, &arm, &RebuildOptions::default()).unwrap();
    let bin =
        comtainer_suite::toolchain::artifact::read_linked(&artifacts["/app/minimd"]).unwrap();
    assert_eq!(bin.target.as_ref().unwrap().isa, "aarch64");
    assert_eq!(bin.opt.toolchain, "vendor-arm");
}

#[test]
fn same_isa_rebuild_never_blocked() {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("comd");
    let cache = load_cache(&art.oci, "comd.dist+coM").unwrap();
    assert!(analyze_cross(&cache, "x86_64").portable());
}
