//! Crash-consistency: a layout damaged the way a killed process (or bad
//! disk) leaves it must be refused by `OciDir::load`, diagnosed by fsck,
//! and after `--repair` serve every surviving tag bit-identically.

use bytes::Bytes;
use comt_dist::{serve, tag_key, DistClient, ServerOptions};
use comtainer_suite::oci::fsck::{fsck, FsckOptions};
use comtainer_suite::oci::layout::{LayoutError, OciDir};
use comtainer_suite::oci::spec::{Descriptor, MediaType};
use comtainer_suite::oci::store::{closure_digests, BlobStore};
use comtainer_suite::oci::{DiskRegistry, DiskStore, ImageBuilder};
use comt_digest::Digest;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn tmp_layout(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comt-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build a layout with one published image and return (its ref's manifest
/// digest, a byte-for-byte copy of every blob).
fn published_layout(dir: &std::path::Path) -> (Digest, BTreeMap<Digest, Bytes>) {
    let mut oci = OciDir::new();
    let image = ImageBuilder::from_scratch("x86_64")
        .with_layer_tar(Bytes::from_static(b"app layer tar bytes"), "layer one")
        .with_layer_tar(Bytes::from_static(b"config layer tar bytes"), "layer two")
        .commit(&mut oci.blobs)
        .unwrap();
    let size = oci.blobs.get(&image.manifest_digest).unwrap().len() as u64;
    oci.index.set_ref(
        "app.dist",
        Descriptor::new(MediaType::ImageManifest, image.manifest_digest, size),
    );
    oci.save(dir).unwrap();
    let blobs = oci
        .blobs
        .iter()
        .map(|(d, b)| (*d, b.clone()))
        .collect::<BTreeMap<_, _>>();
    (image.manifest_digest, blobs)
}

#[test]
fn torn_layout_is_refused_diagnosed_repaired_and_serves_bit_identically() {
    let dir = tmp_layout("torn");
    let (manifest_digest, originals) = published_layout(&dir);
    let store = DiskStore::open(&dir).unwrap();

    // Damage the layout three ways a kill -9 (or external writer) can:
    // a stray tmp file from an interrupted commit, a half-written blob
    // under a digest name, and a foreign file in the blob directory.
    std::fs::write(store.blobs_dir().join(".tmp.999-0"), b"in-flight bytes").unwrap();
    let torn = Digest::of(b"a blob whose write was interrupted");
    std::fs::write(store.blob_path(&torn), b"only half of the").unwrap();
    std::fs::write(store.blobs_dir().join("not-a-digest"), b"???").unwrap();

    // The eager loader refuses torn state outright.
    match OciDir::load(&dir) {
        Err(LayoutError::Torn { .. }) | Err(LayoutError::DigestMismatch { .. }) => {}
        other => panic!("load accepted a torn layout: {other:?}"),
    }

    // fsck without --repair diagnoses every damage shape and changes
    // nothing on disk.
    let report = fsck(&dir, &FsckOptions { repair: false }).unwrap();
    let codes: Vec<&str> = report.findings.iter().map(|f| f.code).collect();
    assert_eq!(codes, ["COMT-F001", "COMT-F003", "COMT-F005"], "{codes:?}");
    assert!(report.unrepaired_errors() > 0);
    assert!(store.blob_path(&torn).exists(), "dry run must not delete");

    // --repair restores a servable layout.
    let repaired = fsck(&dir, &FsckOptions { repair: true }).unwrap();
    assert_eq!(repaired.unrepaired_errors(), 0, "{}", repaired.render_human());
    let clean = fsck(&dir, &FsckOptions { repair: false }).unwrap();
    assert!(clean.is_clean(), "{}", clean.render_human());

    // The eager loader accepts it again, every original byte intact.
    let back = OciDir::load(&dir).unwrap();
    for (d, bytes) in &originals {
        assert_eq!(back.blobs.get(d).as_ref(), Some(bytes), "{d}");
    }

    // And the published tag pulls bit-identically over the wire.
    let reg = DiskRegistry::open(&dir).unwrap();
    let server = serve(reg, "127.0.0.1:0", ServerOptions::default()).unwrap();
    let client = DistClient::new(server.addr().to_string());
    let mut pulled = BlobStore::new();
    let (got, _) = client.pull_image("app.dist", "latest", &mut pulled).unwrap();
    assert_eq!(got, manifest_digest);
    let mut source = BlobStore::new();
    for (d, b) in &originals {
        source.put_prehashed(*d, b.clone());
    }
    for d in closure_digests(&source, &manifest_digest).unwrap() {
        assert_eq!(
            &pulled.get(&d).unwrap(),
            originals.get(&d).unwrap(),
            "pulled blob {d} differs from the originally published bytes"
        );
    }
    drop(server);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_index_is_refused_and_repair_preserves_blobs() {
    let dir = tmp_layout("index");
    let (_md, originals) = published_layout(&dir);

    // Truncate index.json mid-byte (external damage: the store's own
    // commits replace it atomically).
    let raw = std::fs::read(dir.join("index.json")).unwrap();
    std::fs::write(dir.join("index.json"), &raw[..raw.len() / 2]).unwrap();

    assert!(matches!(OciDir::load(&dir), Err(LayoutError::Torn { .. })));

    let report = fsck(&dir, &FsckOptions { repair: false }).unwrap();
    assert!(report.findings.iter().any(|f| f.code == "COMT-F004"));

    let repaired = fsck(&dir, &FsckOptions { repair: true }).unwrap();
    assert_eq!(repaired.unrepaired_errors(), 0);

    // Tags in a torn index are unrecoverable, but every blob survives for
    // re-tagging / re-push.
    let back = OciDir::load(&dir).unwrap();
    assert!(back.index.ref_names().is_empty());
    assert_eq!(back.blobs.len(), originals.len());
    for (d, bytes) in &originals {
        assert_eq!(back.blobs.get(d).as_ref(), Some(bytes), "{d}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsck_passes_the_wire_tag_key_for_saved_refs() {
    // `split_ref`/`tag_key` addressing and a repaired layout agree: a ref
    // saved as a bare name answers to `name:latest` after reopen.
    let dir = tmp_layout("tagkey");
    let (md, _) = published_layout(&dir);
    let reg = DiskRegistry::open(&dir).unwrap();
    assert_eq!(reg.resolve(&tag_key("app.dist", "latest")), Some(md));
    drop(reg);
    std::fs::remove_dir_all(&dir).unwrap();
}
