//! Integration: the static verifier as a rebuild gate.
//!
//! Seeds an extended image whose recorded trace contains an unordered
//! write-write pair (two compile steps emitting the same scratch file with
//! no dependency edge between them) plus a `-march=native` invocation,
//! and proves:
//!
//! * `comt_analyze::rebuild_checked` (the `comt rebuild --check` gate)
//!   refuses the racy model with a COMT-E001 finding;
//! * adding the missing edge (declaring the scratch file as an input of
//!   the second step) makes the same gate rebuild successfully, with the
//!   portability warning still reported but not blocking;
//! * a site-modified image whose extra layer whiteouts a replay input is
//!   flagged COMT-E101 by the layer pass.

use bytes::Bytes;
use comt_buildsys::{BuildTrace, RawCommand};
use comt_oci::layout::OciDir;
use comt_oci::spec::{Descriptor, HistoryEntry, MediaType};
use comt_oci::{BlobStore, ImageBuilder};
use comt_tar::Entry;
use comt_vfs::Vfs;
use comtainer::cache::write_cache;
use comtainer::{FileOrigin, ImageModel, ProcessModels, RebuildOptions, SystemSide};
use std::collections::BTreeMap;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// Two compile steps that both write `/src/gen.tmp`. With `fixed` the
/// second step declares the scratch file as an input, which gives the
/// scheduler (and the hazard pass) the ordering edge; without it the pair
/// is an unordered write-write race.
fn trace(fixed: bool) -> BuildTrace {
    let mut util_inputs = vec!["/src/util.c".to_string()];
    if fixed {
        util_inputs.push("/src/gen.tmp".to_string());
    }
    BuildTrace {
        commands: vec![
            RawCommand {
                argv: argv("apt-get install -y libopenblas0"),
                cwd: "/".into(),
                env: vec![],
                inputs: vec![],
                outputs: vec![],
            },
            RawCommand {
                argv: argv("gcc -O2 -march=native -c main.c -o main.o"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec!["/src/main.c".into()],
                outputs: vec!["/src/main.o".into(), "/src/gen.tmp".into()],
            },
            RawCommand {
                argv: argv("gcc -O2 -c util.c -o util.o"),
                cwd: "/src".into(),
                env: vec![],
                inputs: util_inputs,
                outputs: vec!["/src/util.o".into(), "/src/gen.tmp".into()],
            },
            RawCommand {
                argv: argv("gcc main.o util.o -lopenblas -lm -o app"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec!["/src/main.o".into(), "/src/util.o".into()],
                outputs: vec!["/src/app".into()],
            },
        ],
    }
}

fn sources() -> BTreeMap<String, Bytes> {
    let mut sources = BTreeMap::new();
    sources.insert(
        "/src/main.c".to_string(),
        Bytes::from(
            "#pragma comt provides(main)\n#pragma comt requires(util)\n\
             #pragma comt extern(openblas:dgemm, m:sqrt)\n",
        ),
    );
    sources.insert(
        "/src/util.c".to_string(),
        Bytes::from("#pragma comt provides(util)\n"),
    );
    sources
}

fn models() -> ProcessModels {
    let mut image = ImageModel::default();
    image
        .files
        .insert("/app/run".into(), FileOrigin::Build("/src/app".into()));
    image.runtime_deps = vec![("libopenblas0".into(), "0.3.26+ds-1".into())];
    ProcessModels {
        image,
        graph: Default::default(),
        isa: "x86_64".into(),
        cache_mode: Default::default(),
        targets: vec![],
    }
}

/// An on-layout extended image carrying the given trace.
fn extended_layout(fixed: bool) -> OciDir {
    let mut store = BlobStore::new();
    let mut fs = Vfs::new();
    fs.write_file_p("/app/run", Bytes::from_static(b"BIN"), 0o755)
        .unwrap();
    let img = ImageBuilder::from_scratch("x86_64")
        .with_layer_from_fs(&Vfs::new(), &fs)
        .commit(&mut store)
        .unwrap();
    let mut oci = OciDir::new();
    oci.export("app.dist", img.manifest_digest, &store).unwrap();
    let new_ref = write_cache(&mut oci, "app.dist", &models(), &trace(fixed), &sources()).unwrap();
    assert_eq!(new_ref, "app.dist+coM");
    oci
}

fn side() -> SystemSide {
    SystemSide::native("x86_64", comt_pkg::catalog::MINI_SCALE).unwrap()
}

#[test]
fn check_gate_blocks_seeded_race() {
    let mut oci = extended_layout(false);
    let side = side();

    // The verifier sees the unordered write-write pair…
    let report =
        comt_analyze::check_for_side(&oci, "app.dist+coM", &side).unwrap();
    assert!(report.has_errors());
    assert!(report.diagnostics.iter().any(|d| d.code == "COMT-E001"));
    // …and the portability lint rides along as a warning.
    assert!(report.diagnostics.iter().any(|d| d.code == "COMT-W001"));
    // Both codes surface in the machine-readable output.
    let json = report.to_json();
    assert!(json.contains("\"COMT-E001\""), "{json}");
    assert!(json.contains("\"COMT-W001\""), "{json}");
    assert!(json.contains("\"/src/gen.tmp\""), "{json}");

    // The gate refuses to spend any rebuild time on the racy model.
    let err = comt_analyze::rebuild_checked(&mut oci, "app.dist+coM", &side, &RebuildOptions::default())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("COMT-E001"), "{msg}");
    assert!(msg.contains("refusing to rebuild"), "{msg}");
    // Nothing was rebuilt.
    assert!(oci.index.find_ref("app.dist+coMre").is_none());
}

#[test]
fn check_gate_passes_after_adding_edge() {
    let mut oci = extended_layout(true);
    let side = side();

    let (new_ref, report) =
        comt_analyze::rebuild_checked(&mut oci, "app.dist+coM", &side, &RebuildOptions::default())
            .unwrap();
    assert_eq!(new_ref, "app.dist+coMre");
    assert!(oci.index.find_ref("app.dist+coMre").is_some());

    // The race is gone but the -march=native warning still reports —
    // warnings inform, they do not block.
    assert!(!report.has_errors());
    assert!(report.diagnostics.iter().any(|d| d.code == "COMT-W001"));
    assert!(report.diagnostics.iter().all(|d| d.code != "COMT-E001"));

    // The rebuilt artifact actually landed in the rebuild layer.
    let artifacts = comtainer::cache::load_rebuild(&oci, "app.dist+coMre").unwrap();
    assert!(artifacts.contains_key("/app/run"));
}

#[test]
fn whiteout_shadowing_replay_input_is_flagged() {
    let mut oci = extended_layout(true);

    // A downstream site appends a "cleanup" layer whiteing out /src/main.c
    // — a path the recorded rebuild reads. Mirror the cache writer's
    // append bookkeeping with the public OCI APIs.
    let image = oci.load_image("app.dist+coM").unwrap();
    let tar = comt_tar::write_archive(&[Entry::file(
        "src/.wh.main.c".to_string(),
        Vec::new(),
        0o644,
    )])
    .unwrap();
    let diff_id = comt_digest::Digest::of(&tar).to_oci_string();
    let size = tar.len() as u64;
    let digest = oci.blobs.put(Bytes::from(tar));

    let mut manifest = image.manifest.clone();
    manifest
        .layers
        .push(Descriptor::new(MediaType::LayerTar, digest, size));
    let mut config = image.config.clone();
    config.rootfs.diff_ids.push(diff_id);
    config.history.push(HistoryEntry {
        created_by: "site cleanup".to_string(),
        empty_layer: false,
    });
    let cfg_json = comt_oci::config_to_json(&config);
    let cfg_size = cfg_json.len() as u64;
    let cfg_digest = oci.blobs.put(Bytes::from(cfg_json));
    manifest.config = Descriptor::new(MediaType::ImageConfig, cfg_digest, cfg_size);
    let man_json = comt_oci::manifest_to_json(&manifest);
    let man_size = man_json.len() as u64;
    let man_digest = oci.blobs.put(Bytes::from(man_json));
    oci.index.set_ref(
        "app.dist+site",
        Descriptor::new(MediaType::ImageManifest, man_digest, man_size),
    );

    let side = side();
    let report = comt_analyze::check_for_side(&oci, "app.dist+site", &side).unwrap();
    let e101: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "COMT-E101")
        .collect();
    assert!(!e101.is_empty(), "{}", report.render_human());
    assert_eq!(e101[0].span.file.as_deref(), Some("/src/main.c"));
    assert!(report.has_errors());
    assert!(report.to_json().contains("\"COMT-E101\""));

    // The untouched extended image in the same layout still checks clean
    // of layer errors.
    let clean = comt_analyze::check_for_side(&oci, "app.dist+coM", &side).unwrap();
    assert!(!clean.has_errors(), "{}", clean.render_human());
}
