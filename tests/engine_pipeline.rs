//! Engine-level integration: the content-addressed rebuild pipeline run
//! through the full OCI workflow. A warm artifact cache must produce a
//! bit-identical `+coMre` rebuild layer while executing zero compile
//! steps (the issue's acceptance criterion for incremental rebuilds).

use comt_bench::Lab;
use comtainer_suite::core::{
    comtainer_rebuild_with_report, ArtifactCache, RebuildOptions,
};
use comtainer_suite::pkg::catalog;
use std::sync::Arc;

/// Digest of the rebuild layer (the last layer) of the image at `name`.
fn rebuild_layer_digest(oci: &comtainer_suite::oci::layout::OciDir, name: &str) -> String {
    let image = oci.load_image(name).unwrap();
    image.manifest.layers.last().unwrap().digest.clone()
}

#[test]
fn warm_rebuild_reproduces_layer_digest_without_compiling() {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let mut art = lab.prepare_app("hpccg");
    let side = lab.system_side();

    let shared = ArtifactCache::new();
    let opts = RebuildOptions {
        artifact_cache: Some(Arc::clone(&shared)),
        ..Default::default()
    };

    // Cold: every compile step misses the cache and executes.
    let (cold_ref, cold) =
        comtainer_rebuild_with_report(&mut art.oci, "hpccg.dist+coM", &side, &opts).unwrap();
    let cold_digest = rebuild_layer_digest(&art.oci, &cold_ref);
    assert_eq!(cold.counter("cache.hit"), 0);
    assert!(cold.counter("exec.compile") > 0, "{}", cold.render());
    assert_eq!(cold.counter("cache.miss"), cold.counter("exec.compile"));

    // Warm: same inputs, same adapter chain, same toolchain — every
    // compile step must come out of the cache and the rebuild layer must
    // be bit-identical.
    let (warm_ref, warm) =
        comtainer_rebuild_with_report(&mut art.oci, "hpccg.dist+coM", &side, &opts).unwrap();
    assert_eq!(warm.counter("exec.compile"), 0, "{}", warm.render());
    assert_eq!(warm.counter("cache.miss"), 0);
    assert_eq!(warm.counter("cache.hit"), cold.counter("cache.miss"));
    assert_eq!(rebuild_layer_digest(&art.oci, &warm_ref), cold_digest);

    // The engine surfaced its stage spans end to end.
    for stage in ["stage.materialize", "stage.adapt", "stage.replay", "stage.collect"] {
        assert!(warm.span(stage).count > 0, "missing span {stage}");
    }
}

#[test]
fn parallel_rebuild_matches_serial_layer_digest() {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let mut art = lab.prepare_app("comd");
    let side = lab.system_side();

    let (serial_ref, _) = comtainer_rebuild_with_report(
        &mut art.oci,
        "comd.dist+coM",
        &side,
        &RebuildOptions::default(),
    )
    .unwrap();
    let serial_digest = rebuild_layer_digest(&art.oci, &serial_ref);

    let (par_ref, report) = comtainer_rebuild_with_report(
        &mut art.oci,
        "comd.dist+coM",
        &side,
        &RebuildOptions {
            parallel: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(rebuild_layer_digest(&art.oci, &par_ref), serial_digest);
    assert!(report.counter("sched.steps") > 0, "{}", report.render());
}
