//! The LLVM-IR distribution alternative (paper §4.6 discussion):
//! "we can use other higher-level IRs, such as LLVM IR as alternatives to
//! source code. But this approach limits package replacement flexibility …
//! Once compiled, the application becomes tightly coupled with specific
//! package versions."
//!
//! These tests exercise the `CacheMode::Ir` pipeline and verify the
//! tradeoff: IR mode still gets toolchain retargeting (`cxxo`) but
//! forfeits package replacement (`libo`), so the source-mode adapted image
//! outruns the IR-mode one.

use comt_bench::Lab;
use comtainer_suite::buildsys::{Builder, Executor};
use comtainer_suite::core::{
    comtainer_build_mode, comtainer_rebuild, comtainer_redirect, CacheMode, RebuildOptions,
};
use comtainer_suite::oci::layout::OciDir;
use comtainer_suite::perfsim::{execute_with_deck, lib_env_from_image};
use comtainer_suite::pkg::catalog;
use comtainer_suite::toolchain::Toolchain;
use comt_workloads::{containerfile, deck, source_tree};

/// Build the minife extended image in the given cache mode and rebuild it
/// on the system side; return the lab, layout, extended ref and rebuilt
/// ref so each test can drive the deployment step it cares about.
fn build_and_rebuild(mode: CacheMode) -> (Lab, OciDir, String, String) {
    let isa = "x86_64";
    let scale = catalog::MINI_SCALE;
    let mut lab = Lab::new(isa, scale);

    let context = source_tree("minife", isa, scale).unwrap();
    let cf = containerfile("minife", isa).unwrap();
    let executor = Executor::new(isa, vec![Toolchain::distro_gcc()])
        .with_repo(catalog::generic_repo_scaled(isa, scale));
    let env_image = lab.stock.env.clone();
    let base_image = lab.stock.base.clone();
    let mut builder = Builder::new(&mut lab.store, executor);
    builder.tag("comt:x86-64.env", &env_image);
    builder.tag("comt:x86-64.base", &base_image);
    let result = builder.build("minife", &cf, &context).unwrap();

    let mut oci = OciDir::new();
    oci.export(
        "minife.dist",
        result.images["dist"].manifest_digest,
        &lab.store,
    )
    .unwrap();
    let base_fs = comtainer_suite::oci::flatten(&lab.store, &lab.stock.base).unwrap();
    let ext = comtainer_build_mode(
        &mut oci,
        "minife.dist",
        &result.containers["build"],
        &result.traces["build"],
        &base_fs,
        mode,
    )
    .unwrap();

    let side = lab.system_side();
    let re = comtainer_rebuild(&mut oci, &ext, &side, &RebuildOptions::default()).unwrap();
    (lab, oci, ext, re)
}

/// Adapt the minife image in the given cache mode and measure it; return
/// the adapted run time plus the cache contents summary.
fn adapt_with_mode(mode: CacheMode) -> (f64, usize, bool, String) {
    let isa = "x86_64";
    let scale = catalog::MINI_SCALE;
    let (lab, mut oci, ext, re) = build_and_rebuild(mode);

    let cache = comtainer_suite::core::load_cache(&oci, &ext).unwrap();
    let has_sources = cache
        .sources
        .keys()
        .any(|p| p.ends_with(".cc") || p.ends_with(".h"));
    let n_cache_files = cache.sources.len();

    let side = lab.system_side();
    let fs = match mode {
        CacheMode::Source => {
            let opt = comtainer_redirect(&mut oci, &re, &side).unwrap();
            let image = oci.load_image(&opt).unwrap();
            comtainer_suite::oci::flatten(&oci.blobs, &image).unwrap()
        }
        CacheMode::Ir => {
            // The redirect refuses IR-mode package replacement outright
            // (see ir_redirect_refuses_package_replacement), so an
            // IR-mode deployment keeps the original image's pinned
            // package stack and only swaps in the retargeted binaries.
            let artifacts = comtainer_suite::core::cache::load_rebuild(&oci, &re).unwrap();
            let image = oci.load_image("minife.dist").unwrap();
            let mut fs = comtainer_suite::oci::flatten(&oci.blobs, &image).unwrap();
            for (path, content) in &artifacts {
                fs.write_file_p(path, content.clone(), 0o755).unwrap();
            }
            fs
        }
    };
    let bin =
        comtainer_suite::toolchain::artifact::read_linked(&fs.read("/app/minife").unwrap())
            .unwrap();
    let env = lib_env_from_image(
        &fs,
        &[
            &catalog::system_repo_scaled(isa, scale),
            &catalog::generic_repo_scaled(isa, scale),
        ],
    );
    let d = deck("minife", "", isa, 16);
    let seconds = execute_with_deck(&bin, &d, &env, &lab.system, 16).seconds;

    let blas = comtainer_suite::pkg::installed_packages(&fs)
        .unwrap()
        .into_iter()
        .find(|r| r.package == "libopenblas0")
        .map(|r| r.version.to_string())
        .unwrap_or_default();
    (seconds, n_cache_files, has_sources, blas)
}

#[test]
fn ir_mode_trades_libo_for_privacy() {
    let (src_time, src_files, src_has_sources, src_blas) = adapt_with_mode(CacheMode::Source);
    let (ir_time, ir_files, ir_has_sources, ir_blas) = adapt_with_mode(CacheMode::Ir);

    // Source mode ships sources; IR mode ships only .o artifacts.
    assert!(src_has_sources);
    assert!(!ir_has_sources, "no source text in the IR cache");
    assert!(src_files > 0 && ir_files > 0);

    // Source mode gets the vendor BLAS (libo); IR mode stays pinned to
    // the generic build-time version.
    assert!(src_blas.contains("vendor"), "source mode: {src_blas}");
    assert!(!ir_blas.contains("vendor"), "IR mode pinned: {ir_blas}");

    // Both get the toolchain retarget (cxxo)… and therefore IR mode is
    // slower overall, but not catastrophically: the paper's tradeoff.
    assert!(
        ir_time > src_time * 1.03,
        "libo loss shows: src {src_time:.2}s vs ir {ir_time:.2}s"
    );
    assert!(
        ir_time < src_time * 2.0,
        "retargeting still recovered most of the gap: {ir_time:.2} vs {src_time:.2}"
    );
}

#[test]
fn ir_redirect_refuses_package_replacement() {
    // §4.6: the IR-mode binary is ABI-coupled to its build-time package
    // versions. The system repo carries a newer vendor BLAS, so the
    // redirect implies a libo replacement — it must hard-error naming the
    // coupled package instead of silently rebuilding against stale IR.
    let (lab, mut oci, _ext, re) = build_and_rebuild(CacheMode::Ir);
    let side = lab.system_side();
    let err = comtainer_redirect(&mut oci, &re, &side).unwrap_err();
    assert!(
        matches!(err, comtainer_suite::core::ComtError::IrCoupled(_)),
        "expected IrCoupled, got: {err}"
    );
    assert_eq!(err.failure().artifact.as_deref(), Some("libopenblas0"));
    let text = err.to_string();
    assert!(text.starts_with("ir-coupled:"), "{text}");
    assert!(text.contains("libopenblas0"), "{text}");
    // The image was never committed: no +opt ref appeared.
    assert!(oci.index.find_ref("minife.dist+opt").is_none());
}

#[test]
fn ir_mode_binary_is_retargeted() {
    let isa = "x86_64";
    let scale = catalog::MINI_SCALE;
    let mut lab = Lab::new(isa, scale);
    let context = source_tree("hpccg", isa, scale).unwrap();
    let cf = containerfile("hpccg", isa).unwrap();
    let executor = Executor::new(isa, vec![Toolchain::distro_gcc()])
        .with_repo(catalog::generic_repo_scaled(isa, scale));
    let env_image = lab.stock.env.clone();
    let base_image = lab.stock.base.clone();
    let mut builder = Builder::new(&mut lab.store, executor);
    builder.tag("comt:x86-64.env", &env_image);
    builder.tag("comt:x86-64.base", &base_image);
    let result = builder.build("hpccg", &cf, &context).unwrap();

    let mut oci = OciDir::new();
    oci.export("hpccg.dist", result.images["dist"].manifest_digest, &lab.store)
        .unwrap();
    let base_fs = comtainer_suite::oci::flatten(&lab.store, &lab.stock.base).unwrap();
    let ext = comtainer_build_mode(
        &mut oci,
        "hpccg.dist",
        &result.containers["build"],
        &result.traces["build"],
        &base_fs,
        CacheMode::Ir,
    )
    .unwrap();
    let side = lab.system_side();
    let re = comtainer_rebuild(&mut oci, &ext, &side, &RebuildOptions::default()).unwrap();
    let artifacts = comtainer_suite::core::cache::load_rebuild(&oci, &re).unwrap();
    let bin =
        comtainer_suite::toolchain::artifact::read_linked(&artifacts["/app/hpccg"]).unwrap();
    // Re-codegen from IR: vendor toolchain, native march, wider vectors.
    assert_eq!(bin.opt.toolchain, "vendor-x86");
    assert_eq!(bin.target.as_ref().unwrap().march, "icelake-server");
    assert_eq!(bin.opt.vector_width, 8);
    // Symbols and kernel metadata survived from the IR.
    assert!(bin.defined.contains(&"main".to_string()));
    assert!(bin.kernel.get("vec_frac") > 0.0);
}
