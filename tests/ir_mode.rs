//! The LLVM-IR distribution alternative (paper §4.6 discussion):
//! "we can use other higher-level IRs, such as LLVM IR as alternatives to
//! source code. But this approach limits package replacement flexibility …
//! Once compiled, the application becomes tightly coupled with specific
//! package versions."
//!
//! These tests exercise the `CacheMode::Ir` pipeline and verify the
//! tradeoff: IR mode still gets toolchain retargeting (`cxxo`) but
//! forfeits package replacement (`libo`), so the source-mode adapted image
//! outruns the IR-mode one.

use comt_bench::Lab;
use comtainer_suite::buildsys::{Builder, Executor};
use comtainer_suite::core::{
    comtainer_build_mode, comtainer_rebuild, comtainer_redirect, CacheMode, RebuildOptions,
};
use comtainer_suite::oci::layout::OciDir;
use comtainer_suite::perfsim::{execute_with_deck, lib_env_from_image};
use comtainer_suite::pkg::catalog;
use comtainer_suite::toolchain::Toolchain;
use comt_workloads::{containerfile, deck, source_tree};

/// Build the minife extended image in the given cache mode and adapt it;
/// return the adapted image's run time plus the cache contents summary.
fn adapt_with_mode(mode: CacheMode) -> (f64, usize, bool, String) {
    let isa = "x86_64";
    let scale = catalog::MINI_SCALE;
    let mut lab = Lab::new(isa, scale);

    let context = source_tree("minife", isa, scale).unwrap();
    let cf = containerfile("minife", isa).unwrap();
    let executor = Executor::new(isa, vec![Toolchain::distro_gcc()])
        .with_repo(catalog::generic_repo_scaled(isa, scale));
    let env_image = lab.stock.env.clone();
    let base_image = lab.stock.base.clone();
    let mut builder = Builder::new(&mut lab.store, executor);
    builder.tag("comt:x86-64.env", &env_image);
    builder.tag("comt:x86-64.base", &base_image);
    let result = builder.build("minife", &cf, &context).unwrap();

    let mut oci = OciDir::new();
    oci.export(
        "minife.dist",
        result.images["dist"].manifest_digest,
        &lab.store,
    )
    .unwrap();
    let base_fs = comtainer_suite::oci::flatten(&lab.store, &lab.stock.base).unwrap();
    let ext = comtainer_build_mode(
        &mut oci,
        "minife.dist",
        &result.containers["build"],
        &result.traces["build"],
        &base_fs,
        mode,
    )
    .unwrap();

    let cache = comtainer_suite::core::load_cache(&oci, &ext).unwrap();
    let has_sources = cache
        .sources
        .keys()
        .any(|p| p.ends_with(".cc") || p.ends_with(".h"));
    let n_cache_files = cache.sources.len();

    let side = lab.system_side();
    let re = comtainer_rebuild(&mut oci, &ext, &side, &RebuildOptions::default()).unwrap();
    let opt = comtainer_redirect(&mut oci, &re, &side).unwrap();
    let image = oci.load_image(&opt).unwrap();
    let fs = comtainer_suite::oci::flatten(&oci.blobs, &image).unwrap();
    let bin =
        comtainer_suite::toolchain::artifact::read_linked(&fs.read("/app/minife").unwrap())
            .unwrap();
    let env = lib_env_from_image(
        &fs,
        &[
            &catalog::system_repo_scaled(isa, scale),
            &catalog::generic_repo_scaled(isa, scale),
        ],
    );
    let d = deck("minife", "", isa, 16);
    let seconds = execute_with_deck(&bin, &d, &env, &lab.system, 16).seconds;

    let blas = comtainer_suite::pkg::installed_packages(&fs)
        .unwrap()
        .into_iter()
        .find(|r| r.package == "libopenblas0")
        .map(|r| r.version.to_string())
        .unwrap_or_default();
    (seconds, n_cache_files, has_sources, blas)
}

#[test]
fn ir_mode_trades_libo_for_privacy() {
    let (src_time, src_files, src_has_sources, src_blas) = adapt_with_mode(CacheMode::Source);
    let (ir_time, ir_files, ir_has_sources, ir_blas) = adapt_with_mode(CacheMode::Ir);

    // Source mode ships sources; IR mode ships only .o artifacts.
    assert!(src_has_sources);
    assert!(!ir_has_sources, "no source text in the IR cache");
    assert!(src_files > 0 && ir_files > 0);

    // Source mode gets the vendor BLAS (libo); IR mode stays pinned to
    // the generic build-time version.
    assert!(src_blas.contains("vendor"), "source mode: {src_blas}");
    assert!(!ir_blas.contains("vendor"), "IR mode pinned: {ir_blas}");

    // Both get the toolchain retarget (cxxo)… and therefore IR mode is
    // slower overall, but not catastrophically: the paper's tradeoff.
    assert!(
        ir_time > src_time * 1.03,
        "libo loss shows: src {src_time:.2}s vs ir {ir_time:.2}s"
    );
    assert!(
        ir_time < src_time * 2.0,
        "retargeting still recovered most of the gap: {ir_time:.2} vs {src_time:.2}"
    );
}

#[test]
fn ir_mode_binary_is_retargeted() {
    let isa = "x86_64";
    let scale = catalog::MINI_SCALE;
    let mut lab = Lab::new(isa, scale);
    let context = source_tree("hpccg", isa, scale).unwrap();
    let cf = containerfile("hpccg", isa).unwrap();
    let executor = Executor::new(isa, vec![Toolchain::distro_gcc()])
        .with_repo(catalog::generic_repo_scaled(isa, scale));
    let env_image = lab.stock.env.clone();
    let base_image = lab.stock.base.clone();
    let mut builder = Builder::new(&mut lab.store, executor);
    builder.tag("comt:x86-64.env", &env_image);
    builder.tag("comt:x86-64.base", &base_image);
    let result = builder.build("hpccg", &cf, &context).unwrap();

    let mut oci = OciDir::new();
    oci.export("hpccg.dist", result.images["dist"].manifest_digest, &lab.store)
        .unwrap();
    let base_fs = comtainer_suite::oci::flatten(&lab.store, &lab.stock.base).unwrap();
    let ext = comtainer_build_mode(
        &mut oci,
        "hpccg.dist",
        &result.containers["build"],
        &result.traces["build"],
        &base_fs,
        CacheMode::Ir,
    )
    .unwrap();
    let side = lab.system_side();
    let re = comtainer_rebuild(&mut oci, &ext, &side, &RebuildOptions::default()).unwrap();
    let artifacts = comtainer_suite::core::cache::load_rebuild(&oci, &re).unwrap();
    let bin =
        comtainer_suite::toolchain::artifact::read_linked(&artifacts["/app/hpccg"]).unwrap();
    // Re-codegen from IR: vendor toolchain, native march, wider vectors.
    assert_eq!(bin.opt.toolchain, "vendor-x86");
    assert_eq!(bin.target.as_ref().unwrap().march, "icelake-server");
    assert_eq!(bin.opt.vector_width, 8);
    // Symbols and kernel metadata survived from the IR.
    assert!(bin.defined.contains(&"main".to_string()));
    assert!(bin.kernel.get("vec_frac") > 0.0);
}
