//! End-to-end integration: the complete coMtainer workflow on a real
//! workload, asserting the paper's artifact-description checks (B.2) and
//! the performance relations of §5.2.

use comt_bench::{Lab, Scheme};
use comtainer_suite::pkg::catalog;
use comt_workloads::WorkloadRef;

#[test]
fn artifact_description_checks() {
    // AD §B.2: after coMtainer-build a manifest tagged +coM appears in
    // index.json; after coMtainer-rebuild a +coMre manifest appears; the
    // final redirected image has a file-system layout compatible with the
    // original dist image.
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("hpccg");

    let refs = art.oci.index.ref_names();
    assert!(refs.contains(&"hpccg.dist".to_string()), "{refs:?}");
    assert!(refs.contains(&"hpccg.dist+coM".to_string()), "{refs:?}");
    assert!(refs.contains(&"hpccg.dist+coMre".to_string()), "{refs:?}");
    assert!(refs.contains(&"hpccg.dist+opt".to_string()), "{refs:?}");

    // Layout compatibility: the app binary and data live at the original
    // paths in the redirected image.
    let orig_fs = comtainer_suite::oci::flatten(
        &art.oci.blobs,
        &art.oci.load_image("hpccg.dist").unwrap(),
    )
    .unwrap();
    let opt_fs = comtainer_suite::oci::flatten(&art.oci.blobs, &art.adapted).unwrap();
    assert!(orig_fs.exists("/app/hpccg") && opt_fs.exists("/app/hpccg"));
    assert!(orig_fs.exists("/app/hpccg.data") && opt_fs.exists("/app/hpccg.data"));
    assert_eq!(
        orig_fs.read("/app/hpccg.data").unwrap(),
        opt_fs.read("/app/hpccg.data").unwrap(),
        "data files carried verbatim"
    );
    // The binary itself was rebuilt (different content).
    assert_ne!(
        orig_fs.read("/app/hpccg").unwrap(),
        opt_fs.read("/app/hpccg").unwrap()
    );

    // The extended image's first layers are exactly the original's (layer
    // injection leaves the original untouched).
    let orig = art.oci.load_image("hpccg.dist").unwrap();
    let ext = art.oci.load_image("hpccg.dist+coM").unwrap();
    assert_eq!(ext.manifest.layers.len(), orig.manifest.layers.len() + 1);
    assert_eq!(
        &ext.manifest.layers[..orig.manifest.layers.len()],
        &orig.manifest.layers[..]
    );
}

#[test]
fn scheme_ordering_matches_paper() {
    // §5.2: adapted recovers the performance lost to the adaptability
    // issue (on most workloads original ≫ adapted ≈ native).
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let mut art = lab.prepare_app("comd");
    let w = WorkloadRef { app: "comd", input: "" };

    let orig = lab.run(&mut art, &w, Scheme::Original, 16);
    let native = lab.run(&mut art, &w, Scheme::Native, 16);
    let adapted = lab.run(&mut art, &w, Scheme::Adapted, 16);
    let optimized = lab.run(&mut art, &w, Scheme::Optimized, 16);

    assert!(orig > 1.4 * native, "adaptation gap exists: {orig} vs {native}");
    assert!(
        (adapted / native - 1.0).abs() < 0.08,
        "adapted ≈ native: {adapted} vs {native}"
    );
    assert!(optimized < adapted, "LTO+PGO help comd");
}

#[test]
fn adapted_binary_provenance() {
    // The adapted image's binary must show vendor provenance while the
    // original shows the generic one — the actual mechanism, not just the
    // timing.
    let mut lab = Lab::new("aarch64", catalog::MINI_SCALE);
    let art = lab.prepare_app("minimd");

    let orig_fs = comtainer_suite::oci::flatten(
        &art.oci.blobs,
        &art.oci.load_image("minimd.dist").unwrap(),
    )
    .unwrap();
    let orig_bin = comtainer_suite::toolchain::artifact::read_linked(
        &orig_fs.read("/app/minimd").unwrap(),
    )
    .unwrap();
    assert_eq!(orig_bin.opt.toolchain, "gcc-13");
    assert_eq!(orig_bin.target.as_ref().unwrap().march, "armv8-a");
    assert_eq!(orig_bin.opt.opt_level, "2");

    let opt_fs = comtainer_suite::oci::flatten(&art.oci.blobs, &art.adapted).unwrap();
    let opt_bin = comtainer_suite::toolchain::artifact::read_linked(
        &opt_fs.read("/app/minimd").unwrap(),
    )
    .unwrap();
    assert_eq!(opt_bin.opt.toolchain, "vendor-arm");
    assert_eq!(opt_bin.target.as_ref().unwrap().march, "ft2000plus");
    assert_eq!(opt_bin.opt.opt_level, "3");
    // Kernel characteristics survived the round trip through the cache.
    assert_eq!(
        orig_bin.kernel.get("vec_frac"),
        opt_bin.kernel.get("vec_frac")
    );

    // And the adapted image's package stack is the vendor one.
    let recs = comtainer_suite::pkg::installed_packages(&opt_fs).unwrap();
    let mpich = recs.iter().find(|r| r.package == "mpich").unwrap();
    assert!(mpich.version.to_string().contains("vendor"));
    let libc = recs.iter().find(|r| r.package == "libc6").unwrap();
    assert!(libc.version.to_string().contains("vendor"), "libo upgraded libc");
}

#[test]
fn registry_transfer_of_extended_image() {
    // The extended image is OCI-compliant: it pushes/pulls through the
    // simulated registry like any other image (paper §4.1: "allowing it to
    // be pushed to OCI-compliant image registries").
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("hpccg");
    let ext = art.oci.load_image("hpccg.dist+coM").unwrap();

    let mut registry = comtainer_suite::oci::Registry::new();
    registry
        .push("hpccg:extended", ext.manifest_digest, &art.oci.blobs)
        .unwrap();

    let mut remote_store = comtainer_suite::oci::BlobStore::new();
    let (digest, _) = registry.pull("hpccg:extended", &mut remote_store).unwrap();
    let pulled = comtainer_suite::oci::Image::load(&remote_store, digest).unwrap();
    let fs = comtainer_suite::oci::flatten(&remote_store, &pulled).unwrap();
    assert!(fs.exists("/.coMtainer/cache/models.json"));
    assert!(fs.exists("/app/hpccg"));
}

#[test]
fn on_disk_oci_layout_roundtrip() {
    // The OCI layout directory written to disk is loadable and intact.
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("hpccg");

    let tmp = std::env::temp_dir().join(format!("comt-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    art.oci.save(&tmp).unwrap();
    let back = comtainer_suite::oci::layout::OciDir::load(&tmp).unwrap();
    assert_eq!(back.index.ref_names(), art.oci.index.ref_names());
    let cache = comtainer_suite::core::load_cache(&back, "hpccg.dist+coM").unwrap();
    assert!(!cache.sources.is_empty());
    std::fs::remove_dir_all(&tmp).unwrap();
}

#[test]
fn image_lifetime_supports_repeated_rebuilds() {
    // "The rebuilding and redirecting can be performed many times during
    // the image's lifetime" (§4.1) — e.g. re-running PGO when the typical
    // input changes. Optimize the same extended image for two different
    // LAMMPS inputs back to back; both loops must succeed independently.
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let mut art = lab.prepare_app("lammps");

    let chain = WorkloadRef { app: "lammps", input: "chain" };
    let lj = WorkloadRef { app: "lammps", input: "lj" };

    let t_chain = lab.run(&mut art, &chain, Scheme::Optimized, 16);
    let t_lj = lab.run(&mut art, &lj, Scheme::Optimized, 16);
    // Second round did not corrupt the layout: refs still resolve and
    // another adapted run still works.
    let adapted_after = lab.run(&mut art, &chain, Scheme::Adapted, 16);
    assert!(t_chain > 0.0 && t_lj > 0.0 && adapted_after > 0.0);
    assert!(art.oci.index.find_ref("lammps.dist+coM").is_some());
    assert!(art.oci.index.find_ref("lammps.dist+coMre").is_some());

    // The per-input profiles steer opposite outcomes (chain regresses,
    // lj gains) — on the same extended image.
    let adapted_chain = lab.run(&mut art, &chain, Scheme::Adapted, 16);
    let adapted_lj = lab.run(&mut art, &lj, Scheme::Adapted, 16);
    assert!(t_chain > adapted_chain, "chain: PGO backfires");
    assert!(t_lj < adapted_lj, "lj: PGO pays off");
}
