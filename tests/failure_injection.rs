//! Failure injection: corrupted or tampered inputs must produce typed
//! errors, never panics or silently wrong images.

use bytes::Bytes;
use comt_bench::Lab;
use comtainer_suite::core::{comtainer_rebuild, load_cache, RebuildOptions};
use comtainer_suite::oci::layout::OciDir;
use comtainer_suite::pkg::catalog;

/// Prepare an extended hpccg image once for the tampering tests.
fn extended() -> (Lab, comt_bench::AppArtifacts) {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let art = lab.prepare_app("hpccg");
    (lab, art)
}

/// Rewrite one file inside the cache layer of `<ref>+coM` and re-attach it.
fn tamper_cache_layer(
    oci: &OciDir,
    ext_ref: &str,
    edit: impl Fn(&mut Vec<comt_tar::Entry>),
) -> OciDir {
    let image = oci.load_image(ext_ref).unwrap();
    let last = image.manifest.layers.last().unwrap();
    let digest = last.parsed_digest().unwrap();
    let tar = oci.blobs.get(&digest).unwrap();
    let mut entries = comt_tar::read_archive(&tar).unwrap();
    edit(&mut entries);
    let new_tar = comt_tar::write_archive(&entries).unwrap();

    // Rebuild the manifest with the tampered layer.
    let mut out = oci.clone();
    let new_digest = out.blobs.put(Bytes::from(new_tar.clone()));
    let mut manifest = image.manifest.clone();
    let n = manifest.layers.len();
    manifest.layers[n - 1] = comtainer_suite::oci::spec::Descriptor::new(
        comtainer_suite::oci::spec::MediaType::LayerTar,
        new_digest,
        new_tar.len() as u64,
    );
    let man_json = serde_json_bytes(&manifest);
    let man_size = man_json.len() as u64;
    let man_digest = out.blobs.put(Bytes::from(man_json));
    out.index.set_ref(
        ext_ref,
        comtainer_suite::oci::spec::Descriptor::new(
            comtainer_suite::oci::spec::MediaType::ImageManifest,
            man_digest,
            man_size,
        ),
    );
    out
}

fn serde_json_bytes(m: &comtainer_suite::oci::ImageManifest) -> Vec<u8> {
    comtainer_suite::oci::manifest_to_json(m)
}

#[test]
fn corrupt_models_json_is_a_cache_error() {
    let (_lab, art) = extended();
    let tampered = tamper_cache_layer(&art.oci, "hpccg.dist+coM", |entries| {
        for e in entries.iter_mut() {
            if e.path.ends_with("models.json") {
                e.kind = comt_tar::EntryKind::File(b"{not json".to_vec().into());
            }
        }
    });
    let err = load_cache(&tampered, "hpccg.dist+coM").unwrap_err();
    assert!(matches!(err, comtainer_suite::core::ComtError::Cache(_)), "{err}");
}

#[test]
fn missing_trace_is_a_cache_error() {
    let (_lab, art) = extended();
    let tampered = tamper_cache_layer(&art.oci, "hpccg.dist+coM", |entries| {
        entries.retain(|e| !e.path.ends_with("/trace"));
    });
    let err = load_cache(&tampered, "hpccg.dist+coM").unwrap_err();
    assert!(err.to_string().contains("trace"), "{err}");
}

#[test]
fn tampered_source_breaks_rebuild_loudly() {
    // Replace a cached source with garbage that defines no symbols: the
    // rebuild's link step must fail with an unresolved-symbol error, not
    // produce a broken image.
    let (lab, art) = extended();
    let tampered = tamper_cache_layer(&art.oci, "hpccg.dist+coM", |entries| {
        for e in entries.iter_mut() {
            if e.path.contains("/src/") && e.path.ends_with("hpccg_unit_0.cc") {
                e.kind = comt_tar::EntryKind::File(b"int x;\n".to_vec().into());
            }
        }
    });
    let mut tampered = tampered;
    let side = lab.system_side();
    let err = comtainer_rebuild(
        &mut tampered,
        "hpccg.dist+coM",
        &side,
        &RebuildOptions::default(),
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("undefined reference") || err.to_string().contains("main"),
        "{err}"
    );
}

#[test]
fn truncated_layer_blob_fails_flatten() {
    let (_lab, art) = extended();
    let image = art.oci.load_image("hpccg.dist+coM").unwrap();
    let last = image.manifest.layers.last().unwrap().parsed_digest().unwrap();
    let tar = art.oci.blobs.get(&last).unwrap();
    let mut oci = art.oci.clone();
    // Truncate the blob mid-record and swap it in under the same manifest
    // (the blob no longer matches its digest — like silent storage
    // corruption).
    let truncated = tar.slice(..tar.len() / 2 - 100);
    // Force-replace in a fresh store with the manifest's digest key: we
    // simulate corruption by writing a *new* layout with the truncated
    // bytes under a fresh image whose manifest references them.
    let bad_digest = oci.blobs.put(truncated);
    let mut manifest = image.manifest.clone();
    let n = manifest.layers.len();
    manifest.layers[n - 1] = comtainer_suite::oci::spec::Descriptor::new(
        comtainer_suite::oci::spec::MediaType::LayerTar,
        bad_digest,
        0,
    );
    let man_json = serde_json_bytes(&manifest);
    let size = man_json.len() as u64;
    let d = oci.blobs.put(Bytes::from(man_json));
    oci.index.set_ref(
        "bad",
        comtainer_suite::oci::spec::Descriptor::new(
            comtainer_suite::oci::spec::MediaType::ImageManifest,
            d,
            size,
        ),
    );
    let bad = oci.load_image("bad").unwrap();
    let err = comtainer_suite::oci::flatten(&oci.blobs, &bad).unwrap_err();
    assert!(err.to_string().contains("bad layer") || err.to_string().contains("archive"), "{err}");
}

#[test]
fn registry_pull_with_missing_blob_fails() {
    let (_lab, art) = extended();
    let ext = art.oci.load_image("hpccg.dist+coM").unwrap();
    // Push only the manifest blob into a registry store directly (bypassing
    // push's closure copy), then pull.
    let mut reg = comtainer_suite::oci::Registry::new();
    let raw = art.oci.blobs.get(&ext.manifest_digest).unwrap();
    reg.store_mut().put(raw);
    // resolve/pull path: a manual tag insert is not exposed, so push from a
    // store that lacks the layer blobs must already fail.
    let mut partial = comtainer_suite::oci::BlobStore::new();
    partial.put(art.oci.blobs.get(&ext.manifest_digest).unwrap());
    let err = reg.push("x", ext.manifest_digest, &partial);
    assert!(err.is_err());
}
