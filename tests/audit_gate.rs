//! Integration: the ISA-compatibility audit as a buildd admission gate.
//!
//! Seeds an extended image whose recorded build pins `-mavx512f` and
//! proves:
//!
//! * `comt_analyze::audit_extended_image` fails it against a declared
//!   `x86-64-v2` deployment target with COMT-A001, and passes it against
//!   `x86-64-v4` — without executing a single compile step;
//! * a buildd job declaring `x86-64-v2` is rejected *at submit time* with
//!   HTTP 422 and the findings in the JSON error body;
//! * the same job declaring `x86-64-v4`, or declaring no targets at all,
//!   is admitted and rebuilds to completion — the gate is strictly
//!   opt-in.

use bytes::Bytes;
use comt_dist::{serve_buildd, BuilddClient, DistClient, HttpOptions, JobRequest};
use comt_buildsys::{BuildTrace, RawCommand};
use comt_oci::layout::OciDir;
use comt_oci::{BlobStore, ImageBuilder};
use comt_toolchain::Toolchain;
use comt_vfs::Vfs;
use comtainer::cache::write_cache;
use comtainer::{
    BuildService, FileOrigin, ImageModel, NativeToolchainAdapter, ProcessModels, ServiceOptions,
    SystemAdapter,
};
use std::collections::BTreeMap;
use std::time::Duration;

const EXT_REF: &str = "simd.dist+coM";
const DEADLINE: Duration = Duration::from_secs(120);

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

/// An extended image whose one compile step requires AVX-512.
fn simd_layout() -> OciDir {
    let mut store = BlobStore::new();
    let mut fs = Vfs::new();
    fs.write_file_p("/app/run", Bytes::from_static(b"BIN"), 0o755)
        .unwrap();
    let img = ImageBuilder::from_scratch("x86_64")
        .with_layer_from_fs(&Vfs::new(), &fs)
        .commit(&mut store)
        .unwrap();
    let mut oci = OciDir::new();
    oci.export("simd.dist", img.manifest_digest, &store).unwrap();

    let trace = BuildTrace {
        commands: vec![
            RawCommand {
                argv: argv("gcc -O2 -mavx512f -c kernel.c -o kernel.o"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec!["/src/kernel.c".into()],
                outputs: vec!["/src/kernel.o".into()],
            },
            RawCommand {
                argv: argv("gcc kernel.o -o app"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec!["/src/kernel.o".into()],
                outputs: vec!["/src/app".into()],
            },
        ],
    };
    let mut sources = BTreeMap::new();
    sources.insert(
        "/src/kernel.c".to_string(),
        Bytes::from("#pragma comt provides(main)\n"),
    );
    let mut image = ImageModel::default();
    image
        .files
        .insert("/app/run".into(), FileOrigin::Build("/src/app".into()));
    let models = ProcessModels {
        image,
        graph: Default::default(),
        isa: "x86_64".into(),
        cache_mode: Default::default(),
        targets: vec![],
    };
    let new_ref = write_cache(&mut oci, "simd.dist", &models, &trace, &sources).unwrap();
    assert_eq!(new_ref, EXT_REF);
    oci
}

fn adapters() -> Vec<Box<dyn SystemAdapter>> {
    vec![Box::new(NativeToolchainAdapter)]
}

#[test]
fn avx512_image_fails_v2_passes_v4() {
    let oci = simd_layout();
    let toolchain = Toolchain::vendor_for("x86_64");

    let report = comt_analyze::audit_extended_image(
        &oci,
        EXT_REF,
        &["x86-64-v2".to_string()],
        &toolchain,
        &adapters(),
    )
    .unwrap();
    assert!(report.has_errors(), "{}", report.render_human());
    assert!(report
        .report
        .diagnostics
        .iter()
        .any(|d| d.code == "COMT-A001"));
    assert_eq!(report.verdicts.len(), 1);
    assert!(!report.verdicts[0].pass);
    assert_eq!(report.verdicts[0].incompatible_objects, 1);
    let json = report.to_json();
    assert!(json.contains("\"COMT-A001\""), "{json}");
    assert!(json.contains("avx512f"), "{json}");

    let report = comt_analyze::audit_extended_image(
        &oci,
        EXT_REF,
        &["x86-64-v4".to_string()],
        &toolchain,
        &adapters(),
    )
    .unwrap();
    assert!(!report.has_errors(), "{}", report.render_human());
    assert!(report.verdicts[0].pass);
}

#[test]
fn buildd_gate_rejects_declared_v2_at_submit() {
    let svc = BuildService::start(
        simd_layout(),
        ServiceOptions {
            workers: 1,
            ..Default::default()
        },
    );
    let server = serve_buildd(
        std::sync::Arc::clone(&svc),
        "127.0.0.1:0",
        HttpOptions::default(),
    )
    .unwrap();
    let client = BuilddClient::new(server.addr().to_string());

    // Declared x86-64-v2: rejected before the job ever queues.
    let mut jr = JobRequest::new("alice", EXT_REF);
    jr.targets = vec!["x86-64-v2".to_string()];
    let err = client.submit(&jr).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("422"), "{msg}");
    assert!(msg.contains("COMT-A001"), "{msg}");
    assert!(svc.list(None).is_empty(), "rejected job must not queue");

    // The raw 422 body carries the findings, machine-consumable.
    let raw = DistClient::new(server.addr().to_string());
    let body = format!(
        r#"{{"tenant":"alice","ref":"{EXT_REF}","targets":["x86-64-v2"]}}"#
    );
    let (status, _, resp) = raw
        .raw_exchange(
            "POST",
            "/buildd/jobs",
            &[("Content-Type".to_string(), "application/json".to_string())],
            Some(body.as_bytes()),
        )
        .unwrap();
    assert_eq!(status, 422);
    let text = std::str::from_utf8(&resp).unwrap();
    assert!(text.contains("\"findings\""), "{text}");
    assert!(text.contains("COMT-A001"), "{text}");
    assert!(text.contains("avx512f"), "{text}");

    // An unknown target is a 400 — the audit itself cannot run.
    jr.targets = vec!["pentium-pro".to_string()];
    let msg = client.submit(&jr).unwrap_err().to_string();
    assert!(msg.contains("400"), "{msg}");
    assert!(msg.contains("unknown deployment target"), "{msg}");

    // Declared x86-64-v4: the same image is compatible, so it is admitted
    // and rebuilds to completion.
    jr.targets = vec!["x86-64-v4".to_string()];
    let accepted = client.submit(&jr).unwrap();
    let fin = client.wait(accepted.id, DEADLINE).unwrap();
    assert_eq!(fin.state, "done", "{:?}", fin.error);
    assert_eq!(fin.result_ref.as_deref(), Some("simd.dist+coMre"));

    server.shutdown();
    svc.stop();
}

#[test]
fn gate_is_opt_in_without_declared_targets() {
    let svc = BuildService::start(
        simd_layout(),
        ServiceOptions {
            workers: 1,
            ..Default::default()
        },
    );
    let server = serve_buildd(
        std::sync::Arc::clone(&svc),
        "127.0.0.1:0",
        HttpOptions::default(),
    )
    .unwrap();
    let client = BuilddClient::new(server.addr().to_string());

    // No targets declared: the incompatible-with-v2 image still builds.
    let status = client.submit(&JobRequest::new("bob", EXT_REF)).unwrap();
    let fin = client.wait(status.id, DEADLINE).unwrap();
    assert_eq!(fin.state, "done", "{:?}", fin.error);
    assert_eq!(fin.result_ref.as_deref(), Some("simd.dist+coMre"));

    server.shutdown();
    svc.stop();
}
