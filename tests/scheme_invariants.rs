//! Cheap scheme-ordering invariants over the whole workload roster.
//!
//! Instead of running the full pipeline for all 18 workloads (that's the
//! fig9 binary's job), these tests construct the scheme-characteristic
//! binaries directly and check the paper's qualitative relations hold for
//! *every* workload on *both* systems.

use comtainer_suite::perfsim::{execute_with_deck, systems::system_for, LibEnv};
use comtainer_suite::toolchain::artifact::{
    BinKind, KernelParams, LinkedBinary, OptProvenance, TargetInfo,
};
use comtainer_suite::toolchain::{toolchains::vector_width, Toolchain};
use comt_workloads::{app, deck, workloads};

/// Construct the binary a given scheme would produce for a workload.
fn scheme_binary(app_name: &str, isa: &str, native: bool) -> LinkedBinary {
    let spec = app(app_name).unwrap();
    let mut kernel = KernelParams::default();
    for (k, v) in spec.fracs {
        kernel.0.insert(k.to_string(), *v);
    }
    let tc = if native {
        Toolchain::vendor_for(isa)
    } else {
        Toolchain::distro_gcc()
    };
    let march = if native {
        tc.native_march(isa).to_string()
    } else {
        tc.default_march(isa).to_string()
    };
    let quality = tc.codegen_quality * if native { 1.07 } else { 1.0 }; // O3 vs O2
    let mut libs: Vec<String> = spec.libs.iter().map(|l| l.to_string()).collect();
    libs.push("mpi".into());
    libs.push("c".into());
    LinkedBinary {
        kind: BinKind::Executable,
        defined: vec!["main".into()],
        externs: vec![],
        needed_libs: libs,
        objects: vec![],
        target: Some(TargetInfo {
            isa: isa.into(),
            march: march.clone(),
        }),
        opt: OptProvenance {
            toolchain: tc.name.clone(),
            codegen_quality: quality,
            opt_level: if native { "3".into() } else { "2".into() },
            vector_width: vector_width(isa, &march),
            fast_math: false,
            openmp: spec.openmp,
            lto_ir: false,
            pgo: Default::default(),
        },
        lto_applied: false,
        layout_optimized: false,
        kernel,
    }
}

fn vendor_env(isa: &str) -> LibEnv {
    use comtainer_suite::pkg::catalog;
    let repo = catalog::system_repo(isa);
    let mut fs = comtainer_suite::vfs::Vfs::new();
    let names = ["libc6", "libstdc++6", "libopenblas0", "mpich", "libfftw3-double3", "libgomp1"];
    let deps: Vec<comtainer_suite::pkg::Dependency> =
        names.iter().map(|n| n.parse().unwrap()).collect();
    let pkgs = comtainer_suite::pkg::resolve_install(&repo, &deps).unwrap();
    comtainer_suite::pkg::install_packages(&mut fs, &pkgs).unwrap();
    comtainer_suite::perfsim::lib_env_from_image(&fs, &[&repo])
}

#[test]
fn native_beats_original_everywhere_except_hpccg() {
    for isa in ["x86_64", "aarch64"] {
        let system = system_for(isa);
        let vendor = vendor_env(isa);
        for w in workloads() {
            let d = deck(w.app, w.input, isa, 16);
            let orig = scheme_binary(w.app, isa, false);
            let nat = scheme_binary(w.app, isa, true);
            let t_orig = execute_with_deck(&orig, &d, &LibEnv::generic(), &system, 16).seconds;
            let t_nat = execute_with_deck(&nat, &d, &vendor, &system, 16).seconds;
            if w.app == "hpccg" {
                assert!(
                    t_nat > t_orig * 0.95,
                    "{isa}/{}: hpccg must not improve meaningfully ({t_orig:.1} vs {t_nat:.1})",
                    w.label()
                );
            } else {
                assert!(
                    t_orig > t_nat * 1.05,
                    "{isa}/{}: native must win ({t_orig:.1} vs {t_nat:.1})",
                    w.label()
                );
            }
        }
    }
}

#[test]
fn improvements_are_bounded() {
    // No workload improves by more than ~5× — the model must not produce
    // absurd gaps that would dwarf the paper's ranges.
    for isa in ["x86_64", "aarch64"] {
        let system = system_for(isa);
        let vendor = vendor_env(isa);
        for w in workloads() {
            let d = deck(w.app, w.input, isa, 16);
            let orig = scheme_binary(w.app, isa, false);
            let nat = scheme_binary(w.app, isa, true);
            let t_orig = execute_with_deck(&orig, &d, &LibEnv::generic(), &system, 16).seconds;
            let t_nat = execute_with_deck(&nat, &d, &vendor, &system, 16).seconds;
            let ratio = t_orig / t_nat;
            assert!(
                ratio < 5.0,
                "{isa}/{}: improbable {ratio:.1}x gap",
                w.label()
            );
            // And every run is in a sane absolute range.
            assert!(
                (1.0..1000.0).contains(&t_nat),
                "{isa}/{}: {t_nat:.1}s",
                w.label()
            );
        }
    }
}

#[test]
fn arm_runs_slower_than_x86() {
    // The FT-2000+ system is the weaker machine: every workload's native
    // time is higher there (Figure 9a vs 9b).
    let x86 = system_for("x86_64");
    let arm = system_for("aarch64");
    let env_x = vendor_env("x86_64");
    let env_a = vendor_env("aarch64");
    for w in workloads() {
        let tx = execute_with_deck(
            &scheme_binary(w.app, "x86_64", true),
            &deck(w.app, w.input, "x86_64", 16),
            &env_x,
            &x86,
            16,
        )
        .seconds;
        let ta = execute_with_deck(
            &scheme_binary(w.app, "aarch64", true),
            &deck(w.app, w.input, "aarch64", 16),
            &env_a,
            &arm,
            16,
        )
        .seconds;
        assert!(ta > tx, "{}: arm {ta:.1}s vs x86 {tx:.1}s", w.label());
    }
}
