//! The adaptability-gap study of the paper's Figure 3: LULESH on a single
//! node, incrementally enabling system-side optimizations:
//!
//! * `cost`  — the generic image as-is,
//! * `+libo` — replace default libraries with the system's optimized stack,
//! * `+cxxo` — rebuild with the system's native compiler toolchain,
//! * `+lto`  — enable link-time optimization,
//! * `+pgo`  — enable profile-guided optimization.
//!
//! Run with: `cargo run --release --example lulesh_adaptability`

use comtainer_suite::perfsim::{execute_with_deck, LibEnv};
use comtainer_suite::pkg::catalog;
use comtainer_suite::toolchain::artifact::{LinkedBinary, PgoMode};
use comt_bench::Lab;
use comt_workloads::deck;

fn clone_with(b: &LinkedBinary, f: impl FnOnce(&mut LinkedBinary)) -> LinkedBinary {
    let mut out = b.clone();
    f(&mut out);
    out
}

fn main() {
    for isa in ["x86_64", "aarch64"] {
        println!("== LULESH single node on {isa} (Figure 3) ==");
        let mut lab = Lab::new(isa, catalog::MINI_SCALE);
        let art = lab.prepare_app("lulesh");
        let d = deck("lulesh", "", isa, 1);

        // The generic binary from the original image.
        let orig_fs = {
            let mut oci = comtainer_suite::oci::layout::OciDir::new();
            oci.export("orig", art.original.manifest_digest, &lab.store)
                .unwrap();
            comtainer_suite::oci::flatten(&oci.blobs, &art.original).unwrap()
        };
        let generic_bin = comtainer_suite::toolchain::artifact::read_linked(
            &orig_fs.read("/app/lulesh").unwrap(),
        )
        .unwrap();
        let generic_env = LibEnv::generic();

        // The natively rebuilt binary (toolchain swap = cxxo).
        let native_bin = art.native_binary.clone();
        let vendor_env = art.native_env.clone();

        // Incremental schemes.
        let cost = execute_with_deck(&generic_bin, &d, &generic_env, &lab.system, 1).seconds;
        let libo = execute_with_deck(&generic_bin, &d, &vendor_env, &lab.system, 1).seconds;
        let cxxo = execute_with_deck(&native_bin, &d, &vendor_env, &lab.system, 1).seconds;
        let lto_bin = clone_with(&native_bin, |b| b.lto_applied = true);
        let lto = execute_with_deck(&lto_bin, &d, &vendor_env, &lab.system, 1).seconds;
        let pgo_bin = clone_with(&lto_bin, |b| b.opt.pgo = PgoMode::Optimized);
        let pgo = execute_with_deck(&pgo_bin, &d, &vendor_env, &lab.system, 1).seconds;

        println!("  cost (generic image) : {cost:8.2}s");
        println!("  +libo                : {libo:8.2}s  ({:+.1}%)", pct(cost, libo));
        println!("  +cxxo                : {cxxo:8.2}s  ({:+.1}%)", pct(libo, cxxo));
        println!("  +lto                 : {lto:8.2}s  ({:+.1}%)", pct(cxxo, lto));
        println!("  +pgo                 : {pgo:8.2}s  ({:+.1}%)", pct(lto, pgo));
        println!(
            "  total libo+cxxo reduction: {:.1}% (paper: up to {}%)",
            (1.0 - cxxo / cost) * 100.0,
            if isa == "x86_64" { 50 } else { 72 }
        );
        println!(
            "  lto extra: {:.1}% (paper 17.5%), pgo extra: {:.1}% (paper 9.6%)\n",
            (1.0 - lto / cxxo) * 100.0,
            (1.0 - pgo / lto) * 100.0
        );
    }
}

fn pct(old: f64, new: f64) -> f64 {
    (1.0 - new / old) * 100.0
}
