//! Generate the example extended-image OCI layouts that `comt check`
//! verifies in CI.
//!
//! Each layout directory holds a full `dist` / `+coM` / `+coMre` ref
//! family for one application, produced by the real user-side build and
//! rebuild pipeline and written with `OciDir::save`. CI then runs
//! `comt check <dir> --format json` over every generated directory,
//! failing on error-severity findings and publishing the JSON reports as
//! a build artifact.
//!
//! Run with: `cargo run --example make_check_layouts [out-dir]`
//!
//! Besides the pipeline-produced app layouts, a hand-built `simd.oci`
//! layout is written whose recorded build pins `-mavx512f`: it is clean
//! under `comt check`, but `comt audit --target x86-64-v2` must fail it
//! with COMT-A001 (and pass it against `x86-64-v4`) — CI's seeded
//! negative case for the audit gate.

use bytes::Bytes;
use comt_bench::Lab;
use comt_buildsys::{BuildTrace, RawCommand};
use comt_oci::layout::OciDir;
use comt_oci::{BlobStore, ImageBuilder};
use comt_vfs::Vfs;
use comtainer::cache::write_cache;
use comtainer::models::{BuildGraph, FileOrigin, ImageModel, ProcessModels};
use comtainer_suite::pkg::catalog;

/// An extended image whose objects require AVX-512: one compile step with
/// an explicit `-mavx512f`, linked into `/app/run`.
fn simd_layout() -> OciDir {
    let argv = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
    let mut store = BlobStore::new();
    let mut dist_fs = Vfs::new();
    dist_fs
        .write_file_p("/app/run", Bytes::from_static(b"SIMD-BIN"), 0o755)
        .unwrap();
    let img = ImageBuilder::from_scratch("x86_64")
        .with_layer_from_fs(&Vfs::new(), &dist_fs)
        .with_entrypoint(vec!["/app/run".into()])
        .commit(&mut store)
        .unwrap();
    let mut oci = OciDir::new();
    oci.export("simd.dist", img.manifest_digest, &store).unwrap();

    let trace = BuildTrace {
        commands: vec![
            RawCommand {
                argv: argv("gcc -O2 -mavx512f -c kernel.c -o kernel.o"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec!["/src/kernel.c".into()],
                outputs: vec!["/src/kernel.o".into()],
            },
            RawCommand {
                argv: argv("gcc kernel.o -o app"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec!["/src/kernel.o".into()],
                outputs: vec!["/src/app".into()],
            },
        ],
    };
    let mut sources = std::collections::BTreeMap::new();
    sources.insert(
        "/src/kernel.c".to_string(),
        Bytes::from("#pragma comt provides(main)\n"),
    );
    let mut image = ImageModel::default();
    image
        .files
        .insert("/app/run".into(), FileOrigin::Build("/src/app".into()));
    let models = ProcessModels {
        image,
        graph: BuildGraph::new(),
        isa: "x86_64".into(),
        cache_mode: Default::default(),
        targets: vec![],
    };
    write_cache(&mut oci, "simd.dist", &models, &trace, &sources).unwrap();
    oci
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/check-layouts".to_string());
    let out = std::path::PathBuf::from(out);

    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    for app in ["hpccg", "comd"] {
        let art = lab.prepare_app(app);
        let dir = out.join(format!("{app}.oci"));
        let _ = std::fs::remove_dir_all(&dir);
        art.oci.save(&dir).expect("save layout");
        println!(
            "wrote {} (refs: {:?})",
            dir.display(),
            art.oci.index.ref_names()
        );
    }

    let simd = simd_layout();
    let dir = out.join("simd.oci");
    let _ = std::fs::remove_dir_all(&dir);
    simd.save(&dir).expect("save simd layout");
    println!("wrote {} (refs: {:?})", dir.display(), simd.index.ref_names());

    println!(
        "verify with: comt check {}/<app>.oci --format json",
        out.display()
    );
    println!(
        "audit with:  comt audit {}/<app>.oci --target x86-64-v2 --format json",
        out.display()
    );
}
