//! Generate the example extended-image OCI layouts that `comt check`
//! verifies in CI.
//!
//! Each layout directory holds a full `dist` / `+coM` / `+coMre` ref
//! family for one application, produced by the real user-side build and
//! rebuild pipeline and written with `OciDir::save`. CI then runs
//! `comt check <dir> --format json` over every generated directory,
//! failing on error-severity findings and publishing the JSON reports as
//! a build artifact.
//!
//! Run with: `cargo run --example make_check_layouts [out-dir]`

use comt_bench::Lab;
use comtainer_suite::pkg::catalog;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/check-layouts".to_string());
    let out = std::path::PathBuf::from(out);

    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    for app in ["hpccg", "comd"] {
        let art = lab.prepare_app(app);
        let dir = out.join(format!("{app}.oci"));
        let _ = std::fs::remove_dir_all(&dir);
        art.oci.save(&dir).expect("save layout");
        println!(
            "wrote {} (refs: {:?})",
            dir.display(),
            art.oci.index.ref_names()
        );
    }
    println!(
        "verify with: comt check {}/<app>.oci --format json",
        out.display()
    );
}
