//! Quickstart: the full coMtainer workflow on a tiny application.
//!
//! Mirrors the paper's §4.1 command sequence:
//!
//! ```text
//! buildah build --target build -t demo.build .
//! buildah build --target dist  -t demo.dist  .
//! buildah push demo.dist oci:./demo.dist.oci
//! buildah run demo.build -- coMtainer-build        # → demo.dist+coM
//! buildah run demo.rebuild -- coMtainer-rebuild    # → demo.dist+coMre
//! buildah run demo.redirect -- coMtainer-redirect  # → optimized image
//! ```
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use comtainer_suite::buildsys::{Builder, Containerfile, Executor};
use comtainer_suite::core::{
    comtainer_build, comtainer_rebuild, comtainer_redirect, RebuildOptions, StockImages,
    SystemSide,
};
use comtainer_suite::oci::layout::OciDir;
use comtainer_suite::oci::BlobStore;
use comtainer_suite::pkg::catalog;
use comtainer_suite::toolchain::Toolchain;
use comtainer_suite::vfs::Vfs;

fn main() {
    let isa = "x86_64";
    let scale = catalog::MINI_SCALE;

    // --- the user's project: one source file + a two-stage Containerfile -
    let mut context = Vfs::new();
    context
        .write_file_p(
            "/src/hello.c",
            Bytes::from(
                "#pragma comt provides(main)\n\
                 #pragma comt extern(m:sqrt, mpi:MPI_Init)\n\
                 #pragma comt kernel(flops=2e12, vec_frac=0.6, math_frac=0.2, tc_resp=0.8)\n\
                 int main(void) { return 0; }\n",
            ),
            0o644,
        )
        .unwrap();
    let cf = Containerfile::parse(
        r#"
FROM comt:x86-64.env AS build
RUN apt-get install -y mpich
WORKDIR /src
COPY src /src
RUN mpicc -O2 -c hello.c -o hello.o
RUN mpicc hello.o -lm -o hello

FROM comt:x86-64.base AS dist
RUN apt-get install -y mpich
COPY --from=build /src/hello /app/hello
"#,
    )
    .unwrap();

    // --- user side: build the two stages with the recording executor -----
    println!("[1/5] building the two-stage image (recorded by the hijacker)…");
    let mut store = BlobStore::new();
    let stock = StockImages::build(&mut store, isa, scale).unwrap();
    let executor = Executor::new(isa, vec![Toolchain::distro_gcc()])
        .with_repo(catalog::generic_repo_scaled(isa, scale));
    let mut builder = Builder::new(&mut store, executor);
    builder.tag("comt:x86-64.env", &stock.env);
    builder.tag("comt:x86-64.base", &stock.base);
    let result = builder.build("hello", &cf, &context).unwrap();
    println!(
        "      dist image: {} ({} layers, {} KiB)",
        result.images["dist"].manifest_digest.short(),
        result.images["dist"].manifest.layers.len(),
        result.images["dist"].layers_size() / 1024,
    );
    println!(
        "      recorded {} commands in the build trace",
        result.traces["build"].commands.len()
    );

    // --- export + coMtainer-build: the extended image ---------------------
    println!("[2/5] coMtainer-build: analyzing and attaching the cache layer…");
    let mut oci = OciDir::new();
    oci.export("hello.dist", result.images["dist"].manifest_digest, &store)
        .unwrap();
    let base_fs = comtainer_suite::oci::flatten(&store, &stock.base).unwrap();
    let ext_ref = comtainer_build(
        &mut oci,
        "hello.dist",
        &result.containers["build"],
        &result.traces["build"],
        &base_fs,
    )
    .unwrap();
    println!("      extended image ref: {ext_ref}");
    println!("      index refs: {:?}", oci.index.ref_names());

    // --- system side: rebuild with the native toolchain -------------------
    println!("[3/5] coMtainer-rebuild on the target system (vendor toolchain)…");
    let side = SystemSide::native(isa, scale).unwrap();
    let re_ref = comtainer_rebuild(&mut oci, &ext_ref, &side, &RebuildOptions::default()).unwrap();
    println!("      rebuilt image ref: {re_ref}");

    // --- redirect: the final optimized image ------------------------------
    println!("[4/5] coMtainer-redirect: committing the optimized image…");
    let opt_ref = comtainer_redirect(&mut oci, &re_ref, &side).unwrap();
    let optimized = oci.load_image(&opt_ref).unwrap();
    println!("      optimized image: {opt_ref} ({})", optimized.manifest_digest.short());

    // --- compare the binaries ---------------------------------------------
    println!("[5/5] comparing binaries…");
    let orig_fs = comtainer_suite::oci::flatten(&oci.blobs, &oci.load_image("hello.dist").unwrap()).unwrap();
    let opt_fs = comtainer_suite::oci::flatten(&oci.blobs, &optimized).unwrap();
    let orig_bin =
        comtainer_suite::toolchain::artifact::read_linked(&orig_fs.read("/app/hello").unwrap())
            .unwrap();
    let opt_bin =
        comtainer_suite::toolchain::artifact::read_linked(&opt_fs.read("/app/hello").unwrap())
            .unwrap();
    println!(
        "      original : toolchain={} march={} quality={:.2}",
        orig_bin.opt.toolchain,
        orig_bin.target.as_ref().unwrap().march,
        orig_bin.opt.codegen_quality
    );
    println!(
        "      optimized: toolchain={} march={} quality={:.2}",
        opt_bin.opt.toolchain,
        opt_bin.target.as_ref().unwrap().march,
        opt_bin.opt.codegen_quality
    );

    // And run both on the simulated cluster.
    let system = comtainer_suite::perfsim::x86_cluster();
    let repo = catalog::system_repo_scaled(isa, scale);
    let generic = catalog::generic_repo_scaled(isa, scale);
    let t_orig = comtainer_suite::perfsim::execute(
        &orig_bin,
        &comtainer_suite::perfsim::lib_env_from_image(&orig_fs, &[&repo, &generic]),
        &system,
        1,
    );
    let t_opt = comtainer_suite::perfsim::execute(
        &opt_bin,
        &comtainer_suite::perfsim::lib_env_from_image(&opt_fs, &[&repo, &generic]),
        &system,
        1,
    );
    println!(
        "      simulated single-node run: original {:.2}s → optimized {:.2}s ({:+.1}%)",
        t_orig.seconds,
        t_opt.seconds,
        (t_orig.seconds / t_opt.seconds - 1.0) * 100.0
    );
}
