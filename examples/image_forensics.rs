//! Inspecting an extended image: the process models up close (paper §4.3,
//! Figures 7–8).
//!
//! Dumps, for a real workload image: the image model's five-way file
//! classification, the build graph (nodes, kinds, topological levels), a
//! sample compilation model, and the cache-layer contents with the
//! minification ratio.
//!
//! Run with: `cargo run --release --example image_forensics`

use comt_bench::Lab;
use comtainer_suite::core::models::NodeKind;
use comtainer_suite::core::load_cache;
use comtainer_suite::pkg::catalog;

fn main() {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    println!("building the hpl image and running coMtainer-build…\n");
    let art = lab.prepare_app("hpl");
    let cache = load_cache(&art.oci, "hpl.dist+coM").unwrap();

    // --- image model -------------------------------------------------------
    println!("== image model: file origins (paper's five classes) ==");
    for (class, count) in cache.models.image.origin_counts() {
        println!("  {class:8} {count:6} files");
    }
    println!("\n  build-origin files and their build-side producers:");
    for (image_path, build_path) in cache.models.image.build_files() {
        println!("    {image_path}  ←  {build_path}");
    }
    println!("\n  runtime dependencies (reinstalled from the system repo on redirect):");
    for (name, version) in &cache.models.image.runtime_deps {
        println!("    {name} {version}");
    }

    // --- build graph --------------------------------------------------------
    let g = &cache.models.graph;
    println!("\n== build graph model ==");
    println!("  {} nodes ({} leaves, {} products)", g.len(), g.leaves().count(), g.products().count());
    let mut kind_counts = std::collections::BTreeMap::new();
    for n in &g.nodes {
        *kind_counts.entry(format!("{:?}", n.kind)).or_insert(0usize) += 1;
    }
    for (kind, count) in kind_counts {
        println!("  {kind:14} {count}");
    }
    let levels = g.topo_levels().unwrap();
    println!(
        "  topological levels: {} (max parallel width {})",
        levels.len(),
        levels.iter().map(Vec::len).max().unwrap_or(0)
    );

    // --- compilation model ---------------------------------------------------
    println!("\n== a compilation model (the transformable command-line IR) ==");
    let obj_node = g
        .products()
        .find(|n| n.kind == NodeKind::Object)
        .expect("an object node");
    println!("  node: {} ({:?})", obj_node.path, obj_node.kind);
    let model = obj_node.cmd.as_ref().unwrap();
    println!("  argv: {}", model.argv().join(" "));
    let mut inv = model.invocation().unwrap();
    println!(
        "  parsed: mode={:?} O={:?} march={:?}",
        inv.mode(),
        inv.opt_level(),
        inv.march()
    );
    inv.set_march("icelake-server");
    inv.enable_lto();
    println!("  after adapter transforms: {}", inv.to_argv().join(" "));

    // --- cache layer -----------------------------------------------------------
    println!("\n== cache layer ==");
    println!("  {} source files embedded, {} bytes total (layer blob {} bytes)",
        cache.sources.len(),
        cache.sources.values().map(bytes::Bytes::len).sum::<usize>(),
        art.cache_layer_size,
    );
    let sample = cache.sources.keys().next().unwrap();
    let text = String::from_utf8_lossy(&cache.sources[sample]);
    println!("  sample ({sample}), first 3 lines:");
    for line in text.lines().take(3) {
        let shown: String = line.chars().take(72).collect();
        println!("    {shown}");
    }
}
