//! The automated PGO feedback loop (paper §4.4).
//!
//! PGO is rarely used for pre-built HPC applications because of "(1) the
//! difficulty of defining 'typical' input data for profiling and (2) the
//! inconvenience of collecting profiling data on remote HPC systems for
//! recompilation". coMtainer closes the loop on the system side:
//!
//! 1. rebuild with `-fprofile-generate` (instrumented image),
//! 2. run the instrumented application on the *actual* input,
//! 3. rebuild with `-fprofile-use=<collected profile>`,
//! 4. redirect to the final optimized image.
//!
//! The demo shows the loop for two LAMMPS inputs whose hot paths differ —
//! the profile from one input does not transfer to the other (`chain`
//! reacts *negatively*, `lj` positively), which is exactly why the loop
//! must run per input.
//!
//! Run with: `cargo run --release --example pgo_feedback_loop`

use comt_bench::{Lab, Scheme};
use comtainer_suite::pkg::catalog;
use comt_workloads::WorkloadRef;

fn main() {
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    println!("preparing the LAMMPS image (build → extend → adapt)…\n");
    let mut art = lab.prepare_app("lammps");

    for input in ["chain", "lj"] {
        let w = WorkloadRef {
            app: "lammps",
            input,
        };
        println!("== lammps.{input} ==");
        let adapted = lab.run(&mut art, &w, Scheme::Adapted, 16);

        // The optimize scheme internally runs the full feedback loop:
        // instrument → trial run (emits the profile) → profile-use rebuild.
        let optimized = lab.run(&mut art, &w, Scheme::Optimized, 16);

        println!("  adapted           : {adapted:8.2}s");
        println!(
            "  optimized (LTO+PGO): {optimized:8.2}s  ({:+.1}% vs adapted)",
            (adapted / optimized - 1.0) * 100.0
        );
        println!(
            "  → PGO {} for this input\n",
            if optimized < adapted { "pays off" } else { "backfires" }
        );
    }

    println!(
        "The same binary, two inputs, opposite PGO outcomes — the paper's\n\
         §5.3 observation that advanced-optimization effects are highly\n\
         application- (and input-) dependent."
    );
}
