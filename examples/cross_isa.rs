//! Cross-ISA image transformation (paper §5.5).
//!
//! Takes the x86-64 extended image of a portable application, analyzes its
//! cache for ISA blockers, ports the build script with minimal edits, and
//! rebuilds + redirects it on the AArch64 system — contrasted with the
//! traditional cross-compilation (`xbuild`) script whose edit distance is
//! an order of magnitude larger (Figure 11).
//!
//! Run with: `cargo run --release --example cross_isa`

use comt_bench::Lab;
use comtainer_suite::core::crossisa::{analyze_cross, port_containerfile, xbuild_containerfile};
use comtainer_suite::core::{comtainer_rebuild, comtainer_redirect, RebuildOptions, SystemSide};
use comtainer_suite::buildsys::Containerfile;
use comtainer_suite::pkg::catalog;
use comt_workloads::containerfile;

fn main() {
    // Build the x86-64 extended image of minife (an ISA-portable app whose
    // only blockers are script-level flags).
    println!("building minife on x86-64 and extending it…");
    let mut lab = Lab::new("x86_64", catalog::MINI_SCALE);
    let mut art = lab.prepare_app("minife");
    let cache = comtainer_suite::core::load_cache(&art.oci, "minife.dist+coM").unwrap();

    // Feasibility analysis against aarch64.
    let report = analyze_cross(&cache, "aarch64");
    println!("cross-ISA analysis → {} blocker(s):", report.blockers.len());
    for b in &report.blockers {
        println!("  - {b:?}");
    }
    assert!(
        report.portable_with_script_edits(),
        "minife should be fixable via script edits"
    );

    // Port the build script (coMtainer path) vs generate the xbuild script.
    let cf = containerfile("minife", "x86_64").unwrap();
    let ported = port_containerfile(&cf, "x86_64", "aarch64");
    let xbuild = xbuild_containerfile(&cf, "aarch64");
    let (pa, pd) = Containerfile::line_diff(&cf, &ported);
    let (xa, xd) = Containerfile::line_diff(&cf, &xbuild);
    println!("\nbuild-script edit distance (Figure 11 metric):");
    println!("  coMtainer port : +{pa} / -{pd} lines");
    println!("  xbuild         : +{xa} / -{xd} lines");

    // Execute the ported rebuild on the aarch64 system side: drop the
    // ISA-specific flags from the *cached trace* the same way the ported
    // script would, then rebuild + redirect.
    println!("\nrebuilding the x86-64 extended image on the aarch64 system…");
    let arm_side = SystemSide::native("aarch64", catalog::MINI_SCALE).unwrap();

    // First show that the unmodified image fails (the -mavx2 flag).
    let direct = comtainer_rebuild(
        &mut art.oci,
        "minife.dist+coM",
        &arm_side,
        &RebuildOptions::default(),
    );
    match direct {
        Err(e) => println!("  unmodified rebuild fails as expected: {e}"),
        Ok(_) => println!("  unmodified rebuild unexpectedly succeeded"),
    }

    // Apply the minor modification: strip the x86 flags from the cached
    // trace (the ported build script).
    let mut cache2 = comtainer_suite::core::load_cache(&art.oci, "minife.dist+coM").unwrap();
    for cmd in &mut cache2.trace.commands {
        cmd.argv.retain(|t| t != "-mavx2" && t != "-mfma" && t != "-msse4.2");
    }
    let artifacts =
        comtainer_suite::core::rebuild_artifacts(&cache2, &arm_side, &RebuildOptions::default())
            .expect("ported rebuild succeeds");
    comtainer_suite::core::cache::write_rebuild(&mut art.oci, "minife.dist+coM", &artifacts)
        .unwrap();
    let opt_ref = comtainer_redirect(&mut art.oci, "minife.dist+coMre", &arm_side).unwrap();
    let image = art.oci.load_image(&opt_ref).unwrap();
    let fs = comtainer_suite::oci::flatten(&art.oci.blobs, &image).unwrap();
    let bin =
        comtainer_suite::toolchain::artifact::read_linked(&fs.read("/app/minife").unwrap())
            .unwrap();
    println!(
        "  ported rebuild OK: binary now targets {} / {} via {}",
        bin.target.as_ref().unwrap().isa,
        bin.target.as_ref().unwrap().march,
        bin.opt.toolchain,
    );
    println!("\nAn x86-64 user image, redirected into a native AArch64 image — the\ncross-ISA workflow of §5.5.");
}
