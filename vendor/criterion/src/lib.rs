//! Vendored minimal stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `sample_size`, the `criterion_group!`/`criterion_main!`
//! macros) with a simple wall-clock measurement loop: warm up briefly, then
//! run a fixed number of timed samples and report the mean and min per
//! iteration. No statistics, plotting or state files.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark's display id (`group/function` or `group/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        run_bench(&id, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.0);
        run_bench(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: a few untimed runs, also used to size the batches.
        let warm_start = Instant::now();
        black_box(routine());
        let probe = warm_start.elapsed();
        // Batch enough iterations that one sample is >= ~1ms for fast
        // routines, but cap total time for slow ones.
        let per_iter = probe.max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000)
            as usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_bench(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) => format!("  {:>10}/s", human_bytes(per_second(n, mean))),
            Throughput::Elements(n) => format!("  {:>10.0} elem/s", per_second(n, mean)),
        })
        .unwrap_or_default();
    println!(
        "{id:<48} mean {:>12}  min {:>12}{rate}",
        human_duration(mean),
        human_duration(min)
    );
}

fn per_second(n: u64, mean: Duration) -> f64 {
    n as f64 / mean.as_secs_f64().max(1e-12)
}

fn human_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn human_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut rate = rate;
    let mut unit = 0;
    while rate >= 1024.0 && unit < UNITS.len() - 1 {
        rate /= 1024.0;
        unit += 1;
    }
    format!("{rate:.1} {}", UNITS[unit])
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point: run each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        let mut ran = 0u32;
        g.bench_function("sum", |b| {
            ran += 1;
            b.iter(|| (0..64u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, n| {
            b.iter(|| (0..*n).product::<u64>())
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(human_duration(Duration::from_nanos(500)), "500 ns");
        assert!(human_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(human_bytes(2048.0).starts_with("2.0 KiB"));
    }
}
