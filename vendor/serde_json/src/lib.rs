//! Vendored minimal stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] model to JSON text (compact and
//! pretty, matching serde_json's formatting conventions: `":"` vs `": "`
//! separators, two-space indent) and parses JSON text back. Only the
//! functions the workspace calls are provided.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialization.

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // serde_json cannot represent non-finite floats; emit null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing.

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(Error::new("lone surrogate"));
                                }
                                self.pos += 1; // on the 'u', as hex4 expects
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input was validated).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(Error::new)?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read the 4 hex digits after `\u` (cursor on the `u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end]).map_err(Error::new)?;
        let cp = u32::from_str_radix(hex, 16).map_err(Error::new)?;
        self.pos = end; // cursor past the digits; the caller `continue`s
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error::new(format!("bad number {text:?}: {e}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(
            parse_value("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".into())
        );
        assert_eq!(parse_value("1.5").unwrap(), Value::Float(1.5));
    }

    #[test]
    fn object_order_preserved() {
        let v = parse_value(r#"{"z": 1, "a": [2, 3], "m": {"x": "y"}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
        let text = to_string(&WrapperForTest(v.clone())).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    struct WrapperForTest(Value);
    impl serde::Serialize for WrapperForTest {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn pretty_formatting_conventions() {
        #[derive(Debug)]
        struct T;
        impl serde::Serialize for T {
            fn to_value(&self) -> Value {
                Value::Object(vec![
                    ("schemaVersion".into(), Value::Int(2)),
                    ("empty".into(), Value::Object(vec![])),
                    ("list".into(), Value::Array(vec![Value::Int(1)])),
                ])
            }
        }
        let pretty = to_string_pretty(&T).unwrap();
        assert!(pretty.contains("\"schemaVersion\": 2"), "{pretty}");
        assert!(pretty.contains("\"empty\": {}"), "{pretty}");
        let compact = to_string(&T).unwrap();
        assert!(compact.contains("\"schemaVersion\":2"), "{compact}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(from_slice::<u32>(b"\"nope\"").is_err());
    }
}
