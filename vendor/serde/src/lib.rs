//! Vendored minimal stand-in for `serde`.
//!
//! The workspace builds hermetically (no network, no registry), so instead
//! of the real serde this crate provides a drastically simplified
//! value-based data model: [`Serialize`] renders a type into a JSON-like
//! [`Value`] tree, [`Deserialize`] reads one back. The companion
//! `serde_json` stand-in handles text. The derive macros (re-exported from
//! the vendored `serde_derive`) cover named structs, transparent newtypes
//! and externally-tagged enums with `rename` / `default` /
//! `skip_serializing_if` attributes — exactly the shapes this workspace
//! serializes (OCI spec structs and the coMtainer process models).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like value tree. Object entries preserve insertion order so
/// struct fields serialize in declaration order, like serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object entry list (helper for derived code).
    pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// One-word description for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, found {}", got.kind()))
    }

    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    pub fn unknown_variant(name: &str) -> Self {
        Error(format!("unknown variant `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls.

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::expected("tuple array", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&Value::Null).unwrap(),
            None::<u8>
        );
        let pair = ("a".to_string(), 3usize);
        assert_eq!(
            <(String, usize)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
