//! Vendored minimal stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro with an optional `proptest_config` header,
//! range / tuple / collection / regex-string strategies, `prop_map`,
//! `prop_oneof!`, `Just`, `any::<T>()` and `prop::sample::Index`. Cases are
//! generated from a deterministic per-test PRNG; failing inputs are
//! reported verbatim (no shrinking).

use std::fmt;
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Deterministic PRNG (splitmix64 core).

pub struct TestRng(u64);

impl TestRng {
    /// Seeded from the test name so every test gets a distinct, stable
    /// stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-data generation.
        self.next_u64() % bound
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// The strategy abstraction.

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of its value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

// Numeric ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
}

// String patterns: a `&str` literal is a regex-subset strategy.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pat = pattern::parse(self)
            .unwrap_or_else(|e| panic!("bad string pattern {self:?}: {e}"));
        pattern::sample(&pat, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        self.as_str().sample(rng)
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`.

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// The `prop` module tree (collections, sample).

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeMap;
        use std::ops::Range;

        /// Size specification: an exact count or a range.
        pub struct SizeRange {
            min: usize,
            span: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, span: 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange {
                    min: r.start,
                    span: (r.end - r.start).max(1),
                }
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                self.min + rng.below(self.span as u64) as usize
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        pub fn btree_map<K, V>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                let mut m = BTreeMap::new();
                // Key collisions shrink the map; retry a bounded number of
                // times so minimum sizes are honored in practice.
                let mut attempts = 0;
                while m.len() < n && attempts < n * 10 + 10 {
                    m.insert(self.key.sample(rng), self.value.sample(rng));
                    attempts += 1;
                }
                m
            }
        }
    }

    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection whose size is only known at use time.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// Project onto `[0, len)`. `len` must be non-zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64() as usize)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string generation.

mod pattern {
    use super::TestRng;

    /// One pattern atom with its repetition counts.
    pub enum Atom {
        Lit(char),
        /// Expanded alternatives of a `[...]` class.
        Class(Vec<char>),
        Group(Vec<Repeat>),
    }

    pub struct Repeat {
        pub atom: Atom,
        pub min: u32,
        pub max: u32,
    }

    pub fn parse(pat: &str) -> Result<Vec<Repeat>, String> {
        let chars: Vec<char> = pat.chars().collect();
        let mut pos = 0;
        let seq = parse_seq(&chars, &mut pos, /*in_group=*/ false)?;
        if pos != chars.len() {
            return Err(format!("unexpected ')' at {pos}"));
        }
        Ok(seq)
    }

    fn parse_seq(chars: &[char], pos: &mut usize, in_group: bool) -> Result<Vec<Repeat>, String> {
        let mut seq = Vec::new();
        while *pos < chars.len() {
            let c = chars[*pos];
            if c == ')' {
                if in_group {
                    return Ok(seq);
                }
                return Err("unmatched ')'".into());
            }
            let atom = match c {
                '[' => {
                    *pos += 1;
                    Atom::Class(parse_class(chars, pos)?)
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, true)?;
                    if chars.get(*pos) != Some(&')') {
                        return Err("unterminated group".into());
                    }
                    *pos += 1;
                    Atom::Group(inner)
                }
                '\\' => {
                    *pos += 1;
                    let esc = *chars.get(*pos).ok_or("trailing backslash")?;
                    *pos += 1;
                    Atom::Lit(unescape(esc))
                }
                '|' => return Err("alternation is not supported".into()),
                c => {
                    *pos += 1;
                    Atom::Lit(c)
                }
            };
            // Repetition suffix.
            let (min, max) = match chars.get(*pos) {
                Some('{') => {
                    *pos += 1;
                    parse_counts(chars, pos)?
                }
                Some('?') => {
                    *pos += 1;
                    (0, 1)
                }
                Some('*') => {
                    *pos += 1;
                    (0, 8)
                }
                Some('+') => {
                    *pos += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            seq.push(Repeat { atom, min, max });
        }
        if in_group {
            return Err("unterminated group".into());
        }
        Ok(seq)
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other, // \. \[ \] \\ \- etc: the literal character
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Result<Vec<char>, String> {
        let mut out = Vec::new();
        if chars.get(*pos) == Some(&'^') {
            return Err("negated classes are not supported".into());
        }
        while let Some(&c) = chars.get(*pos) {
            match c {
                ']' => {
                    *pos += 1;
                    if out.is_empty() {
                        return Err("empty character class".into());
                    }
                    return Ok(out);
                }
                '\\' => {
                    *pos += 1;
                    let esc = *chars.get(*pos).ok_or("trailing backslash in class")?;
                    *pos += 1;
                    out.push(unescape(esc));
                }
                c => {
                    *pos += 1;
                    // Range `a-z` (a '-' not followed by ']' and not first).
                    if chars.get(*pos) == Some(&'-')
                        && chars.get(*pos + 1).is_some_and(|&n| n != ']')
                    {
                        *pos += 1;
                        let hi = chars[*pos];
                        *pos += 1;
                        let (lo, hi) = (c as u32, hi as u32);
                        if lo > hi {
                            return Err(format!("bad range {c}-{hi}"));
                        }
                        for cp in lo..=hi {
                            if let Some(ch) = char::from_u32(cp) {
                                out.push(ch);
                            }
                        }
                    } else {
                        out.push(c);
                    }
                }
            }
        }
        Err("unterminated character class".into())
    }

    fn parse_counts(chars: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
        let mut min = String::new();
        let mut max = String::new();
        let mut in_max = false;
        while let Some(&c) = chars.get(*pos) {
            *pos += 1;
            match c {
                '}' => {
                    let lo: u32 = min.parse().map_err(|_| "bad repetition count")?;
                    let hi: u32 = if in_max {
                        if max.is_empty() {
                            lo + 8
                        } else {
                            max.parse().map_err(|_| "bad repetition count")?
                        }
                    } else {
                        lo
                    };
                    return Ok((lo, hi));
                }
                ',' => in_max = true,
                d if d.is_ascii_digit() => {
                    if in_max {
                        max.push(d);
                    } else {
                        min.push(d);
                    }
                }
                other => return Err(format!("bad character {other:?} in repetition")),
            }
        }
        Err("unterminated repetition".into())
    }

    pub fn sample(seq: &[Repeat], rng: &mut TestRng) -> String {
        let mut out = String::new();
        sample_into(seq, rng, &mut out);
        out
    }

    fn sample_into(seq: &[Repeat], rng: &mut TestRng, out: &mut String) {
        for rep in seq {
            // Note `{m,n}` is inclusive of n in regex syntax.
            let span = u64::from(rep.max - rep.min) + 1;
            let count = rep.min + rng.below(span) as u32;
            for _ in 0..count {
                match &rep.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(choices) => {
                        let i = rng.below(choices.len() as u64) as usize;
                        out.push(choices[i]);
                    }
                    Atom::Group(inner) => sample_into(inner, rng, out),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Test-runner plumbing.

/// Per-test configuration (`#![proptest_config(…)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (from `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Macros.

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("proptest case {} of {} failed: {}",
                               __case + 1, __cfg.cases, __e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = crate::TestRng::deterministic("patterns");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let v = Strategy::sample(&"[0-9]{1,2}(\\.[0-9]{1,2}){0,2}(~rc[0-9])?", &mut rng);
            assert!(v.chars().next().unwrap().is_ascii_digit(), "{v:?}");

            let lit = Strategy::sample(&"b/c", &mut rng);
            assert_eq!(lit, "b/c");

            let cls = Strategy::sample(&"[a-z0-9 +*=\\[\\];]{0,10}", &mut rng);
            assert!(cls.len() <= 10);
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..500 {
            let x = Strategy::sample(&(0u32..7), &mut rng);
            assert!(x < 7);
            let (a, b) = Strategy::sample(&((1usize..3), (10i64..12)), &mut rng);
            assert!((1..3).contains(&a) && (10..12).contains(&b));
            let f = Strategy::sample(&(0.0f64..1e6), &mut rng);
            assert!((0.0..1e6).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: vec sizes respect bounds, oneof picks arms.
        #[test]
        fn macro_plumbing(
            v in prop::collection::vec(any::<u8>(), 1..5),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(idx.index(v.len()) < v.len());
        }
    }
}
