//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The workspace builds hermetically (no network, no registry), so the few
//! external crates it needs are vendored as from-scratch minimal
//! implementations. This one provides [`Bytes`]: a cheaply clonable,
//! immutable, contiguous byte buffer. Only the API surface the workspace
//! actually uses is implemented.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage — `from_static` never allocates.
    Static(&'static [u8]),
    /// Shared heap storage — clones bump a refcount. The `(offset, len)`
    /// window lets `slice` share the same allocation instead of copying,
    /// so serving many byte ranges of one hot blob costs refcounts, not
    /// allocations.
    Shared(Arc<[u8]>, usize, usize),
}

impl Bytes {
    /// The empty buffer (does not allocate).
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy out to a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-range as a new buffer. Zero-copy: the result shares the
    /// parent's storage (static slice or refcounted heap allocation).
    ///
    /// # Panics
    /// Panics if the range is out of bounds, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        match &self.0 {
            Repr::Static(s) => Bytes(Repr::Static(&s[start..end])),
            Repr::Shared(a, off, _) => {
                Bytes(Repr::Shared(Arc::clone(a), off + start, end - start))
            }
        }
    }

    /// Copy a slice of any lifetime into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a, off, len) => &a[*off..off + len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes(Repr::Shared(v.into(), 0, len))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "… {} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_compare_equal() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
    }

    #[test]
    fn slice_ranges() {
        let b = Bytes::from_static(b"0123456789");
        assert_eq!(b.slice(..5), Bytes::from_static(b"01234"));
        assert_eq!(b.slice(3..=4), Bytes::from_static(b"34"));
        assert_eq!(b.slice(8..), Bytes::from_static(b"89"));
    }

    #[test]
    fn clone_is_shallow_for_shared() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from((0u8..=255).cycle().take(4096).collect::<Vec<u8>>());
        let s = b.slice(100..300);
        assert_eq!(s.len(), 200);
        // Same backing allocation: the slice's first byte lives at the
        // parent's offset, not in a fresh copy.
        let parent_ptr = b.as_slice().as_ptr() as usize;
        let slice_ptr = s.as_slice().as_ptr() as usize;
        assert_eq!(slice_ptr, parent_ptr + 100);
        // Slices of slices keep sharing and keep the window math right.
        let ss = s.slice(50..60);
        assert_eq!(ss.as_slice(), &b.as_slice()[150..160]);
        assert_eq!(ss.as_slice().as_ptr() as usize, parent_ptr + 150);
        // Dropping the parent keeps the slice alive (refcount, not borrow).
        drop(b);
        assert_eq!(ss.len(), 10);
    }
}
