//! Vendored minimal `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds hermetically, so this proc-macro crate parses the
//! deriving type's token stream by hand (no `syn`/`quote`) and emits impls
//! of the vendored `serde` crate's value-based traits. Supported shapes are
//! exactly what the workspace uses:
//!
//! * structs with named fields (any visibility),
//! * one-field tuple structs (serialized transparently, like newtypes),
//! * enums with unit, one-field tuple, and struct variants
//!   (externally tagged, serde's default),
//! * field/variant attributes `#[serde(rename = "…")]`, `#[serde(default)]`
//!   and `#[serde(skip_serializing_if = "path")]`.
//!
//! Generics are not supported — the derive fails with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

// ---------------------------------------------------------------------------
// A tiny AST for the supported shapes.

struct Field {
    ident: String,
    /// JSON key: the rename attribute or the field name.
    key: String,
    /// `#[serde(default)]` or an `Option<…>` type.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`, pasted verbatim.
    skip_if: Option<String>,
}

enum Shape {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// One-field tuple struct (`NodeId(pub usize)`): transparent.
    Newtype,
    Enum(Vec<Variant>),
}

struct Variant {
    ident: String,
    key: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// One unnamed field.
    Newtype,
    Struct(Vec<Field>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-level parsing.

/// Serde attributes collected from `#[serde(…)]` groups.
#[derive(Default)]
struct SerdeAttrs {
    rename: Option<String>,
    default: bool,
    skip_if: Option<String>,
}

/// Strip surrounding quotes from a string literal token.
fn unquote(lit: &str) -> String {
    let s = lit.trim();
    let s = s.strip_prefix('"').unwrap_or(s);
    let s = s.strip_suffix('"').unwrap_or(s);
    s.to_string()
}

/// Consume leading attributes from `toks[*i]`, folding `#[serde(…)]`
/// contents into the result and skipping everything else (doc comments,
/// other derives' helper attributes).
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *i < toks.len() {
        let TokenTree::Punct(p) = &toks[*i] else { break };
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        let TokenTree::Group(g) = &toks[*i] else {
            panic!("serde_derive: `#` not followed by an attribute group")
        };
        *i += 1;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        let is_serde = matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let mut arg_toks = args.stream().into_iter().peekable();
        while let Some(tok) = arg_toks.next() {
            let TokenTree::Ident(id) = &tok else { continue };
            match id.to_string().as_str() {
                "default" => attrs.default = true,
                "rename" => {
                    arg_toks.next(); // `=`
                    if let Some(TokenTree::Literal(l)) = arg_toks.next() {
                        attrs.rename = Some(unquote(&l.to_string()));
                    }
                }
                "skip_serializing_if" => {
                    arg_toks.next(); // `=`
                    if let Some(TokenTree::Literal(l)) = arg_toks.next() {
                        attrs.skip_if = Some(unquote(&l.to_string()));
                    }
                }
                other => panic!("serde_derive: unsupported serde attribute `{other}`"),
            }
        }
    }
    attrs
}

/// Parse the fields of a named-field body `{ … }`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        // Visibility: `pub` possibly followed by a `(crate)`-style group.
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive: expected field name, got {:?}", toks[i].to_string())
        };
        let ident = name.to_string();
        i += 1; // name
        i += 1; // `:`
        // Skip the type, tracking angle-bracket depth so commas inside
        // generics don't end the field. Parens/brackets arrive as single
        // Group tokens, so only `<`/`>` need counting.
        let mut depth = 0i32;
        let mut first_type_tok: Option<String> = None;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                t => {
                    if first_type_tok.is_none() {
                        first_type_tok = Some(t.to_string());
                    }
                }
            }
            i += 1;
        }
        let is_option = first_type_tok.as_deref() == Some("Option");
        fields.push(Field {
            key: attrs.rename.clone().unwrap_or_else(|| ident.clone()),
            ident,
            default: attrs.default || is_option,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive: expected variant name, got {:?}", toks[i].to_string())
        };
        let ident = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        // Skip to the comma separating variants.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant {
            key: attrs.rename.unwrap_or_else(|| ident.clone()),
            ident,
            kind,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility before the struct/enum keyword.
    loop {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => break,
            other => panic!("serde_derive: unexpected token {:?}", other.to_string()),
        }
    }
    let is_struct = matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde_derive: expected type name")
    };
    let name = name.to_string();
    i += 1;
    if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving {name})");
    }
    let shape = if is_struct {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let commas = inner
                    .iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                if commas > 1 {
                    panic!("serde_derive: multi-field tuple structs are not supported ({name})");
                }
                Shape::Newtype
            }
            other => panic!("serde_derive: unsupported struct body {:?}", other.to_string()),
        }
    } else {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: unsupported enum body {:?}", other.to_string()),
        }
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then reparsed).

/// Push the field-serialization statements for a list of fields, reading
/// from expressions produced by `access` (e.g. `&self.f` or a binding).
fn gen_fields_ser(out: &mut String, fields: &[Field], access: impl Fn(&Field) -> String) {
    for f in fields {
        let expr = access(f);
        let push = format!(
            "__m.push(({:?}.to_string(), ::serde::Serialize::to_value({expr})));",
            f.key
        );
        match &f.skip_if {
            Some(path) => {
                out.push_str(&format!("if !({path}({expr})) {{ {push} }}\n"));
            }
            None => {
                out.push_str(&push);
                out.push('\n');
            }
        }
    }
}

/// Field-deserialization initializer list for a struct literal.
fn gen_fields_de(fields: &[Field], obj: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fallback = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!("return Err(::serde::Error::missing_field({:?}))", f.key)
        };
        out.push_str(&format!(
            "{}: match ::serde::Value::field({obj}, {:?}) {{ \
               Some(__x) => ::serde::Deserialize::from_value(__x)?, \
               None => {fallback} }},\n",
            f.ident, f.key
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(fields) => {
            let mut b = String::from(
                "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n",
            );
            gen_fields_ser(&mut b, fields, |f| format!("&self.{}", f.ident));
            b.push_str("::serde::Value::Object(__m)");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{} => ::serde::Value::Str({:?}.to_string()),\n",
                        v.ident, v.key
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{}(__inner) => ::serde::Value::Object(vec![({:?}.to_string(), \
                         ::serde::Serialize::to_value(__inner))]),\n",
                        v.ident, v.key
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::from(
                            "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        gen_fields_ser(&mut inner, fields, |f| f.ident.clone());
                        arms.push_str(&format!(
                            "{name}::{} {{ {} }} => {{ {inner} \
                             ::serde::Value::Object(vec![({:?}.to_string(), \
                             ::serde::Value::Object(__m))]) }},\n",
                            v.ident,
                            bindings.join(", "),
                            v.key
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Newtype => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Struct(fields) => format!(
            "let __obj = __v.as_object().ok_or_else(|| \
               ::serde::Error::expected(\"object\", __v))?;\n\
             Ok({name} {{ {} }})",
            gen_fields_de(fields, "__obj")
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{:?} => Ok({name}::{}),\n",
                        v.key, v.ident
                    )),
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "{:?} => Ok({name}::{}(::serde::Deserialize::from_value(__inner)?)),\n",
                        v.key, v.ident
                    )),
                    VariantKind::Struct(fields) => tagged_arms.push_str(&format!(
                        "{:?} => {{ let __obj = __inner.as_object().ok_or_else(|| \
                           ::serde::Error::expected(\"object\", __inner))?;\n\
                           Ok({name}::{} {{ {} }}) }},\n",
                        v.key,
                        v.ident,
                        gen_fields_de(fields, "__obj")
                    )),
                }
            }
            format!(
                "match __v {{\n\
                   ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => Err(::serde::Error::unknown_variant(__other)),\n\
                   }},\n\
                   ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                     let (__tag, __inner) = &__m[0];\n\
                     match __tag.as_str() {{\n\
                       {tagged_arms}\
                       __other => Err(::serde::Error::unknown_variant(__other)),\n\
                     }}\n\
                   }},\n\
                   __other => Err(::serde::Error::expected(\"enum\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
