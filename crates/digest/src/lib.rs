//! Content digests for the coMtainer OCI substrate.
//!
//! OCI blobs are addressed by `sha256:<hex>` digests. This crate provides a
//! from-scratch SHA-256 (FIPS 180-4) implementation, a streaming hasher, a
//! typed [`Digest`] value, and the hex codec used throughout the workspace.
//!
//! The implementation is deliberately dependency-free: digests are the
//! bottom-most substrate of the image system and everything above (blob
//! stores, layer diff-ids, cache-layer addressing) relies on it.

mod hex;
mod sha256;

pub use hex::{decode as hex_decode, encode as hex_encode, HexError};
pub use sha256::{sha256, Sha256};

use std::fmt;
use std::str::FromStr;

/// A typed content digest in the OCI `algorithm:hex` form.
///
/// Only `sha256` is supported, matching what the coMtainer prototype relies
/// on. The inner representation keeps the raw 32 bytes so comparisons and
/// hashing are cheap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest([u8; 32]);

impl Digest {
    /// Digest of the given bytes.
    pub fn of(data: &[u8]) -> Self {
        Digest(sha256(data))
    }

    /// Wrap raw SHA-256 output.
    pub fn from_raw(raw: [u8; 32]) -> Self {
        Digest(raw)
    }

    /// The raw 32 digest bytes.
    pub fn raw(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lower-case hex of the digest bytes (without the algorithm prefix).
    pub fn hex(&self) -> String {
        hex_encode(&self.0)
    }

    /// Canonical `sha256:<hex>` string.
    pub fn to_oci_string(&self) -> String {
        format!("sha256:{}", self.hex())
    }

    /// Short prefix used in human-readable listings (12 hex chars, like
    /// `docker images`).
    pub fn short(&self) -> String {
        self.hex()[..12].to_string()
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sha256:{}", self.hex())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest(sha256:{})", self.short())
    }
}

/// Domain-separated fingerprint of an ordered list of parts.
///
/// Each part is length-prefixed (big-endian u64) before hashing, so the
/// part boundaries are part of the identity: `["ab", "c"]` and
/// `["a", "bc"]` produce different digests. The engine's artifact cache
/// keys are built this way from the adapted compilation model, the adapter
/// chain fingerprint, the toolchain identity and the input contents.
pub fn fingerprint(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for part in parts {
        h.update(&(part.len() as u64).to_be_bytes());
        h.update(part);
    }
    Digest::from_raw(h.finalize())
}

/// Errors when parsing a digest string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigestParseError {
    /// Missing or unsupported `algorithm:` prefix.
    BadAlgorithm,
    /// Hex part malformed or not 64 chars.
    BadHex,
}

impl fmt::Display for DigestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigestParseError::BadAlgorithm => write!(f, "unsupported digest algorithm"),
            DigestParseError::BadHex => write!(f, "malformed digest hex"),
        }
    }
}

impl std::error::Error for DigestParseError {}

impl FromStr for Digest {
    type Err = DigestParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("sha256:")
            .ok_or(DigestParseError::BadAlgorithm)?;
        if rest.len() != 64 {
            return Err(DigestParseError::BadHex);
        }
        let bytes = hex_decode(rest).map_err(|_| DigestParseError::BadHex)?;
        let mut raw = [0u8; 32];
        raw.copy_from_slice(&bytes);
        Ok(Digest(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_empty() {
        assert_eq!(
            Digest::of(b"").to_oci_string(),
            "sha256:e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn digest_of_abc() {
        assert_eq!(
            Digest::of(b"abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn digest_roundtrip_string() {
        let d = Digest::of(b"roundtrip");
        let s = d.to_string();
        let back: Digest = s.parse().unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn digest_parse_rejects_bad_prefix() {
        assert_eq!(
            "md5:abcd".parse::<Digest>().unwrap_err(),
            DigestParseError::BadAlgorithm
        );
    }

    #[test]
    fn digest_parse_rejects_short_hex() {
        assert_eq!(
            "sha256:abcd".parse::<Digest>().unwrap_err(),
            DigestParseError::BadHex
        );
    }

    #[test]
    fn digest_parse_rejects_non_hex() {
        let bad = format!("sha256:{}", "z".repeat(64));
        assert_eq!(bad.parse::<Digest>().unwrap_err(), DigestParseError::BadHex);
    }

    #[test]
    fn short_is_prefix() {
        let d = Digest::of(b"short");
        assert!(d.hex().starts_with(&d.short()));
        assert_eq!(d.short().len(), 12);
    }

    #[test]
    fn fingerprint_separates_part_boundaries() {
        let ab_c = fingerprint(&[b"ab", b"c"]);
        let a_bc = fingerprint(&[b"a", b"bc"]);
        assert_ne!(ab_c, a_bc);
        // And differs from the plain concatenated digest.
        assert_ne!(ab_c, Digest::of(b"abc"));
        // Deterministic.
        assert_eq!(fingerprint(&[b"ab", b"c"]), ab_c);
        // Part count matters even with empty parts.
        assert_ne!(fingerprint(&[b"x"]), fingerprint(&[b"x", b""]));
    }

    #[test]
    fn ordering_matches_bytes() {
        let a = Digest::from_raw([0u8; 32]);
        let b = Digest::from_raw([1u8; 32]);
        assert!(a < b);
    }
}
