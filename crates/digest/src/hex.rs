//! Lower-case hex encoding/decoding used by digest strings.

use std::fmt;

/// Error from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Input length is odd.
    OddLength,
    /// A character outside `[0-9a-fA-F]` at the given offset.
    BadChar(usize),
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HexError::OddLength => write!(f, "hex string has odd length"),
            HexError::BadChar(i) => write!(f, "invalid hex character at offset {i}"),
        }
    }
}

impl std::error::Error for HexError {}

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encode bytes as lower-case hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0xf) as usize] as char);
    }
    out
}

fn nibble(c: u8, pos: usize) -> Result<u8, HexError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(HexError::BadChar(pos)),
    }
}

/// Decode a hex string (either case) to bytes.
pub fn decode(s: &str) -> Result<Vec<u8>, HexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0], i * 2)?;
        let lo = nibble(pair[1], i * 2 + 1)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
    }

    #[test]
    fn decode_known() {
        assert_eq!(decode("00ff10").unwrap(), vec![0x00, 0xff, 0x10]);
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn decode_odd_length() {
        assert_eq!(decode("abc").unwrap_err(), HexError::OddLength);
    }

    #[test]
    fn decode_bad_char_position() {
        assert_eq!(decode("0g").unwrap_err(), HexError::BadChar(1));
    }

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
