//! USTAR 512-byte header encoding/decoding.
//!
//! Field layout (offsets/sizes from POSIX.1-1988):
//!
//! ```text
//! name[100] mode[8] uid[8] gid[8] size[12] mtime[12] chksum[8]
//! typeflag[1] linkname[100] magic[6] version[2] uname[32] gname[32]
//! devmajor[8] devminor[8] prefix[155] pad[12]
//! ```

pub const BLOCK: usize = 512;

pub const TYPE_FILE: u8 = b'0';
pub const TYPE_HARDLINK: u8 = b'1';
pub const TYPE_SYMLINK: u8 = b'2';
pub const TYPE_DIR: u8 = b'5';
/// GNU extension: the payload of this record is the long path of the *next*
/// record.
pub const TYPE_GNU_LONGNAME: u8 = b'L';

/// Raw numeric fields parsed from a header block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawHeader {
    pub name: String,
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub size: u64,
    pub mtime: u64,
    pub typeflag: u8,
    pub linkname: String,
    pub prefix: String,
}

impl RawHeader {
    /// Full path: `prefix/name` when prefix is non-empty.
    pub fn full_path(&self) -> String {
        if self.prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.prefix, self.name)
        }
    }
}

/// A value that cannot be represented in its USTAR header field. These
/// used to be `debug_assert`s, which meant a release build silently
/// truncated the field and produced a corrupt archive; they are hard
/// errors at every profile now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// A string field does not fit (name > 100, prefix > 155,
    /// linkname > 100 bytes) and no fallback representation exists.
    FieldOverflow {
        field: &'static str,
        len: usize,
        max: usize,
    },
    /// A numeric value does not fit its octal field — most notably a file
    /// of 8 GiB or more overflowing the 12-byte size field.
    OctalOverflow {
        field: &'static str,
        value: u64,
        max: u64,
    },
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::FieldOverflow { field, len, max } => write!(
                f,
                "tar header field `{field}` overflows: {len} bytes into a {max}-byte field"
            ),
            HeaderError::OctalOverflow { field, value, max } => write!(
                f,
                "tar header field `{field}` overflows: {value} exceeds the octal maximum {max}"
            ),
        }
    }
}

impl std::error::Error for HeaderError {}

/// Write a NUL-terminated string field.
fn put_str(
    block: &mut [u8; BLOCK],
    off: usize,
    len: usize,
    s: &str,
    field: &'static str,
) -> Result<(), HeaderError> {
    let bytes = s.as_bytes();
    if bytes.len() > len {
        return Err(HeaderError::FieldOverflow {
            field,
            len: bytes.len(),
            max: len,
        });
    }
    block[off..off + bytes.len()].copy_from_slice(bytes);
    Ok(())
}

/// Write an octal numeric field (NUL-terminated, zero-padded).
fn put_octal(
    block: &mut [u8; BLOCK],
    off: usize,
    len: usize,
    value: u64,
    field: &'static str,
) -> Result<(), HeaderError> {
    // len-1 digits + NUL terminator.
    let max = 8u64.pow(len as u32 - 1) - 1;
    if value > max {
        return Err(HeaderError::OctalOverflow { field, value, max });
    }
    let s = format!("{:0width$o}", value, width = len - 1);
    block[off..off + len - 1].copy_from_slice(s.as_bytes());
    block[off + len - 1] = 0;
    Ok(())
}

fn read_str(block: &[u8], off: usize, len: usize) -> String {
    let field = &block[off..off + len];
    let end = field.iter().position(|&b| b == 0).unwrap_or(len);
    String::from_utf8_lossy(&field[..end]).into_owned()
}

fn read_octal(block: &[u8], off: usize, len: usize) -> u64 {
    let field = &block[off..off + len];
    let mut v: u64 = 0;
    for &b in field {
        match b {
            b'0'..=b'7' => v = (v << 3) | (b - b'0') as u64,
            b' ' | 0 => break,
            _ => break, // tolerate garbage after digits
        }
    }
    v
}

/// Split a long path into USTAR `(prefix, name)` if possible.
///
/// Returns `None` when the path cannot be represented and a GNU long-name
/// record is required instead.
pub fn split_path(path: &str) -> Option<(String, String)> {
    if path.len() <= 100 {
        return Some((String::new(), path.to_string()));
    }
    if path.len() > 255 {
        return None;
    }
    // Find a slash such that name (after) <= 100 and prefix (before) <= 155.
    // Prefer the longest possible prefix so the name is most likely to fit.
    for (i, b) in path.bytes().enumerate().rev() {
        if b == b'/' {
            let (prefix, name_with_slash) = path.split_at(i);
            let name = &name_with_slash[1..];
            if !name.is_empty() && name.len() <= 100 && prefix.len() <= 155 {
                return Some((prefix.to_string(), name.to_string()));
            }
        }
    }
    None
}

/// Encode one header block, rejecting any field that does not fit.
#[allow(clippy::too_many_arguments)] // mirrors the USTAR field list
pub fn encode(
    name: &str,
    prefix: &str,
    mode: u32,
    uid: u32,
    gid: u32,
    size: u64,
    mtime: u64,
    typeflag: u8,
    linkname: &str,
) -> Result<[u8; BLOCK], HeaderError> {
    let mut b = [0u8; BLOCK];
    put_str(&mut b, 0, 100, name, "name")?;
    put_octal(&mut b, 100, 8, mode as u64, "mode")?;
    put_octal(&mut b, 108, 8, uid as u64, "uid")?;
    put_octal(&mut b, 116, 8, gid as u64, "gid")?;
    put_octal(&mut b, 124, 12, size, "size")?;
    put_octal(&mut b, 136, 12, mtime, "mtime")?;
    // chksum at 148..156 computed below; spec says treat as spaces first.
    b[148..156].copy_from_slice(b"        ");
    b[156] = typeflag;
    put_str(&mut b, 157, 100, linkname, "linkname")?;
    b[257..263].copy_from_slice(b"ustar\0");
    b[263..265].copy_from_slice(b"00");
    put_str(&mut b, 265, 32, "root", "uname")?;
    put_str(&mut b, 297, 32, "root", "gname")?;
    put_octal(&mut b, 329, 8, 0, "devmajor")?;
    put_octal(&mut b, 337, 8, 0, "devminor")?;
    put_str(&mut b, 345, 155, prefix, "prefix")?;

    let sum: u64 = b.iter().map(|&x| x as u64).sum();
    // Checksum field: 6 octal digits, NUL, space.
    let s = format!("{:06o}", sum);
    b[148..154].copy_from_slice(s.as_bytes());
    b[154] = 0;
    b[155] = b' ';
    Ok(b)
}

/// Validate the checksum of a header block.
pub fn checksum_ok(block: &[u8]) -> bool {
    let stored = read_octal(block, 148, 8);
    let mut sum: u64 = 0;
    for (i, &x) in block.iter().enumerate() {
        if (148..156).contains(&i) {
            sum += b' ' as u64;
        } else {
            sum += x as u64;
        }
    }
    sum == stored
}

/// Decode one header block (checksum already validated by the caller).
pub fn decode(block: &[u8]) -> RawHeader {
    RawHeader {
        name: read_str(block, 0, 100),
        mode: read_octal(block, 100, 8) as u32,
        uid: read_octal(block, 108, 8) as u32,
        gid: read_octal(block, 116, 8) as u32,
        size: read_octal(block, 124, 12),
        mtime: read_octal(block, 136, 12),
        typeflag: block[156],
        linkname: read_str(block, 157, 100),
        prefix: read_str(block, 345, 155),
    }
}

/// Whether a block is all zeros (archive terminator).
pub fn is_zero_block(block: &[u8]) -> bool {
    block.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let b = encode("file.txt", "", 0o644, 10, 20, 1234, 999, TYPE_FILE, "").unwrap();
        assert!(checksum_ok(&b));
        let h = decode(&b);
        assert_eq!(h.name, "file.txt");
        assert_eq!(h.mode, 0o644);
        assert_eq!(h.uid, 10);
        assert_eq!(h.gid, 20);
        assert_eq!(h.size, 1234);
        assert_eq!(h.mtime, 999);
        assert_eq!(h.typeflag, TYPE_FILE);
    }

    #[test]
    fn split_short_path() {
        assert_eq!(split_path("a/b/c").unwrap(), ("".into(), "a/b/c".into()));
    }

    #[test]
    fn split_long_path_prefers_fit() {
        let p = format!("{}name", "dir/".repeat(30)); // 124 chars
        let (prefix, name) = split_path(&p).unwrap();
        assert_eq!(format!("{prefix}/{name}"), p);
        assert!(name.len() <= 100 && prefix.len() <= 155);
    }

    #[test]
    fn split_unsplittable() {
        let p = "x".repeat(150); // no slash, >100
        assert!(split_path(&p).is_none());
    }

    #[test]
    fn split_over_255() {
        let p = format!("{}f", "d/".repeat(140));
        assert!(p.len() > 255);
        assert!(split_path(&p).is_none());
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut b = encode("f", "", 0o644, 0, 0, 0, 0, TYPE_FILE, "").unwrap();
        b[5] = 0xff;
        assert!(!checksum_ok(&b));
    }

    #[test]
    fn zero_block_detection() {
        assert!(is_zero_block(&[0u8; BLOCK]));
        let b = encode("f", "", 0o644, 0, 0, 0, 0, TYPE_FILE, "").unwrap();
        assert!(!is_zero_block(&b));
    }

    #[test]
    fn size_octal_overflow_is_a_hard_error() {
        // The 12-byte size field tops out at 8 GiB - 1. This used to be a
        // debug_assert, so a release build silently wrote a corrupt header
        // for any file >= 8 GiB; no allocation needed to prove the check.
        let max = 8u64.pow(11) - 1;
        assert!(encode("big", "", 0o644, 0, 0, max, 0, TYPE_FILE, "").is_ok());
        let err = encode("big", "", 0o644, 0, 0, max + 1, 0, TYPE_FILE, "").unwrap_err();
        assert_eq!(
            err,
            HeaderError::OctalOverflow {
                field: "size",
                value: max + 1,
                max,
            }
        );
        assert!(err.to_string().contains("size"));
    }

    #[test]
    fn name_field_overflow_is_a_hard_error() {
        let long = "x".repeat(101);
        let err = encode(&long, "", 0o644, 0, 0, 0, 0, TYPE_FILE, "").unwrap_err();
        assert!(matches!(
            err,
            HeaderError::FieldOverflow {
                field: "name",
                len: 101,
                max: 100,
            }
        ));
        // Linkname has the same 100-byte limit and no fallback record.
        let err = encode("l", "", 0o777, 0, 0, 0, 0, TYPE_SYMLINK, &long).unwrap_err();
        assert!(matches!(err, HeaderError::FieldOverflow { field: "linkname", .. }));
    }

    #[test]
    fn full_path_joins_prefix() {
        let h = RawHeader {
            name: "c".into(),
            mode: 0,
            uid: 0,
            gid: 0,
            size: 0,
            mtime: 0,
            typeflag: TYPE_FILE,
            linkname: String::new(),
            prefix: "a/b".into(),
        };
        assert_eq!(h.full_path(), "a/b/c");
    }
}
