//! Streaming archive writer.

use crate::header::{
    self, BLOCK, TYPE_DIR, TYPE_FILE, TYPE_GNU_LONGNAME, TYPE_HARDLINK, TYPE_SYMLINK,
};
use crate::{Entry, EntryKind};

/// Incremental USTAR writer producing an in-memory archive.
pub struct Writer {
    out: Vec<u8>,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// Empty archive under construction.
    pub fn new() -> Self {
        Writer { out: Vec::new() }
    }

    /// Bytes emitted so far (headers + padded payloads, no terminator).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Append one entry.
    pub fn append(&mut self, entry: &Entry) {
        let (typeflag, linkname, content): (u8, &str, Option<&[u8]>) = match &entry.kind {
            EntryKind::File(c) => (TYPE_FILE, "", Some(c)),
            EntryKind::Dir => (TYPE_DIR, "", None),
            EntryKind::Symlink(t) => (TYPE_SYMLINK, t, None),
            EntryKind::Hardlink(t) => (TYPE_HARDLINK, t, None),
        };

        let (prefix, name) = match header::split_path(&entry.path) {
            Some(split) => split,
            None => {
                // GNU long-name record: payload is the path + NUL.
                let mut payload = entry.path.clone().into_bytes();
                payload.push(0);
                let hdr = header::encode(
                    "././@LongLink",
                    "",
                    0o644,
                    0,
                    0,
                    payload.len() as u64,
                    0,
                    TYPE_GNU_LONGNAME,
                    "",
                );
                self.out.extend_from_slice(&hdr);
                self.append_padded(&payload);
                // Truncated name in the real header; readers use the L record.
                (String::new(), entry.path.chars().take(100).collect())
            }
        };

        let size = content.map(|c| c.len() as u64).unwrap_or(0);
        let hdr = header::encode(
            &name,
            &prefix,
            entry.mode,
            entry.uid,
            entry.gid,
            size,
            entry.mtime,
            typeflag,
            linkname,
        );
        self.out.extend_from_slice(&hdr);
        if let Some(c) = content {
            self.append_padded(c);
        }
    }

    fn append_padded(&mut self, data: &[u8]) {
        self.out.extend_from_slice(data);
        let rem = data.len() % BLOCK;
        if rem != 0 {
            self.out.extend(std::iter::repeat_n(0u8, BLOCK - rem));
        }
    }

    /// Terminate with two zero blocks and return the archive bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.out.extend(std::iter::repeat_n(0u8, 2 * BLOCK));
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_len_tracks_blocks() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.append(&Entry::file("a", vec![1u8; 10], 0o644));
        assert_eq!(w.len(), 1024); // header + one padded block
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2048);
    }

    #[test]
    fn dir_has_no_payload() {
        let mut w = Writer::new();
        w.append(&Entry::dir("d", 0o755));
        assert_eq!(w.len(), 512);
    }
}
