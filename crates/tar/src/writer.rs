//! Streaming archive writer.

use crate::header::{
    self, BLOCK, TYPE_DIR, TYPE_FILE, TYPE_GNU_LONGNAME, TYPE_HARDLINK, TYPE_SYMLINK,
};
use crate::{Entry, EntryKind};

/// Destination for serialized archive bytes.
///
/// The writer pushes headers and padded payloads through this trait as it
/// goes, so a sink can tee the stream into a hasher and a compressor and the
/// archive never has to exist as one contiguous buffer. `Vec<u8>` implements
/// it for the buffered [`write_archive`](crate::write_archive) path.
pub trait TarSink {
    /// Absorb the next run of archive bytes.
    fn write(&mut self, data: &[u8]);
}

impl TarSink for Vec<u8> {
    fn write(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

/// Adapter turning any `FnMut(&[u8])` closure into a [`TarSink`].
pub struct FnSink<F: FnMut(&[u8])>(pub F);

impl<F: FnMut(&[u8])> TarSink for FnSink<F> {
    fn write(&mut self, data: &[u8]) {
        (self.0)(data);
    }
}

/// Incremental USTAR writer emitting into a [`TarSink`].
///
/// `Writer::new()` targets a `Vec<u8>` (the original in-memory API);
/// [`Writer::with_sink`] streams into any sink.
pub struct Writer<S: TarSink = Vec<u8>> {
    sink: S,
    written: usize,
}

impl Default for Writer<Vec<u8>> {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer<Vec<u8>> {
    /// Empty in-memory archive under construction.
    pub fn new() -> Self {
        Writer::with_sink(Vec::new())
    }
}

impl<S: TarSink> Writer<S> {
    /// Writer streaming into `sink`.
    pub fn with_sink(sink: S) -> Self {
        Writer { sink, written: 0 }
    }

    /// Bytes emitted so far (headers + padded payloads, no terminator).
    pub fn len(&self) -> usize {
        self.written
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    fn emit(&mut self, data: &[u8]) {
        self.sink.write(data);
        self.written += data.len();
    }

    /// Append one entry.
    pub fn append(&mut self, entry: &Entry) {
        let (typeflag, linkname, content): (u8, &str, Option<&[u8]>) = match &entry.kind {
            EntryKind::File(c) => (TYPE_FILE, "", Some(c)),
            EntryKind::Dir => (TYPE_DIR, "", None),
            EntryKind::Symlink(t) => (TYPE_SYMLINK, t, None),
            EntryKind::Hardlink(t) => (TYPE_HARDLINK, t, None),
        };

        let (prefix, name) = match header::split_path(&entry.path) {
            Some(split) => split,
            None => {
                // GNU long-name record: payload is the path + NUL.
                let mut payload = entry.path.clone().into_bytes();
                payload.push(0);
                let hdr = header::encode(
                    "././@LongLink",
                    "",
                    0o644,
                    0,
                    0,
                    payload.len() as u64,
                    0,
                    TYPE_GNU_LONGNAME,
                    "",
                );
                self.emit(&hdr);
                self.append_padded(&payload);
                // Truncated name in the real header; readers use the L record.
                (String::new(), entry.path.chars().take(100).collect())
            }
        };

        let size = content.map(|c| c.len() as u64).unwrap_or(0);
        let hdr = header::encode(
            &name,
            &prefix,
            entry.mode,
            entry.uid,
            entry.gid,
            size,
            entry.mtime,
            typeflag,
            linkname,
        );
        self.emit(&hdr);
        if let Some(c) = content {
            self.append_padded(c);
        }
    }

    fn append_padded(&mut self, data: &[u8]) {
        self.emit(data);
        let rem = data.len() % BLOCK;
        if rem != 0 {
            self.emit(&[0u8; BLOCK][..BLOCK - rem]);
        }
    }

    /// Terminate with two zero blocks and return the sink.
    pub fn finish(mut self) -> S {
        self.emit(&[0u8; 2 * BLOCK]);
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_len_tracks_blocks() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.append(&Entry::file("a", vec![1u8; 10], 0o644));
        assert_eq!(w.len(), 1024); // header + one padded block
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2048);
    }

    #[test]
    fn dir_has_no_payload() {
        let mut w = Writer::new();
        w.append(&Entry::dir("d", 0o755));
        assert_eq!(w.len(), 512);
    }

    #[test]
    fn sink_stream_matches_buffered() {
        let entries = vec![
            Entry::dir("d", 0o755),
            Entry::file("d/f", vec![3u8; 777], 0o644),
            Entry::symlink("d/l", "f"),
        ];
        let mut buffered = Writer::new();
        let mut streamed: Vec<u8> = Vec::new();
        let mut w = Writer::with_sink(FnSink(|chunk: &[u8]| streamed.extend_from_slice(chunk)));
        for e in &entries {
            buffered.append(e);
            w.append(e);
        }
        w.finish();
        assert_eq!(buffered.finish(), streamed);
    }
}
