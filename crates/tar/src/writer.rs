//! Streaming archive writer.

use crate::header::{
    self, HeaderError, BLOCK, TYPE_DIR, TYPE_FILE, TYPE_GNU_LONGNAME, TYPE_HARDLINK, TYPE_SYMLINK,
};
use crate::{Entry, EntryKind};

/// Destination for serialized archive bytes.
///
/// The writer pushes headers and padded payloads through this trait as it
/// goes, so a sink can tee the stream into a hasher and a compressor and the
/// archive never has to exist as one contiguous buffer. `Vec<u8>` implements
/// it for the buffered [`write_archive`](crate::write_archive) path.
pub trait TarSink {
    /// Absorb the next run of archive bytes.
    fn write(&mut self, data: &[u8]);
}

impl TarSink for Vec<u8> {
    fn write(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

/// Adapter turning any `FnMut(&[u8])` closure into a [`TarSink`].
pub struct FnSink<F: FnMut(&[u8])>(pub F);

impl<F: FnMut(&[u8])> TarSink for FnSink<F> {
    fn write(&mut self, data: &[u8]) {
        (self.0)(data);
    }
}

/// Incremental USTAR writer emitting into a [`TarSink`].
///
/// `Writer::new()` targets a `Vec<u8>` (the original in-memory API);
/// [`Writer::with_sink`] streams into any sink.
pub struct Writer<S: TarSink = Vec<u8>> {
    sink: S,
    written: usize,
}

impl Default for Writer<Vec<u8>> {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer<Vec<u8>> {
    /// Empty in-memory archive under construction.
    pub fn new() -> Self {
        Writer::with_sink(Vec::new())
    }
}

impl<S: TarSink> Writer<S> {
    /// Writer streaming into `sink`.
    pub fn with_sink(sink: S) -> Self {
        Writer { sink, written: 0 }
    }

    /// Bytes emitted so far (headers + padded payloads, no terminator).
    pub fn len(&self) -> usize {
        self.written
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    fn emit(&mut self, data: &[u8]) {
        self.sink.write(data);
        self.written += data.len();
    }

    /// Append one entry. Fails — without emitting anything — when a field
    /// cannot be represented (payload ≥ 8 GiB, link target > 100 bytes):
    /// the caller gets a [`HeaderError`] instead of a silently corrupt
    /// archive.
    pub fn append(&mut self, entry: &Entry) -> Result<(), HeaderError> {
        let (typeflag, linkname, content): (u8, &str, Option<&[u8]>) = match &entry.kind {
            EntryKind::File(c) => (TYPE_FILE, "", Some(c)),
            EntryKind::Dir => (TYPE_DIR, "", None),
            EntryKind::Symlink(t) => (TYPE_SYMLINK, t, None),
            EntryKind::Hardlink(t) => (TYPE_HARDLINK, t, None),
        };
        let size = content.map(|c| c.len() as u64).unwrap_or(0);

        // Encode every header before emitting any byte, so a failed append
        // leaves the archive exactly as it was.
        let long_record = match header::split_path(&entry.path) {
            Some(split) => {
                let hdr = self.entry_header(entry, &split.1, &split.0, size, typeflag, linkname)?;
                self.emit(&hdr);
                None
            }
            None => {
                // GNU long-name record: payload is the path + NUL. The real
                // header carries a truncated name (at most 100 *bytes*, cut
                // on a char boundary — `chars().take(100)` could exceed the
                // field with multibyte paths); readers use the L record.
                let mut payload = entry.path.clone().into_bytes();
                payload.push(0);
                let long_hdr = header::encode(
                    "././@LongLink",
                    "",
                    0o644,
                    0,
                    0,
                    payload.len() as u64,
                    0,
                    TYPE_GNU_LONGNAME,
                    "",
                )?;
                let mut cut = entry.path.len().min(100);
                while !entry.path.is_char_boundary(cut) {
                    cut -= 1;
                }
                let hdr = self.entry_header(
                    entry,
                    &entry.path[..cut],
                    "",
                    size,
                    typeflag,
                    linkname,
                )?;
                Some((long_hdr, payload, hdr))
            }
        };
        if let Some((long_hdr, payload, hdr)) = long_record {
            self.emit(&long_hdr);
            self.append_padded(&payload);
            self.emit(&hdr);
        }
        if let Some(c) = content {
            self.append_padded(c);
        }
        Ok(())
    }

    fn entry_header(
        &self,
        entry: &Entry,
        name: &str,
        prefix: &str,
        size: u64,
        typeflag: u8,
        linkname: &str,
    ) -> Result<[u8; BLOCK], HeaderError> {
        header::encode(
            name,
            prefix,
            entry.mode,
            entry.uid,
            entry.gid,
            size,
            entry.mtime,
            typeflag,
            linkname,
        )
    }

    fn append_padded(&mut self, data: &[u8]) {
        self.emit(data);
        let rem = data.len() % BLOCK;
        if rem != 0 {
            self.emit(&[0u8; BLOCK][..BLOCK - rem]);
        }
    }

    /// Terminate with two zero blocks and return the sink.
    pub fn finish(mut self) -> S {
        self.emit(&[0u8; 2 * BLOCK]);
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_len_tracks_blocks() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.append(&Entry::file("a", vec![1u8; 10], 0o644)).unwrap();
        assert_eq!(w.len(), 1024); // header + one padded block
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2048);
    }

    #[test]
    fn dir_has_no_payload() {
        let mut w = Writer::new();
        w.append(&Entry::dir("d", 0o755)).unwrap();
        assert_eq!(w.len(), 512);
    }

    #[test]
    fn sink_stream_matches_buffered() {
        let entries = vec![
            Entry::dir("d", 0o755),
            Entry::file("d/f", vec![3u8; 777], 0o644),
            Entry::symlink("d/l", "f"),
        ];
        let mut buffered = Writer::new();
        let mut streamed: Vec<u8> = Vec::new();
        let mut w = Writer::with_sink(FnSink(|chunk: &[u8]| streamed.extend_from_slice(chunk)));
        for e in &entries {
            buffered.append(e).unwrap();
            w.append(e).unwrap();
        }
        w.finish();
        assert_eq!(buffered.finish(), streamed);
    }

    #[test]
    fn failed_append_emits_nothing() {
        let mut w = Writer::new();
        w.append(&Entry::dir("d", 0o755)).unwrap();
        let before = w.len();
        // Unrepresentable link target: no fallback record exists for
        // linkname, so this is a hard error — and the archive must be
        // byte-for-byte what it was before the attempt.
        let bad = Entry::symlink("d/l", "t".repeat(101));
        assert!(w.append(&bad).is_err());
        assert_eq!(w.len(), before);
        let bytes = w.finish();
        assert_eq!(bytes.len(), before + 1024);
    }

    #[test]
    fn long_multibyte_path_truncates_on_char_boundary() {
        // 99 ASCII bytes + 'é' (2 bytes) + more: the naive chars().take(100)
        // would emit 101 bytes into the 100-byte name field.
        let path = format!("{}é{}", "a".repeat(99), "b".repeat(120));
        let mut w = Writer::new();
        w.append(&Entry::file(path.clone(), b"x".to_vec(), 0o644))
            .unwrap();
        let bytes = w.finish();
        let back = crate::read_archive(&bytes).unwrap();
        assert_eq!(back[0].path, path); // the L record carries the full path
    }
}
