//! In-memory USTAR (POSIX.1-1988 + GNU long-name) archives.
//!
//! OCI layers are tar changesets; this crate provides the archive substrate
//! used by `comt-oci` to serialize layer diffs and by `comtainer` to encode
//! the cache layer. It is a from-scratch implementation covering exactly the
//! feature set container layers need:
//!
//! * regular files, directories, symlinks, hardlinks,
//! * `mode`/`uid`/`gid`/`mtime` metadata,
//! * header checksum generation and validation,
//! * `name`+`prefix` splitting, with GNU `L` long-name records as fallback
//!   for paths that do not fit the USTAR fields.
//!
//! Archives live fully in memory, matching the simulated blob store in
//! `comt-oci`. File payloads are reference-counted [`Bytes`], so an entry
//! lifted out of a VFS (or a reader) shares storage instead of copying, and
//! the [`Writer`] is generic over a [`TarSink`] so serialization can stream
//! straight into a hasher/compressor without materializing the archive.

mod header;
mod reader;
mod writer;

pub use bytes::Bytes;
pub use header::HeaderError;
pub use reader::{read_archive, ReadError};
pub use writer::{FnSink, TarSink, Writer};

/// Type of an archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryKind {
    /// Regular file with its content (cheaply cloneable, shared storage).
    File(Bytes),
    /// Directory.
    Dir,
    /// Symbolic link to `target` (not resolved by the archive layer).
    Symlink(String),
    /// Hard link to a previously-archived path.
    Hardlink(String),
}

/// One archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Slash-separated path, no leading `/` (tar convention).
    pub path: String,
    /// Member type and payload.
    pub kind: EntryKind,
    /// POSIX permission bits (e.g. `0o644`).
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
}

impl Entry {
    /// Regular file with default root ownership.
    pub fn file(path: impl Into<String>, content: impl Into<Bytes>, mode: u32) -> Self {
        Entry {
            path: path.into(),
            kind: EntryKind::File(content.into()),
            mode,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    /// Directory entry.
    pub fn dir(path: impl Into<String>, mode: u32) -> Self {
        Entry {
            path: path.into(),
            kind: EntryKind::Dir,
            mode,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    /// Symlink entry.
    pub fn symlink(path: impl Into<String>, target: impl Into<String>) -> Self {
        Entry {
            path: path.into(),
            kind: EntryKind::Symlink(target.into()),
            mode: 0o777,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    /// Size of the payload (files only; other kinds are zero).
    pub fn size(&self) -> u64 {
        match &self.kind {
            EntryKind::File(c) => c.len() as u64,
            _ => 0,
        }
    }
}

/// Serialize entries into a complete archive (convenience over [`Writer`]).
/// Fails if any entry cannot be represented (see [`Writer::append`]).
pub fn write_archive(entries: &[Entry]) -> Result<Vec<u8>, HeaderError> {
    let mut w = Writer::new();
    for e in entries {
        w.append(e)?;
    }
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(entries: Vec<Entry>) -> Vec<Entry> {
        read_archive(&write_archive(&entries).expect("writable entries")).expect("roundtrip read")
    }

    #[test]
    fn roundtrip_simple_file() {
        let e = vec![Entry::file("hello.txt", b"hi".to_vec(), 0o644)];
        assert_eq!(roundtrip(e.clone()), e);
    }

    #[test]
    fn roundtrip_mixed_kinds() {
        let e = vec![
            Entry::dir("usr", 0o755),
            Entry::dir("usr/bin", 0o755),
            Entry::file("usr/bin/app", vec![1, 2, 3, 4, 5], 0o755),
            Entry::symlink("usr/bin/app-link", "app"),
            Entry {
                path: "usr/bin/app-hard".into(),
                kind: EntryKind::Hardlink("usr/bin/app".into()),
                mode: 0o755,
                uid: 0,
                gid: 0,
                mtime: 0,
            },
        ];
        assert_eq!(roundtrip(e.clone()), e);
    }

    #[test]
    fn roundtrip_metadata() {
        let e = vec![Entry {
            path: "data.bin".into(),
            kind: EntryKind::File(vec![0u8; 1000].into()),
            mode: 0o600,
            uid: 1000,
            gid: 100,
            mtime: 1_700_000_000,
        }];
        assert_eq!(roundtrip(e.clone()), e);
    }

    #[test]
    fn roundtrip_content_not_block_aligned() {
        for len in [0usize, 1, 511, 512, 513, 1024, 1025] {
            let e = vec![Entry::file("f", vec![7u8; len], 0o644)];
            assert_eq!(roundtrip(e.clone()), e, "len {len}");
        }
    }

    #[test]
    fn roundtrip_long_path_gnu_extension() {
        let long = format!("{}/deep/file.txt", "component-with-a-long-name/".repeat(12));
        let e = vec![Entry::file(long, b"x".to_vec(), 0o644)];
        assert_eq!(roundtrip(e.clone()), e);
    }

    #[test]
    fn roundtrip_path_using_ustar_prefix() {
        // Longer than 100 but splittable into prefix+name.
        let long = format!("{}end", "abcdefgh/".repeat(14));
        assert!(long.len() > 100 && long.len() < 255);
        let e = vec![Entry::file(long, b"y".to_vec(), 0o644)];
        assert_eq!(roundtrip(e.clone()), e);
    }

    #[test]
    fn empty_archive() {
        let bytes = write_archive(&[]).unwrap();
        assert_eq!(bytes.len(), 1024); // two zero end blocks
        assert!(read_archive(&bytes).unwrap().is_empty());
    }

    #[test]
    fn archive_is_block_aligned() {
        let bytes = write_archive(&[Entry::file("a", vec![9u8; 700], 0o644)]).unwrap();
        assert_eq!(bytes.len() % 512, 0);
    }

    #[test]
    fn unrepresentable_entry_fails_whole_archive() {
        // >100-byte symlink target: hard error in every build profile
        // (used to be a debug_assert + silent truncation in release).
        let err = write_archive(&[Entry::symlink("l", "t".repeat(200))]).unwrap_err();
        assert!(matches!(err, HeaderError::FieldOverflow { field: "linkname", .. }));
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut bytes = write_archive(&[Entry::file("a", b"z".to_vec(), 0o644)]).unwrap();
        bytes[0] ^= 0xff; // clobber first name byte
        assert!(matches!(
            read_archive(&bytes),
            Err(ReadError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_archive_rejected() {
        let bytes = write_archive(&[Entry::file("a", vec![1u8; 600], 0o644)]).unwrap();
        assert!(matches!(
            read_archive(&bytes[..700]),
            Err(ReadError::UnexpectedEof)
        ));
    }
}
