//! Archive reader with checksum validation and GNU long-name support.

use crate::header::{
    self, BLOCK, TYPE_DIR, TYPE_FILE, TYPE_GNU_LONGNAME, TYPE_HARDLINK, TYPE_SYMLINK,
};
use crate::{Entry, EntryKind};
use std::fmt;

/// Error while reading an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// Archive ended mid-header or mid-payload.
    UnexpectedEof,
    /// A header failed checksum validation.
    BadChecksum {
        /// Byte offset of the offending header block.
        offset: usize,
    },
    /// An entry type we do not support (e.g. character devices).
    UnsupportedType {
        /// The raw typeflag byte.
        typeflag: u8,
        /// Path from the header, for diagnostics.
        path: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::UnexpectedEof => write!(f, "unexpected end of archive"),
            ReadError::BadChecksum { offset } => {
                write!(f, "bad header checksum at offset {offset}")
            }
            ReadError::UnsupportedType { typeflag, path } => {
                write!(f, "unsupported entry type {typeflag:#x} for {path:?}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// Parse a complete archive into entries.
///
/// Stops at the first zero block (archive terminator) or at end of input;
/// a missing terminator is tolerated, truncation inside a record is not.
pub fn read_archive(bytes: &[u8]) -> Result<Vec<Entry>, ReadError> {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    let mut pending_longname: Option<String> = None;

    loop {
        if pos == bytes.len() {
            break; // tolerated: no terminator
        }
        if pos + BLOCK > bytes.len() {
            return Err(ReadError::UnexpectedEof);
        }
        let block = &bytes[pos..pos + BLOCK];
        if header::is_zero_block(block) {
            break;
        }
        if !header::checksum_ok(block) {
            return Err(ReadError::BadChecksum { offset: pos });
        }
        let hdr = header::decode(block);
        pos += BLOCK;

        let payload_len = hdr.size as usize;
        let padded = payload_len.div_ceil(BLOCK) * BLOCK;
        if pos + padded > bytes.len() {
            return Err(ReadError::UnexpectedEof);
        }
        let payload = &bytes[pos..pos + payload_len];
        pos += padded;

        if hdr.typeflag == TYPE_GNU_LONGNAME {
            let end = payload.iter().position(|&b| b == 0).unwrap_or(payload.len());
            pending_longname = Some(String::from_utf8_lossy(&payload[..end]).into_owned());
            continue;
        }

        let path = pending_longname.take().unwrap_or_else(|| hdr.full_path());
        let kind = match hdr.typeflag {
            TYPE_FILE | 0 => EntryKind::File(payload.to_vec().into()),
            TYPE_DIR => EntryKind::Dir,
            TYPE_SYMLINK => EntryKind::Symlink(hdr.linkname.clone()),
            TYPE_HARDLINK => EntryKind::Hardlink(hdr.linkname.clone()),
            other => {
                return Err(ReadError::UnsupportedType {
                    typeflag: other,
                    path,
                })
            }
        };

        entries.push(Entry {
            path,
            kind,
            mode: hdr.mode,
            uid: hdr.uid,
            gid: hdr.gid,
            mtime: hdr.mtime,
        });
    }

    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write_archive;

    #[test]
    fn missing_terminator_tolerated() {
        let bytes = write_archive(&[Entry::file("a", b"x".to_vec(), 0o644)]).unwrap();
        // Strip the two terminator blocks.
        let stripped = &bytes[..bytes.len() - 1024];
        let entries = read_archive(stripped).unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn unsupported_type_reported_with_path() {
        let hdr = crate::header::encode("dev", "", 0o644, 0, 0, 0, 0, b'3', "").unwrap();
        let mut bytes = hdr.to_vec();
        bytes.extend_from_slice(&[0u8; 1024]);
        match read_archive(&bytes) {
            Err(ReadError::UnsupportedType { typeflag, path }) => {
                assert_eq!(typeflag, b'3');
                assert_eq!(path, "dev");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn garbage_input_rejected() {
        let bytes = vec![0xabu8; 512];
        assert!(matches!(
            read_archive(&bytes),
            Err(ReadError::BadChecksum { offset: 0 })
        ));
    }
}
