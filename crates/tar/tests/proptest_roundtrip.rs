//! Property tests: any sequence of valid entries survives a write/read
//! round trip byte-for-byte.

use comt_tar::{read_archive, write_archive, Entry, EntryKind};
use proptest::prelude::*;

/// Path segments avoid NUL and '/'; whole path stays under the GNU limit we
/// exercise separately.
fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9._-]{1,12}", 1..6).prop_map(|segs| segs.join("/"))
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        arb_path(),
        prop_oneof![
            prop::collection::vec(any::<u8>(), 0..2048).prop_map(|v| EntryKind::File(v.into())),
            Just(EntryKind::Dir),
            arb_path().prop_map(EntryKind::Symlink),
            arb_path().prop_map(EntryKind::Hardlink),
        ],
        0u32..0o7777,
        0u32..65536,
        0u32..65536,
        0u64..4_000_000_000,
    )
        .prop_map(|(path, kind, mode, uid, gid, mtime)| Entry {
            path,
            kind,
            mode,
            uid,
            gid,
            mtime,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_entries(entries in prop::collection::vec(arb_entry(), 0..12)) {
        let bytes = write_archive(&entries).unwrap();
        prop_assert_eq!(bytes.len() % 512, 0);
        let back = read_archive(&bytes).unwrap();
        prop_assert_eq!(back, entries);
    }

    #[test]
    fn roundtrip_long_paths(depth in 10usize..40, name in "[a-z]{1,20}") {
        let path = format!("{}{}", "segment-dir/".repeat(depth), name);
        let entries = vec![Entry::file(path, b"content".to_vec(), 0o644)];
        let back = read_archive(&write_archive(&entries).unwrap()).unwrap();
        prop_assert_eq!(back, entries);
    }
}
