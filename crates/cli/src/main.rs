//! `comt` — a command-line front door to the coMtainer toolset, operating
//! on on-disk OCI image layout directories (the `xxx.dist.oci` directories
//! of the paper's workflow).
//!
//! ```text
//! comt refs        <layout-dir>                     list image refs
//! comt inspect     <layout-dir> <ref>               image + model summary
//! comt check       <layout-dir> [ref] [--isa x86_64] [--lto] [--deny-warnings] [--format json]
//! comt check       --explain <CODE>                 describe a diagnostic code
//! comt audit       <layout-dir> [ref] [--target ARCH]... [--lto] [--format json]
//! comt rebuild     <layout-dir> <ext-ref>  [--isa x86_64] [--lto] [--parallel] [--bolt] [--stats] [--check]
//! comt retarget    <layout-dir> <ext-ref>  --target ARCH [--target ARCH]... [--isa x86_64] [--lto] [--parallel] [--bolt] [--warm] [--stats]
//! comt redirect    <layout-dir> <coMre-ref> [--isa x86_64]
//! comt adapt       <layout-dir> <ext-ref>  [--isa x86_64] [--lto] [--stats]
//! comt cross-check <layout-dir> <ext-ref>  <target-isa>
//! comt serve       <layout-dir> [--addr HOST:PORT] [--threads N] [--cache-bytes SIZE] [--max-conns N] [--client-rate BYTES/S]
//! comt buildd      <layout-dir> [--addr HOST:PORT] [--workers N] [--quota N]
//! comt submit      <ext-ref> --remote HOST:PORT --tenant NAME [--isa ISA] [--lto] [--parallel] [--priority N] [--wait] [--stats]
//! comt jobs        --remote HOST:PORT [--tenant NAME] [--cancel ID]
//! comt push        <layout-dir> <ref> --remote HOST:PORT [--chunked] [--stats]
//! comt pull        <layout-dir> <ref> --remote HOST:PORT [--full] [--stats]
//! comt gc          <layout-dir> [--apply] [--format json]
//! comt fsck        <layout-dir> [--repair] [--format json]
//! ```
//!
//! The system side (`--isa`) is synthesized with
//! [`comtainer::SystemSide::native`]; payloads use the test scale. The
//! static verifier (`comt check`, `comt rebuild --check`) needs no system
//! rootfs and configures itself from the ISA alone.

use comtainer::crossisa::analyze_cross;
use comtainer::{
    comtainer_rebuild, comtainer_rebuild_with_report, comtainer_redirect, comtainer_retarget,
    load_cache, ArtifactCache, BuildService, ComtError, LtoAdapter, NativeToolchainAdapter,
    Phase, RebuildOptions, ServiceOptions, SystemAdapter, SystemSide,
};
use comt_dist::{
    serve, serve_buildd, split_ref, BuilddClient, DistClient, DistError, HttpOptions,
    JobRequest, JobStatusWire, PullOptions, ServerOptions,
};
use comt_oci::layout::OciDir;
use comt_oci::spec::{Descriptor, MediaType};
use comt_oci::DiskRegistry;
use comt_toolchain::Toolchain;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  comt refs <layout-dir>\n  comt inspect <layout-dir> <ref>\n  comt check <layout-dir> [ref] [--isa ISA] [--lto] [--deny-warnings] [--format json]\n  comt check --explain <CODE>\n  comt audit <layout-dir> [ref] [--target ARCH]... [--lto] [--format json]\n  comt rebuild <layout-dir> <ext-ref> [--isa ISA] [--lto] [--parallel] [--bolt] [--stats] [--check]\n  comt retarget <layout-dir> <ext-ref> --target ARCH [--target ARCH]... [--isa ISA] [--lto] [--parallel] [--bolt] [--warm] [--stats]\n  comt redirect <layout-dir> <coMre-ref> [--isa ISA]\n  comt adapt <layout-dir> <ext-ref> [--isa ISA] [--lto] [--stats]\n  comt cross-check <layout-dir> <ext-ref> <target-isa>\n  comt serve <layout-dir> [--addr HOST:PORT] [--threads N] [--cache-bytes SIZE] [--max-conns N] [--client-rate BYTES/S]\n  comt buildd <layout-dir> [--addr HOST:PORT] [--workers N] [--quota N]\n  comt submit <ext-ref> --remote HOST:PORT --tenant NAME [--isa ISA] [--lto] [--parallel] [--target ARCH]... [--priority N] [--wait] [--stats]\n  comt jobs --remote HOST:PORT [--tenant NAME] [--cancel ID]\n  comt push <layout-dir> <ref> --remote HOST:PORT [--chunked] [--stats]\n  comt pull <layout-dir> <ref> --remote HOST:PORT [--full] [--stats]\n  comt gc <layout-dir> [--apply] [--format json]\n  comt fsck <layout-dir> [--repair] [--format json]"
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_value(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Every value of a repeatable option (`--target x86-64-v2 --target armv8.2-a`).
fn opt_values(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .cloned()
        .collect()
}

fn load_layout(dir: &str) -> Result<OciDir, String> {
    OciDir::load(Path::new(dir)).map_err(|e| format!("cannot load layout {dir}: {e}"))
}

fn save_layout(oci: &OciDir, dir: &str) -> Result<(), String> {
    oci.save(Path::new(dir))
        .map_err(|e| format!("cannot save layout {dir}: {e}"))
}

fn system_side(args: &[String]) -> Result<SystemSide, String> {
    let isa = opt_value(args, "--isa", "x86_64");
    let mut side = SystemSide::native(&isa, comt_pkg::catalog::MINI_SCALE)
        .map_err(|e| format!("system side: {e}"))?;
    if flag(args, "--lto") {
        side = side.with_adapter(Box::new(LtoAdapter::whole_graph()));
    }
    Ok(side)
}

/// The verifier's adapter pipeline: what [`system_side`] would use, minus
/// the rootfs work the static checks never need.
fn check_adapters(args: &[String]) -> Vec<Box<dyn SystemAdapter>> {
    let mut adapters: Vec<Box<dyn SystemAdapter>> = vec![Box::new(NativeToolchainAdapter)];
    if flag(args, "--lto") {
        adapters.push(Box::new(LtoAdapter::whole_graph()));
    }
    adapters
}

fn cmd_refs(dir: &str) -> Result<(), String> {
    let oci = load_layout(dir)?;
    for r in oci.index.ref_names() {
        let image = oci.load_image(&r).map_err(|e| e.to_string())?;
        println!(
            "{r}  {}  {} layers  {:.2} MiB",
            image.manifest_digest.short(),
            image.manifest.layers.len(),
            image.layers_size() as f64 / (1024.0 * 1024.0)
        );
    }
    Ok(())
}

fn cmd_inspect(dir: &str, r: &str) -> Result<(), String> {
    let oci = load_layout(dir)?;
    let image = oci.load_image(r).map_err(|e| e.to_string())?;
    println!("ref          : {r}");
    println!("manifest     : {}", image.manifest_digest);
    println!("architecture : {}", image.architecture());
    println!("layers       : {}", image.manifest.layers.len());
    println!(
        "size         : {:.2} MiB",
        image.layers_size() as f64 / (1024.0 * 1024.0)
    );
    if !image.config.config.entrypoint.is_empty() {
        println!("entrypoint   : {:?}", image.config.config.entrypoint);
    }
    match load_cache(&oci, r) {
        Ok(cache) => {
            println!("\ncoMtainer extended image:");
            println!("  cache mode  : {:?}", cache.models.cache_mode);
            println!("  trace       : {} commands", cache.trace.commands.len());
            println!(
                "  build graph : {} nodes ({} products)",
                cache.models.graph.len(),
                cache.models.graph.products().count()
            );
            println!("  cached files: {}", cache.sources.len());
            println!("  file origins:");
            for (class, count) in cache.models.image.origin_counts() {
                println!("    {class:8} {count}");
            }
            println!("  runtime deps:");
            for (name, version) in &cache.models.image.runtime_deps {
                println!("    {name} {version}");
            }
        }
        Err(_) => println!("\n(not a coMtainer extended image: no cache layer)"),
    }
    Ok(())
}

/// `comt check`: run the static verifier over one ref, or over every
/// extended image in the layout when no ref is given.
fn cmd_check(dir: &str, r: Option<&str>, args: &[String]) -> Result<(), String> {
    let oci = load_layout(dir)?;
    let isa = opt_value(args, "--isa", "x86_64");
    let toolchain = Toolchain::vendor_for(&isa);
    let adapters = check_adapters(args);
    let json = opt_value(args, "--format", "human") == "json";

    let refs: Vec<String> = match r {
        Some(r) => vec![r.to_string()],
        None => oci
            .index
            .ref_names()
            .into_iter()
            .filter(|name| load_cache(&oci, name).is_ok())
            .collect(),
    };
    if refs.is_empty() {
        return Err(format!("{dir}: no coMtainer extended images to check"));
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut reports = Vec::new();
    for name in &refs {
        let report = comt_analyze::check_extended_image(&oci, name, &isa, &toolchain, &adapters)
            .map_err(|e| format!("check {name}: {e}"))?;
        errors += report.error_count();
        warnings += report.warning_count();
        reports.push(report);
    }

    if json {
        // One JSON array over all checked refs, machine-consumable.
        let bodies: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", bodies.join(",\n"));
    } else {
        for report in &reports {
            print!("{}", report.render_human());
        }
    }
    check_verdict(errors, warnings, flag(args, "--deny-warnings"))
}

/// Map finding counts to `comt check`'s exit verdict: errors always fail,
/// warnings fail only under `--deny-warnings`.
fn check_verdict(errors: usize, warnings: usize, deny_warnings: bool) -> Result<(), String> {
    if errors > 0 {
        return Err(format!("{errors} error-severity finding(s)"));
    }
    if deny_warnings && warnings > 0 {
        return Err(format!(
            "{warnings} warning(s) with --deny-warnings in force"
        ));
    }
    Ok(())
}

/// `comt audit`: ISA-compatibility verdict of one ref (or every extended
/// image) against the declared deployment targets. Pure static analysis —
/// nothing is compiled or executed.
fn cmd_audit(dir: &str, r: Option<&str>, args: &[String]) -> Result<(), String> {
    let oci = load_layout(dir)?;
    let targets = opt_values(args, "--target");
    let adapters = check_adapters(args);
    let json = opt_value(args, "--format", "human") == "json";

    let refs: Vec<String> = match r {
        Some(r) => vec![r.to_string()],
        None => oci
            .index
            .ref_names()
            .into_iter()
            .filter(|name| load_cache(&oci, name).is_ok())
            .collect(),
    };
    if refs.is_empty() {
        return Err(format!("{dir}: no coMtainer extended images to audit"));
    }

    let mut errors = 0usize;
    let mut reports = Vec::new();
    for name in &refs {
        // The audit folds flags under the image's own recorded ISA; the
        // vendor toolchain drives the adapter-chain replay per target.
        let cache = load_cache(&oci, name).map_err(|e| format!("audit {name}: {e}"))?;
        let toolchain = Toolchain::vendor_for(&cache.models.isa);
        let report =
            comt_analyze::audit_extended_image(&oci, name, &targets, &toolchain, &adapters)
                .map_err(|e| format!("audit {name}: {e}"))?;
        if report.has_errors() {
            errors += 1;
        }
        reports.push(report);
    }

    if json {
        let bodies: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", bodies.join(",\n"));
    } else {
        for report in &reports {
            print!("{}", report.render_human());
        }
    }
    if errors > 0 {
        return Err(format!("{errors} image(s) failed the audit"));
    }
    Ok(())
}

fn cmd_explain(code: &str) -> Result<(), String> {
    match comt_analyze::render_explain(code) {
        Some(text) => {
            print!("{text}");
            Ok(())
        }
        None => Err(format!(
            "unknown diagnostic code {code} (codes look like COMT-W001)"
        )),
    }
}

fn cmd_rebuild(dir: &str, r: &str, args: &[String]) -> Result<(), String> {
    let mut oci = load_layout(dir)?;
    let side = system_side(args)?;
    let opts = RebuildOptions {
        parallel: flag(args, "--parallel"),
        post_link_layout: flag(args, "--bolt"),
        ..Default::default()
    };
    let new_ref = if flag(args, "--check") {
        let (new_ref, report) = comt_analyze::rebuild_checked(&mut oci, r, &side, &opts)
            .map_err(|e| format!("rebuild: {e}"))?;
        if report.warning_count() > 0 {
            eprint!("{}", report.render_human());
        }
        new_ref
    } else if flag(args, "--stats") {
        let (new_ref, mut report) = comtainer_rebuild_with_report(&mut oci, r, &side, &opts)
            .map_err(|e| format!("rebuild: {e}"))?;
        // Data-plane events (layer codec, blob verification) land in the
        // global recorder; merge them so --stats shows the whole pipeline.
        report.absorb(&comt_observe::global().report());
        print!("{}", report.render());
        new_ref
    } else {
        comtainer_rebuild(&mut oci, r, &side, &opts).map_err(|e| format!("rebuild: {e}"))?
    };
    save_layout(&oci, dir)?;
    println!("rebuilt: {new_ref}");
    Ok(())
}

/// `comt retarget`: one extended image rebuilt for N microarchitectures
/// concurrently over a shared artifact cache, each registered as
/// `<base>+coMre@<target>`. The ISA-compatibility audit gates admission:
/// an unsatisfiable target set aborts before any compile executes.
/// `--warm` fans out twice over one shared artifact cache and reports
/// the second run, proving the zero-execution contract in `--stats`.
fn cmd_retarget(dir: &str, r: &str, args: &[String]) -> Result<(), String> {
    let mut oci = load_layout(dir)?;
    let side = system_side(args)?;
    let targets = opt_values(args, "--target");
    if targets.is_empty() {
        return Err("retarget needs --target ARCH (repeatable); try `comt retarget <dir> <ref> --target x86-64-v3`".into());
    }
    let opts = RebuildOptions {
        parallel: flag(args, "--parallel"),
        post_link_layout: flag(args, "--bolt"),
        // Keep the cache across `--warm`'s second pass.
        artifact_cache: Some(ArtifactCache::new()),
        ..Default::default()
    };
    let (outcome, audit) = comt_analyze::retarget_audited(&mut oci, r, &side, &targets, &opts)
        .map_err(|e| format!("retarget: {e}"))?;
    if audit.report.warning_count() > 0 {
        eprint!("{}", audit.render_human());
    }
    // `--warm`: fan out a second time over the now-populated artifact
    // cache and report *that* run, so the zero-execution contract
    // (`retarget.exec.compile.<target>  0`) is visible in `--stats`.
    let outcome = if flag(args, "--warm") {
        comtainer_retarget(&mut oci, r, &side, &targets, &opts)
            .map_err(|e| format!("retarget (warm): {e}"))?
    } else {
        outcome
    };
    save_layout(&oci, dir)?;
    if flag(args, "--stats") {
        let mut report = outcome.report;
        report.absorb(&comt_observe::global().report());
        print!("{}", report.render());
    }
    for (target, new_ref) in &outcome.images {
        println!("retargeted {target}: {new_ref}");
    }
    Ok(())
}

fn cmd_redirect(dir: &str, r: &str, args: &[String]) -> Result<(), String> {
    let mut oci = load_layout(dir)?;
    let side = system_side(args)?;
    let new_ref = comtainer_redirect(&mut oci, r, &side).map_err(|e| format!("redirect: {e}"))?;
    save_layout(&oci, dir)?;
    println!("redirected: {new_ref}");
    Ok(())
}

fn cmd_adapt(dir: &str, r: &str, args: &[String]) -> Result<(), String> {
    let mut oci = load_layout(dir)?;
    let side = system_side(args)?;
    let rebuilt = if flag(args, "--stats") {
        let (rebuilt, mut report) =
            comtainer_rebuild_with_report(&mut oci, r, &side, &RebuildOptions::default())
                .map_err(|e| format!("rebuild: {e}"))?;
        report.absorb(&comt_observe::global().report());
        print!("{}", report.render());
        rebuilt
    } else {
        comtainer_rebuild(&mut oci, r, &side, &RebuildOptions::default())
            .map_err(|e| format!("rebuild: {e}"))?
    };
    let opt =
        comtainer_redirect(&mut oci, &rebuilt, &side).map_err(|e| format!("redirect: {e}"))?;
    save_layout(&oci, dir)?;
    println!("adapted: {opt}");
    Ok(())
}

/// Render an error with its full `source()` chain, one `caused by:` line
/// per link, so transport failures show the socket-level reason.
fn render_error_chain(e: &dyn std::error::Error) -> String {
    let mut out = e.to_string();
    let mut src = e.source();
    while let Some(s) = src {
        out.push_str("\n  caused by: ");
        out.push_str(&s.to_string());
        src = s.source();
    }
    out
}

/// Wrap a transport failure into the pipeline's error convention
/// (oci class, distribute phase, cause chained) and render it.
fn dist_failure(op: &str, r: &str, e: DistError) -> String {
    let err = ComtError::oci(format!("{op} of {r} failed"))
        .with_phase(Phase::Distribute)
        .with_artifact(r.to_string())
        .with_source(e);
    render_error_chain(&err)
}

fn remote_addr(args: &[String]) -> Result<String, String> {
    let addr = opt_value(args, "--remote", "");
    if addr.is_empty() {
        return Err("missing --remote HOST:PORT".into());
    }
    Ok(addr)
}

fn cmd_serve(dir: &str, args: &[String]) -> Result<(), String> {
    // Disk-backed daemon: holds the layout lock for its lifetime and
    // serves lazily — blobs stream from disk on demand (digest-verified),
    // uploads commit durably before their tag becomes visible. Nothing is
    // slurped into memory at startup, and a `kill -9` at any instant
    // loses at most the in-flight publish.
    let reg =
        DiskRegistry::open(Path::new(dir)).map_err(|e| format!("open layout {dir}: {e}"))?;
    let nrefs = reg.tags().len();
    let nblobs = reg
        .store()
        .digests()
        .map_err(|e| format!("scan layout {dir}: {e}"))?
        .len();
    let addr = opt_value(args, "--addr", "127.0.0.1:7070");
    let mut opts = ServerOptions::default();
    if let Ok(n) = opt_value(args, "--threads", "").parse::<usize>() {
        opts.threads = n.max(1);
    }
    // Sizes accept a K/M/G binary suffix: `--cache-bytes 256M`.
    let parse_size = |s: &str| -> Option<u64> {
        let s = s.trim();
        let (num, shift) = match s.as_bytes().last()? {
            b'K' | b'k' => (&s[..s.len() - 1], 10),
            b'M' | b'm' => (&s[..s.len() - 1], 20),
            b'G' | b'g' => (&s[..s.len() - 1], 30),
            _ => (s, 0),
        };
        num.parse::<u64>().ok().map(|n| n << shift)
    };
    let cache_arg = opt_value(args, "--cache-bytes", "");
    if !cache_arg.is_empty() {
        opts.cache_bytes = parse_size(&cache_arg)
            .ok_or_else(|| format!("--cache-bytes: bad size {cache_arg:?}"))?;
    }
    if let Ok(n) = opt_value(args, "--max-conns", "").parse::<usize>() {
        opts.max_conns = n.max(1);
    }
    let rate_arg = opt_value(args, "--client-rate", "");
    if !rate_arg.is_empty() {
        opts.client_rate = parse_size(&rate_arg)
            .ok_or_else(|| format!("--client-rate: bad rate {rate_arg:?}"))?;
    }
    let server = serve(reg, addr.as_str(), opts).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "serving {dir} on {} ({nrefs} refs, {nblobs} blobs)",
        server.addr()
    );
    // Serve until killed; the daemon threads own the registry and the
    // layout lock dies with the process.
    loop {
        std::thread::park();
    }
}

fn cmd_buildd(dir: &str, args: &[String]) -> Result<(), String> {
    // Multi-tenant rebuild daemon: one shared engine and artifact cache
    // behind the wire. Results persist back into the layout crash-safely
    // after every job, so a restarted daemon picks up where it left off.
    let oci = load_layout(dir)?;
    let mut opts = ServiceOptions {
        persist: Some(Path::new(dir).to_path_buf()),
        ..Default::default()
    };
    if let Ok(n) = opt_value(args, "--workers", "").parse::<usize>() {
        opts.workers = n.max(1);
    }
    if let Ok(n) = opt_value(args, "--quota", "").parse::<usize>() {
        opts.default_quota = n;
    }
    let nrefs = oci.index.ref_names().len();
    let addr = opt_value(args, "--addr", "127.0.0.1:7071");
    let svc = BuildService::start(oci, opts.clone());
    let server = serve_buildd(svc, addr.as_str(), HttpOptions::default())
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "buildd serving {dir} on {} ({nrefs} refs, {} workers, quota {}/tenant)",
        server.addr(),
        opts.workers,
        opts.default_quota
    );
    loop {
        std::thread::park();
    }
}

/// Wrap a buildd transport failure into the pipeline's error convention.
fn buildd_failure(op: &str, e: DistError) -> String {
    let err = ComtError::oci(format!("{op} failed"))
        .with_phase(Phase::Distribute)
        .with_source(e);
    render_error_chain(&err)
}

fn render_job(s: &JobStatusWire) -> String {
    let mut line = format!("job {} [{}] {} state={}", s.id, s.tenant, s.extended_ref, s.state);
    if let Some(r) = &s.result_ref {
        line.push_str(&format!(" result={r}"));
    }
    if let Some(e) = &s.error {
        line.push_str(&format!(" error={e}"));
    }
    line
}

fn cmd_submit(r: &str, args: &[String]) -> Result<(), String> {
    let addr = remote_addr(args)?;
    let tenant = opt_value(args, "--tenant", "");
    if tenant.is_empty() {
        return Err("missing --tenant NAME".into());
    }
    let mut jr = JobRequest::new(&tenant, r);
    jr.isa = opt_value(args, "--isa", "x86_64");
    jr.lto = flag(args, "--lto");
    jr.parallel = flag(args, "--parallel");
    jr.targets = opt_values(args, "--target");
    let prio = opt_value(args, "--priority", "0");
    jr.priority = prio
        .parse::<u8>()
        .map_err(|_| format!("bad --priority {prio}: expected 0-255"))?;

    let client = BuilddClient::new(addr.clone());
    let status = client
        .submit(&jr)
        .map_err(|e| buildd_failure(&format!("submit of {r}"), e))?;
    let id = status.id;
    println!("submitted to {addr}: {}", render_job(&status));
    if !flag(args, "--wait") && !flag(args, "--stats") {
        return Ok(());
    }

    // Follow the job to completion, relaying its log lines as they land.
    // `--stats` additionally fetches the per-job observe report the daemon
    // captured — the same output a local `comt rebuild --stats` prints.
    let mut at_line_start = true;
    let fin = client
        .stream_logs(id, |chunk| {
            for line in chunk.split_inclusive('\n') {
                if at_line_start {
                    print!("job {id} | ");
                }
                print!("{line}");
                at_line_start = line.ends_with('\n');
            }
        })
        .map_err(|e| buildd_failure(&format!("wait for job {id}"), e))?;
    if !at_line_start {
        println!();
    }
    println!("{}", render_job(&fin));
    if flag(args, "--stats") {
        match client
            .report(id)
            .map_err(|e| buildd_failure(&format!("report for job {id}"), e))?
        {
            Some(report) => print!("{}", report.render()),
            None => println!("(no report: job did not complete a rebuild)"),
        }
    }
    if fin.state == "done" {
        Ok(())
    } else {
        Err(format!(
            "job {id} {}: {}",
            fin.state,
            fin.error.as_deref().unwrap_or("(no error detail)")
        ))
    }
}

fn cmd_jobs(args: &[String]) -> Result<(), String> {
    let addr = remote_addr(args)?;
    let client = BuilddClient::new(addr);
    let cancel = opt_value(args, "--cancel", "");
    if !cancel.is_empty() {
        let id = cancel
            .parse::<u64>()
            .map_err(|_| format!("bad --cancel {cancel}: expected a job id"))?;
        let status = client
            .cancel(id)
            .map_err(|e| buildd_failure(&format!("cancel of job {id}"), e))?;
        println!("{}", render_job(&status));
        return Ok(());
    }
    let tenant = opt_value(args, "--tenant", "");
    let tenant = (!tenant.is_empty()).then_some(tenant);
    let jobs = client
        .list(tenant.as_deref())
        .map_err(|e| buildd_failure("job listing", e))?;
    if jobs.is_empty() {
        println!("no jobs");
        return Ok(());
    }
    println!(
        "{:>4}  {:12}  {:9}  {:4}  {:28}  RESULT",
        "ID", "TENANT", "STATE", "PRIO", "REF"
    );
    for j in &jobs {
        println!(
            "{:>4}  {:12}  {:9}  {:4}  {:28}  {}",
            j.id,
            j.tenant,
            j.state,
            j.priority,
            j.extended_ref,
            j.result_ref.as_deref().unwrap_or("-")
        );
    }
    Ok(())
}

fn cmd_push(dir: &str, r: &str, args: &[String]) -> Result<(), String> {
    let oci = load_layout(dir)?;
    let addr = remote_addr(args)?;
    let digest = oci.resolve(r).map_err(|e| e.to_string())?;
    let (name, reference) = split_ref(r);
    let client = DistClient::new(addr.clone());
    let chunked = flag(args, "--chunked");
    let stats = if chunked {
        client.push_image_chunked(
            name,
            reference,
            digest,
            &oci.blobs,
            comt_chunk::ChunkParams::default(),
        )
    } else {
        client.push_image(name, reference, digest, &oci.blobs)
    }
    .map_err(|e| dist_failure("push", r, e))?;
    println!(
        "pushed {r} to {addr}: {} blob(s) moved, {} deduped, {:.2} MiB{}",
        stats.blobs_moved,
        stats.blobs_skipped,
        stats.bytes_moved as f64 / (1024.0 * 1024.0),
        if chunked {
            format!(
                ", {} chunkmap(s) published",
                comt_observe::global().counter("dist.client.chunkmaps_pushed")
            )
        } else {
            String::new()
        }
    );
    if flag(args, "--stats") {
        print!("{}", comt_observe::global().report());
    }
    Ok(())
}

fn cmd_pull(dir: &str, r: &str, args: &[String]) -> Result<(), String> {
    let addr = remote_addr(args)?;
    let mut oci = if Path::new(dir).exists() {
        load_layout(dir)?
    } else {
        OciDir::new()
    };
    let (name, reference) = split_ref(r);
    let client = DistClient::new(addr.clone());
    // Delta pull is the default; `--full` forces whole-blob transfers
    // (and is the escape hatch if a server's chunkmaps are suspect).
    let opts = PullOptions {
        delta: !flag(args, "--full"),
        ..PullOptions::default()
    };
    let (digest, stats) = client
        .pull_image_with(name, reference, &mut oci.blobs, &opts)
        .map_err(|e| dist_failure("pull", r, e))?;
    let size = oci.blobs.get(&digest).map(|b| b.len() as u64).unwrap_or(0);
    oci.index
        .set_ref(r, Descriptor::new(MediaType::ImageManifest, digest, size));
    save_layout(&oci, dir)?;
    println!(
        "pulled {r} from {addr}: {} blob(s) moved, {} already present, {:.2} MiB",
        stats.blobs_moved,
        stats.blobs_skipped,
        stats.bytes_moved as f64 / (1024.0 * 1024.0)
    );
    if stats.chunks_hit > 0 || stats.chunks_fetched > 0 {
        println!(
            "delta: {} chunk(s) reused locally, {} fetched, {:.2} MiB saved",
            stats.chunks_hit,
            stats.chunks_fetched,
            stats.delta_bytes_saved as f64 / (1024.0 * 1024.0)
        );
    }
    if flag(args, "--stats") {
        print!("{}", comt_observe::global().report());
    }
    Ok(())
}

/// Minimal JSON string escape for the hand-built `gc --format json` body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_gc(dir: &str, args: &[String]) -> Result<(), String> {
    if !Path::new(dir).exists() {
        return Err(format!("no such layout: {dir}"));
    }
    let json = opt_value(args, "--format", "human") == "json";
    // Disk-aware sweep under the layout lock: the closure walk reads only
    // manifest blobs, and dead blob *files* are actually deleted (the old
    // in-memory gc dropped them from a copy that was then re-saved whole).
    let mut reg =
        DiskRegistry::open(Path::new(dir)).map_err(|e| format!("open layout {dir}: {e}"))?;
    let (dead, bytes) = reg.gc_plan().map_err(|e| format!("gc {dir}: {e}"))?;
    let apply = flag(args, "--apply");
    let applied = if apply && !dead.is_empty() {
        Some(reg.gc_apply().map_err(|e| format!("gc {dir}: {e}"))?)
    } else {
        None
    };

    if json {
        // Machine-consumable sweep summary, mirroring `fsck --format json`.
        let digests: Vec<String> = dead.iter().map(|d| format!("\"{d}\"")).collect();
        let mut body = format!(
            "{{\"layout\":\"{}\",\"unreachable\":[{}],\"reclaimable_bytes\":{bytes},\"applied\":{apply}",
            json_escape(dir),
            digests.join(",")
        );
        if let Some((n, reclaimed)) = applied {
            body.push_str(&format!(",\"removed\":{n},\"reclaimed_bytes\":{reclaimed}"));
        }
        body.push('}');
        println!("{body}");
        return Ok(());
    }

    let mib = bytes as f64 / (1024.0 * 1024.0);
    if dead.is_empty() {
        let total = reg
            .store()
            .digests()
            .map_err(|e| format!("scan layout {dir}: {e}"))?
            .len();
        println!("{dir}: nothing to collect ({total} blobs, all reachable)");
        return Ok(());
    }
    for d in &dead {
        println!("unreachable {d}");
    }
    match applied {
        Some((n, reclaimed)) => println!(
            "removed {n} blob(s), reclaimed {:.2} MiB",
            reclaimed as f64 / (1024.0 * 1024.0)
        ),
        None => println!(
            "{} unreachable blob(s), {mib:.2} MiB reclaimable (dry run; pass --apply to delete)",
            dead.len()
        ),
    }
    Ok(())
}

fn cmd_fsck(dir: &str, args: &[String]) -> Result<(), String> {
    let opts = comt_oci::FsckOptions {
        repair: flag(args, "--repair"),
    };
    let report =
        comt_oci::fsck(Path::new(dir), &opts).map_err(|e| format!("fsck {dir}: {e}"))?;
    if opt_value(args, "--format", "human") == "json" {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    let errors = report.unrepaired_errors();
    if errors > 0 {
        return Err(if opts.repair {
            format!("{errors} error(s) could not be repaired")
        } else {
            format!("{errors} error(s); run `comt fsck {dir} --repair` to recover")
        });
    }
    Ok(())
}

fn cmd_cross_check(dir: &str, r: &str, target_isa: &str) -> Result<(), String> {
    let oci = load_layout(dir)?;
    let cache = load_cache(&oci, r).map_err(|e| e.to_string())?;
    let report = analyze_cross(&cache, target_isa);
    if report.portable() {
        println!("portable to {target_isa}: yes, no modifications needed");
    } else if report.portable_with_script_edits() {
        println!("portable to {target_isa}: with build-script edits:");
        for b in &report.blockers {
            println!("  - {b:?}");
        }
    } else {
        println!("NOT portable to {target_isa}:");
        for b in &report.blockers {
            println!("  - {b:?}");
        }
        return Err("ISA-specific source content blocks the rebuild".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, dir] if cmd == "refs" => cmd_refs(dir),
        [cmd, dir, r, ..] if cmd == "inspect" => cmd_inspect(dir, r),
        [cmd, explain, code] if cmd == "check" && explain == "--explain" => cmd_explain(code),
        [cmd, dir, rest @ ..] if cmd == "check" => {
            // The ref is the first non-flag operand, if any.
            let r = rest
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .map(String::as_str)
                .next();
            cmd_check(dir, r, rest)
        }
        [cmd, dir, rest @ ..] if cmd == "audit" => {
            let r = rest
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .map(String::as_str)
                .next();
            cmd_audit(dir, r, rest)
        }
        [cmd, dir, r, rest @ ..] if cmd == "rebuild" => cmd_rebuild(dir, r, rest),
        [cmd, dir, r, rest @ ..] if cmd == "retarget" => cmd_retarget(dir, r, rest),
        [cmd, dir, r, rest @ ..] if cmd == "redirect" => cmd_redirect(dir, r, rest),
        [cmd, dir, r, rest @ ..] if cmd == "adapt" => cmd_adapt(dir, r, rest),
        [cmd, dir, r, isa] if cmd == "cross-check" => cmd_cross_check(dir, r, isa),
        [cmd, dir, rest @ ..] if cmd == "serve" => cmd_serve(dir, rest),
        [cmd, dir, rest @ ..] if cmd == "buildd" => cmd_buildd(dir, rest),
        [cmd, r, rest @ ..] if cmd == "submit" => cmd_submit(r, rest),
        [cmd, rest @ ..] if cmd == "jobs" => cmd_jobs(rest),
        [cmd, dir, r, rest @ ..] if cmd == "push" => cmd_push(dir, r, rest),
        [cmd, dir, r, rest @ ..] if cmd == "pull" => cmd_pull(dir, r, rest),
        [cmd, dir, rest @ ..] if cmd == "gc" => cmd_gc(dir, rest),
        [cmd, dir, rest @ ..] if cmd == "fsck" => cmd_fsck(dir, rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_failure_renders_full_cause_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer reset");
        let rendered = dist_failure("pull", "app.dist+coM", DistError::io("read response", io));
        assert!(rendered.contains("distribute"), "{rendered}");
        assert!(rendered.contains("pull of app.dist+coM failed"), "{rendered}");
        assert!(rendered.contains("caused by: read response"), "{rendered}");
        assert!(rendered.contains("caused by: peer reset"), "{rendered}");
    }

    #[test]
    fn gc_json_escape_covers_quotes_and_controls() {
        assert_eq!(json_escape("plain/path.oci"), "plain/path.oci");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn render_job_shows_result_and_error() {
        let mut s = JobStatusWire {
            id: 7,
            tenant: "alice".into(),
            extended_ref: "app.dist+coM".into(),
            state: "done".into(),
            priority: 0,
            result_ref: Some("app.dist+coMre".into()),
            error: None,
            started_seq: Some(1),
        };
        let line = render_job(&s);
        assert!(line.contains("job 7 [alice]"), "{line}");
        assert!(line.contains("result=app.dist+coMre"), "{line}");
        s.state = "failed".into();
        s.result_ref = None;
        s.error = Some("boom".into());
        let line = render_job(&s);
        assert!(line.contains("error=boom"), "{line}");
    }

    #[test]
    fn check_verdict_denies_warnings_only_on_request() {
        assert!(check_verdict(0, 0, false).is_ok());
        assert!(check_verdict(0, 3, false).is_ok());
        assert!(check_verdict(1, 0, false).is_err());
        assert!(check_verdict(0, 3, true).is_err());
        assert!(check_verdict(0, 0, true).is_ok());
        let msg = check_verdict(0, 2, true).unwrap_err();
        assert!(msg.contains("--deny-warnings"), "{msg}");
    }

    #[test]
    fn opt_values_collects_every_occurrence() {
        let args: Vec<String> = ["--target", "x86-64-v2", "--lto", "--target", "armv8.2-a"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(opt_values(&args, "--target"), vec!["x86-64-v2", "armv8.2-a"]);
        assert!(opt_values(&args, "--isa").is_empty());
    }

    #[test]
    fn remote_addr_is_required() {
        let args = vec!["--stats".to_string()];
        assert!(remote_addr(&args).is_err());
        let args = vec!["--remote".to_string(), "127.0.0.1:7070".to_string()];
        assert_eq!(remote_addr(&args).unwrap(), "127.0.0.1:7070");
    }

    #[test]
    fn disk_registry_serves_saved_layout_refs() {
        // A layout written by `OciDir::save` must answer wire tag keys
        // (`name:latest`) when opened as the serving disk registry.
        let dir = std::env::temp_dir().join(format!("comt-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut oci = OciDir::new();
        let image = comt_oci::ImageBuilder::from_scratch("x86_64")
            .with_layer_tar(bytes::Bytes::from_static(b"tarbits"), "test layer")
            .commit(&mut oci.blobs)
            .unwrap();
        oci.index.set_ref(
            "app.dist+coM",
            Descriptor::new(
                MediaType::ImageManifest,
                image.manifest_digest,
                oci.blobs.get(&image.manifest_digest).unwrap().len() as u64,
            ),
        );
        oci.save(&dir).unwrap();
        let reg = DiskRegistry::open(&dir).unwrap();
        assert_eq!(
            reg.resolve(&comt_dist::tag_key("app.dist+coM", "latest")),
            Some(image.manifest_digest)
        );
        assert_eq!(
            reg.store().digests().unwrap().len(),
            oci.blobs.len()
        );
        drop(reg);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
