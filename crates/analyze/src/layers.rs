//! Pass 3: layer-stack analysis over the OCI image backing the model.
//!
//! Structural checks (`COMT-E102`/`COMT-E103`/`COMT-E104`) verify that the
//! manifest, config `diff_ids` and blob contents still agree — a `+coM` /
//! `+coMre` image is assembled by appending layers and the bookkeeping
//! must stay consistent. Content checks flag duplicate conflicting
//! entries within one layer (`COMT-W101`) and whiteouts that delete a
//! path the recorded rebuild reads or the cache layer itself provides
//! (`COMT-E101`).

use crate::diag::{Diagnostic, Span};
use comtainer::CacheContents;
use comt_buildsys::StepIo;
use comt_digest::Digest;
use comt_oci::layout::OciDir;
use std::collections::BTreeSet;

/// Codes this pass can emit (registry-consistency contract).
pub const EMITTED: &[&str] = &[
    "COMT-E101",
    "COMT-E102",
    "COMT-E103",
    "COMT-E104",
    "COMT-W101",
];

/// Every absolute path the recorded rebuild reads, plus the cache layer's
/// own files: whiteouts over these shadow data replay depends on.
fn protected_paths(cache: &CacheContents) -> BTreeSet<String> {
    let mut paths: BTreeSet<String> = cache
        .trace
        .commands
        .iter()
        .flat_map(|cmd| StepIo::of_command(cmd).reads)
        .collect();
    paths.extend(cache.sources.keys().cloned());
    paths
}

/// Analyze the layer stack of `image_ref` against the decoded cache.
pub fn check_layers(oci: &OciDir, image_ref: &str, cache: &CacheContents) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let image = match oci.load_image(image_ref) {
        Ok(image) => image,
        Err(e) => {
            diags.push(Diagnostic::new(
                "COMT-E104",
                format!("cannot load image {image_ref}: {e}"),
                Span::default(),
            ));
            return diags;
        }
    };

    let layers = &image.manifest.layers;
    let diff_ids = &image.config.rootfs.diff_ids;
    if layers.len() != diff_ids.len() {
        diags.push(
            Diagnostic::new(
                "COMT-E102",
                format!(
                    "manifest lists {} layers but config records {} diff_ids",
                    layers.len(),
                    diff_ids.len()
                ),
                Span::default(),
            )
            .with_hint("append the diff_id alongside every layer".to_string()),
        );
    }

    let protected = protected_paths(cache);
    let cache_root = format!("/{}", comtainer::cache::CACHE_PREFIX);

    for (idx, layer) in layers.iter().enumerate() {
        let tar = match comt_oci::layer_tar(&oci.blobs, layer) {
            Ok(tar) => tar,
            Err(e) => {
                diags.push(Diagnostic::new(
                    "COMT-E104",
                    format!("layer {idx} blob unavailable: {e}"),
                    Span::layer(idx),
                ));
                continue;
            }
        };

        if let Some(diff_id) = diff_ids.get(idx) {
            let actual = Digest::of(&tar).to_oci_string();
            if &actual != diff_id {
                diags.push(
                    Diagnostic::new(
                        "COMT-E103",
                        format!(
                            "layer {idx} content digests to {actual} but the config records \
                             {diff_id}"
                        ),
                        Span::layer(idx),
                    )
                    .with_hint("re-export the layout".to_string()),
                );
            }
        }

        let entries = match comt_tar::read_archive(&tar) {
            Ok(entries) => entries,
            Err(e) => {
                diags.push(Diagnostic::new(
                    "COMT-E104",
                    format!("layer {idx} is not a valid tar stream: {e}"),
                    Span::layer(idx),
                ));
                continue;
            }
        };

        // W101: same path twice with different content within one layer.
        let mut seen: std::collections::BTreeMap<&str, &comt_tar::Entry> =
            std::collections::BTreeMap::new();
        for entry in &entries {
            if let Some(prev) = seen.insert(entry.path.as_str(), entry) {
                if prev.kind != entry.kind {
                    diags.push(
                        Diagnostic::new(
                            "COMT-W101",
                            format!("layer {idx} contains /{} twice with different content", entry.path),
                            Span::layer(idx).with_file(&format!("/{}", entry.path)),
                        )
                        .with_hint("regenerate the layer from a filesystem diff".to_string()),
                    );
                }
            }
        }

        // E101: whiteouts shadowing protected paths.
        for entry in &entries {
            let Some(target) = comt_vfs::whiteout_target(&entry.path) else {
                continue;
            };
            let shadows_read = protected.contains(&target)
                || protected
                    .iter()
                    .any(|p| p.starts_with(&format!("{target}/")));
            let shadows_cache = target == cache_root
                || target.starts_with(&format!("{cache_root}/"))
                || cache_root.starts_with(&format!("{target}/"));
            if shadows_read || shadows_cache {
                diags.push(
                    Diagnostic::new(
                        "COMT-E101",
                        format!(
                            "layer {idx} whiteout deletes {target}, which the rebuild reads"
                        ),
                        Span::layer(idx).with_file(&target),
                    )
                    .with_hint(
                        "drop the whiteout or re-record the build without this input"
                            .to_string(),
                    ),
                );
            }
        }
    }

    diags
}
