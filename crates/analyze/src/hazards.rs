//! Pass 1: DAG hazard detection over the recorded build trace.
//!
//! The engine replays maximal runs of consecutive compile steps as
//! parallel *segments* scheduled over dependency edges derived from
//! [`comt_buildsys::StepIo`]. Any pair of steps in one segment that is
//! left unordered by those edges and touches a common path is a race the
//! ready-queue scheduler could interleave — exactly what this pass flags.
//! Steps in different segments (or non-compile steps) execute serially in
//! recorded order and cannot race.

use crate::diag::{Diagnostic, Span};
use comt_buildsys::{BuildTrace, StepIo};
use comtainer::engine::scheduler::StepGraph;
use comtainer::CompilationModel;

/// Codes this pass can emit (registry-consistency contract).
pub const EMITTED: &[&str] = &["COMT-E001", "COMT-E002"];

/// Transitive-ancestor sets for every node of a segment graph.
fn ancestor_sets(graph: &StepGraph) -> Vec<Vec<bool>> {
    let n = graph.len();
    let mut anc = vec![vec![false; n]; n];
    for j in 0..n {
        // deps point strictly backwards, so ancestors of deps are complete.
        for &d in graph.deps_of(j) {
            anc[j][d] = true;
            let (left, right) = anc.split_at_mut(j);
            for (i, flag) in left[d].iter().enumerate() {
                if *flag {
                    right[0][i] = true;
                }
            }
        }
    }
    anc
}

fn intersects<'a>(a: &'a [String], b: &[String]) -> Option<&'a String> {
    a.iter().find(|p| b.contains(p))
}

/// Detect unordered write-write (`COMT-E001`) and read-write
/// (`COMT-E002`) pairs inside each parallel compile segment.
pub fn check_hazards(trace: &BuildTrace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let is_compile: Vec<bool> = trace
        .commands
        .iter()
        .map(|cmd| {
            matches!(
                CompilationModel::classify(&cmd.argv, &cmd.cwd, &cmd.env, &cmd.inputs),
                CompilationModel::Compile { .. }
            )
        })
        .collect();

    let mut i = 0usize;
    while i < trace.commands.len() {
        if !is_compile[i] {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < trace.commands.len() && is_compile[j] {
            j += 1;
        }
        if j - i > 1 {
            diags.extend(check_segment(trace, i, j));
        }
        i = j;
    }
    diags
}

/// Hazards within one segment `[start, end)` of the trace.
fn check_segment(trace: &BuildTrace, start: usize, end: usize) -> Vec<Diagnostic> {
    let segment = &trace.commands[start..end];
    let step_io: Vec<StepIo> = segment.iter().map(StepIo::of_command).collect();
    let io: Vec<(&[String], &[String])> = step_io
        .iter()
        .map(|s| (s.reads.as_slice(), s.writes.as_slice()))
        .collect();
    let graph = StepGraph::from_io(&io);
    let anc = ancestor_sets(&graph);

    let mut diags = Vec::new();
    for a in 0..segment.len() {
        for b in (a + 1)..segment.len() {
            if anc[b][a] || anc[a][b] {
                continue; // ordered by an edge chain
            }
            let (sa, sb) = (start + a, start + b);
            let cmd_a = segment[a].argv.join(" ");
            let cmd_b = segment[b].argv.join(" ");
            if let Some(path) = intersects(&step_io[a].writes, &step_io[b].writes) {
                diags.push(
                    Diagnostic::new(
                        "COMT-E001",
                        format!(
                            "steps {sa} and {sb} both write {path} with no ordering edge"
                        ),
                        Span::step(sa, &cmd_a).with_file(path),
                    )
                    .with_hint(format!(
                        "declare {path} as an input of step {sb} ({cmd_b}) or give the steps \
                         distinct outputs"
                    )),
                );
                continue; // one diagnostic per unordered pair
            }
            let rw = intersects(&step_io[a].writes, &step_io[b].reads)
                .map(|p| (p, sb, &cmd_b))
                .or_else(|| intersects(&step_io[b].writes, &step_io[a].reads).map(|p| (p, sa, &cmd_a)));
            if let Some((path, reader, reader_cmd)) = rw {
                diags.push(
                    Diagnostic::new(
                        "COMT-E002",
                        format!(
                            "step {reader} reads {path} which step {} writes, with no \
                             ordering edge",
                            if reader == sb { sa } else { sb }
                        ),
                        Span::step(reader, reader_cmd).with_file(path),
                    )
                    .with_hint(format!(
                        "declare {path} as an input of step {reader} so the scheduler derives \
                         the edge"
                    )),
                );
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use comt_buildsys::RawCommand;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn compile(cmd: &str, inputs: &[&str], outputs: &[&str]) -> RawCommand {
        RawCommand {
            argv: argv(cmd),
            cwd: "/src".into(),
            env: vec![],
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn trace(cmds: Vec<RawCommand>) -> BuildTrace {
        BuildTrace { commands: cmds }
    }

    #[test]
    fn independent_compiles_are_clean() {
        let t = trace(vec![
            compile("gcc -c a.c -o a.o", &["/src/a.c"], &["/src/a.o"]),
            compile("gcc -c b.c -o b.o", &["/src/b.c"], &["/src/b.o"]),
        ]);
        assert!(check_hazards(&t).is_empty());
    }

    #[test]
    fn unordered_write_write_is_e001() {
        let t = trace(vec![
            compile("gcc -c a.c -o shared.o", &["/src/a.c"], &["/src/shared.o"]),
            compile("gcc -c b.c -o shared.o", &["/src/b.c"], &["/src/shared.o"]),
        ]);
        let diags = check_hazards(&t);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "COMT-E001");
        assert_eq!(diags[0].span.file.as_deref(), Some("/src/shared.o"));
    }

    #[test]
    fn ordered_write_write_is_clean() {
        // The second step *declares* the first's output as an input: the
        // edge orders the pair, so rewriting the same path is fine.
        let t = trace(vec![
            compile("gcc -c a.c -o shared.o", &["/src/a.c"], &["/src/shared.o"]),
            compile(
                "gcc -c b.c -o shared.o",
                &["/src/b.c", "/src/shared.o"],
                &["/src/shared.o"],
            ),
        ]);
        assert!(check_hazards(&t).is_empty());
    }

    #[test]
    fn unordered_read_write_is_e002() {
        let t = trace(vec![
            compile("gcc -c gen.c -o gen.h", &["/src/gen.c"], &["/src/gen.h"]),
            // Reads gen.h per its own argv but declares no inputs — except
            // that StepIo *does* see the -include, so seed the race through
            // a path the argv does not mention.
            compile("gcc -c b.c -o b.o", &["/src/b.c"], &["/src/b.o", "/src/gen.h"]),
            compile("gcc -c c.c -o c.o", &["/src/c.c", "/src/gen.h"], &["/src/c.o"]),
        ]);
        // Step 2 reads gen.h; both 0 and 1 write it. 2 is ordered after the
        // *latest* writer (1) but not after 0 — and 0/1 form a WW pair.
        let diags = check_hazards(&t);
        assert!(diags.iter().any(|d| d.code == "COMT-E001"));
        assert!(diags.iter().any(|d| d.code == "COMT-E002"));
    }

    #[test]
    fn diamond_is_ordered() {
        // gen writes two headers; two compiles each read one; the archive-
        // feeding step reads both objects: everything transitively ordered.
        let t = trace(vec![
            compile(
                "gcc -c gen.c -o conf.h",
                &["/src/gen.c"],
                &["/src/conf.h", "/src/vers.h"],
            ),
            compile(
                "gcc -c a.c -o a.o",
                &["/src/a.c", "/src/conf.h"],
                &["/src/a.o"],
            ),
            compile(
                "gcc -c b.c -o b.o",
                &["/src/b.c", "/src/vers.h"],
                &["/src/b.o"],
            ),
            compile(
                "gcc -c all.c -o all.o",
                &["/src/all.c", "/src/a.o", "/src/b.o"],
                &["/src/all.o"],
            ),
        ]);
        assert!(check_hazards(&t).is_empty());
    }

    #[test]
    fn serial_steps_cannot_race() {
        // Same WW pair, but a non-compile step splits the segment: the two
        // halves replay serially, so no hazard.
        let t = trace(vec![
            compile("gcc -c a.c -o shared.o", &["/src/a.c"], &["/src/shared.o"]),
            RawCommand {
                argv: argv("mkdir -p build"),
                cwd: "/src".into(),
                env: vec![],
                inputs: vec![],
                outputs: vec![],
            },
            compile("gcc -c b.c -o shared.o", &["/src/b.c"], &["/src/shared.o"]),
        ]);
        assert!(check_hazards(&t).is_empty());
    }

    #[test]
    fn implicit_argv_reads_count() {
        // Step 1 declares nothing, but its argv reads gen.pch via -include;
        // step 0 writes it. from_io orders them — clean. Removing the edge
        // source (step 2 writes the same path) creates the hazard.
        let t = trace(vec![
            compile("gcc -c gen.c -o gen.pch", &["/src/gen.c"], &["/src/gen.pch"]),
            compile("gcc -include gen.pch -c a.c -o a.o", &[], &[]),
        ]);
        assert!(check_hazards(&t).is_empty());
    }
}
