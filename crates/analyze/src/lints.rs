//! Pass 2: portability and reproducibility lints over the recorded
//! compiler invocations and cached sources.
//!
//! * `COMT-W001` — host-coupled machine flags: `-march=native` /
//!   `-mtune=native` / `-mcpu=native`, the Intel-style `-xHost`, and a
//!   CPU-specific `-march` with no resolved `-mtune` — absent or
//!   `-mtune=native` (the schedule tunes to the build host's pipeline).
//! * `COMT-W002` — `__DATE__`/`__TIME__`/`__TIMESTAMP__` in a cached
//!   source or a `-D` define: rebuilds can never be bit-identical.
//! * `COMT-W003` — absolute host paths (`/home/…`, `/tmp/…`) in the
//!   command line: the rebuild container will not have them.
//! * `COMT-W004` — ISA-specific flags the check target cannot map
//!   (shared logic with [`comtainer::crossisa`]).
//! * `COMT-W005` — `-Ofast`/`-ffast-math`: value-changing optimization,
//!   not just host-coupled — rebuilt numerics can differ.

use crate::diag::{Diagnostic, Span};
use comtainer::crossisa::flag_is_isa_specific;
use comtainer::CacheContents;
use comt_toolchain::invocation::Arg;
use comt_toolchain::CompilerInvocation;

/// Codes this pass can emit (registry-consistency contract).
pub const EMITTED: &[&str] = &[
    "COMT-W001",
    "COMT-W002",
    "COMT-W003",
    "COMT-W004",
    "COMT-W005",
];

/// Path prefixes that only exist on the machine that recorded the build.
const HOST_PREFIXES: &[&str] = &["/home/", "/root/", "/Users/", "/tmp/", "/var/tmp/"];

const TIMESTAMP_MACROS: &[&str] = &["__DATE__", "__TIME__", "__TIMESTAMP__"];

fn is_host_path(path: &str) -> bool {
    HOST_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Run every lint over the cache contents against one target ISA.
pub fn check_lints(cache: &CacheContents, target_isa: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    for (idx, cmd) in cache.trace.commands.iter().enumerate() {
        let command = cmd.argv.join(" ");

        // W004 needs only raw tokens, no parse.
        for token in &cmd.argv {
            if flag_is_isa_specific(token, target_isa) {
                diags.push(
                    Diagnostic::new(
                        "COMT-W004",
                        format!("{token} is specific to another ISA than {target_isa}"),
                        Span::step(idx, &command),
                    )
                    .with_hint(
                        "run `comt cross-check` for the full feasibility report".to_string(),
                    ),
                );
            }
        }

        let Ok(inv) = CompilerInvocation::parse(&cmd.argv) else {
            continue;
        };

        // W001: host-resolved machine flags.
        for (flag, value) in [
            ("-march", inv.march()),
            ("-mtune", inv.mtune()),
            ("-mcpu", machine_value(&inv, "mcpu=")),
        ] {
            if value == Some("native") {
                diags.push(
                    Diagnostic::new(
                        "COMT-W001",
                        format!("{flag}=native resolves on the build host, not in the model"),
                        Span::step(idx, &command),
                    )
                    .with_hint(format!(
                        "record an explicit {flag} value, or rely on the system-side adapter"
                    )),
                );
            }
        }

        // W001, Intel spelling: -xHost probes the build host like
        // -march=native does.
        if inv.args.iter().any(|a| {
            matches!(a, Arg::Opt { token, value: Some(v), .. } if token == "x" && v == "Host")
        }) {
            diags.push(
                Diagnostic::new(
                    "COMT-W001",
                    "-xHost resolves on the build host, not in the model".to_string(),
                    Span::step(idx, &command),
                )
                .with_hint(
                    "record an explicit -x<arch> (or -march) value, or rely on the \
                     system-side adapter"
                        .to_string(),
                ),
            );
        }

        // W001, tuning variant: a CPU-specific -march whose tuning is
        // unresolved pins the instruction schedule to the recording
        // host's pipeline. "Unresolved" means no -mtune at all, or
        // -mtune=native — the fold marks the latter like -march=native,
        // so it cannot pass for an ordinary CPU name here.
        let cfg = comt_toolchain::features::fold_invocation(target_isa, &inv);
        if let Some(march) = inv.march() {
            if is_specific_cpu(march) && (inv.mtune().is_none() || cfg.tune_native) {
                diags.push(
                    Diagnostic::new(
                        "COMT-W001",
                        format!(
                            "-march={march} names a specific CPU with no resolved -mtune: \
                             the schedule is tuned to the build host"
                        ),
                        Span::step(idx, &command),
                    )
                    .with_hint("add -mtune=generic to decouple tuning from the host".to_string()),
                );
            }
        }

        // W005: fast-math changes values, not just host-coupling.
        if inv.fast_math() {
            diags.push(
                Diagnostic::new(
                    "COMT-W005",
                    "-Ofast/-ffast-math licenses value-changing optimizations: rebuilt \
                     numerics can differ"
                        .to_string(),
                    Span::step(idx, &command),
                )
                .with_hint(
                    "use -O3 with selective -f options for reproducible numerics".to_string(),
                ),
            );
        }

        // W002 in defines: -DSTAMP=__DATE__ and friends.
        for def in inv.defines() {
            if TIMESTAMP_MACROS.iter().any(|m| def.contains(m)) {
                diags.push(
                    Diagnostic::new(
                        "COMT-W002",
                        format!("define -D{def} embeds the build timestamp"),
                        Span::step(idx, &command),
                    )
                    .with_hint("pass a fixed value instead of a timestamp macro".to_string()),
                );
            }
        }

        // W003: absolute host paths anywhere a path can appear.
        let mut host_paths: Vec<String> = Vec::new();
        for arg in &inv.args {
            match arg {
                Arg::Input { path, .. } if is_host_path(path) => {
                    host_paths.push(path.clone());
                }
                Arg::Opt {
                    value: Some(v), ..
                } if is_host_path(v) => {
                    host_paths.push(v.clone());
                }
                _ => {}
            }
        }
        host_paths.sort();
        host_paths.dedup();
        for path in host_paths {
            diags.push(
                Diagnostic::new(
                    "COMT-W003",
                    format!("absolute host path {path} will not exist in the rebuild container"),
                    Span::step(idx, &command).with_file(&path),
                )
                .with_hint("use container-relative paths in the build script".to_string()),
            );
        }
    }

    // W002 in cached sources.
    for (path, content) in &cache.sources {
        let text = String::from_utf8_lossy(content);
        for m in TIMESTAMP_MACROS {
            if text.contains(m) {
                diags.push(
                    Diagnostic::new(
                        "COMT-W002",
                        format!("{path} uses {m}: rebuilds embed their own build time"),
                        Span::file(path),
                    )
                    .with_hint(
                        "replace the macro with a configure-time constant".to_string(),
                    ),
                );
                break; // one diagnostic per file
            }
        }
    }

    diags
}

/// Whether a `-march` value names a concrete CPU (as opposed to a generic
/// micro-architecture level like `x86-64-v3` or an `armv8.x-a` tier) in
/// the architecture×feature matrix.
fn is_specific_cpu(march: &str) -> bool {
    let base = march.split('+').next().unwrap_or(march);
    comt_toolchain::features::target_arch(base).is_some()
        && !base.starts_with("x86-64")
        && !base.starts_with("armv8")
}

/// Last `-mcpu=` value, mirroring the march/mtune accessors.
fn machine_value<'a>(inv: &'a CompilerInvocation, token: &str) -> Option<&'a str> {
    inv.args.iter().rev().find_map(|a| match a {
        Arg::Opt {
            token: t,
            value: Some(v),
            ..
        } if t == token => Some(v.as_str()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use comtainer::models::{BuildGraph, ImageModel, ProcessModels};
    use comt_buildsys::{BuildTrace, RawCommand};
    use std::collections::BTreeMap;

    fn cache_with(sources: &[(&str, &str)], cmds: &[&str]) -> CacheContents {
        let mut src = BTreeMap::new();
        for (p, c) in sources {
            src.insert(p.to_string(), Bytes::from(c.as_bytes().to_vec()));
        }
        CacheContents {
            models: ProcessModels {
                image: ImageModel::default(),
                graph: BuildGraph::new(),
                isa: "x86_64".into(),
                cache_mode: Default::default(),
                targets: vec![],
            },
            trace: BuildTrace {
                commands: cmds
                    .iter()
                    .map(|c| RawCommand {
                        argv: c.split_whitespace().map(String::from).collect(),
                        cwd: "/src".into(),
                        env: vec![],
                        inputs: vec![],
                        outputs: vec![],
                    })
                    .collect(),
            },
            sources: src,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn march_native_is_w001() {
        let cache = cache_with(&[], &["gcc -O2 -march=native -c a.c -o a.o"]);
        let diags = check_lints(&cache, "x86_64");
        assert_eq!(codes(&diags), vec!["COMT-W001"]);
        assert_eq!(diags[0].span.step, Some(0));
    }

    #[test]
    fn mtune_and_mcpu_native_also_flagged() {
        let cache = cache_with(
            &[],
            &[
                "gcc -mtune=native -c a.c -o a.o",
                "gcc -mcpu=native -c b.c -o b.o",
            ],
        );
        assert_eq!(check_lints(&cache, "x86_64").len(), 2);
    }

    #[test]
    fn timestamp_macros_in_source_and_define() {
        let cache = cache_with(
            &[("/src/version.c", "const char *b = __DATE__ \" \" __TIME__;\n")],
            &["gcc -DBUILD_STAMP=__TIMESTAMP__ -c version.c -o version.o"],
        );
        let diags = check_lints(&cache, "x86_64");
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == "COMT-W002"));
    }

    #[test]
    fn absolute_host_paths_are_w003() {
        let cache = cache_with(
            &[],
            &["gcc -I/home/alice/include -c /tmp/scratch/a.c -o a.o"],
        );
        let diags = check_lints(&cache, "x86_64");
        assert_eq!(codes(&diags), vec!["COMT-W003", "COMT-W003"]);
    }

    #[test]
    fn container_paths_are_clean() {
        let cache = cache_with(&[], &["gcc -I/usr/include -c /src/a.c -o a.o"]);
        assert!(check_lints(&cache, "x86_64").is_empty());
    }

    #[test]
    fn xhost_is_w001() {
        let cache = cache_with(&[], &["icc -O3 -xHost -c a.c -o a.o"]);
        let diags = check_lints(&cache, "x86_64");
        assert_eq!(codes(&diags), vec!["COMT-W001"]);
        assert!(diags[0].message.contains("-xHost"));
    }

    #[test]
    fn specific_cpu_without_mtune_is_w001() {
        let cache = cache_with(&[], &["gcc -O2 -march=icelake-server -c a.c -o a.o"]);
        let diags = check_lints(&cache, "x86_64");
        assert_eq!(codes(&diags), vec!["COMT-W001"]);
        assert!(diags[0].message.contains("-mtune"));
        // An explicit -mtune (any value) silences it…
        let cache = cache_with(
            &[],
            &["gcc -O2 -march=icelake-server -mtune=generic -c a.c -o a.o"],
        );
        assert!(check_lints(&cache, "x86_64").is_empty());
        // …and generic micro-architecture levels never fire it.
        let cache = cache_with(&[], &["gcc -O2 -march=x86-64-v3 -c a.c -o a.o"]);
        assert!(check_lints(&cache, "x86_64").is_empty());
    }

    #[test]
    fn specific_cpu_with_tune_native_still_fires_tuning_w001() {
        // -mtune=native does not decouple the schedule from the host, so
        // the tuning variant must fire alongside the mtune=native finding
        // instead of being silenced by the flag's mere presence.
        let cache = cache_with(
            &[],
            &["gcc -O2 -march=icelake-server -mtune=native -c a.c -o a.o"],
        );
        let diags = check_lints(&cache, "x86_64");
        assert_eq!(codes(&diags), vec!["COMT-W001", "COMT-W001"]);
        assert!(diags.iter().any(|d| d.message.contains("-mtune=native")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("no resolved -mtune")));
    }

    #[test]
    fn tune_native_on_generic_level_is_one_w001() {
        // The generic level itself is portable; only the native tune is
        // host-coupled, so exactly one finding.
        let cache = cache_with(&[], &["gcc -O2 -march=x86-64-v3 -mtune=native -c a.c -o a.o"]);
        let diags = check_lints(&cache, "x86_64");
        assert_eq!(codes(&diags), vec!["COMT-W001"]);
        assert!(diags[0].message.contains("-mtune=native"));
    }

    #[test]
    fn fast_math_is_w005() {
        let cache = cache_with(&[], &["gcc -Ofast -c a.c -o a.o"]);
        assert_eq!(codes(&check_lints(&cache, "x86_64")), vec!["COMT-W005"]);
        let cache = cache_with(&[], &["gcc -O3 -ffast-math -c a.c -o a.o"]);
        assert_eq!(codes(&check_lints(&cache, "x86_64")), vec!["COMT-W005"]);
        // -fno-fast-math wins over both spellings.
        let cache = cache_with(&[], &["gcc -Ofast -fno-fast-math -c a.c -o a.o"]);
        assert!(check_lints(&cache, "x86_64").is_empty());
    }

    #[test]
    fn cross_isa_flag_is_w004() {
        let cache = cache_with(&[], &["gcc -mavx512f -c a.c -o a.o"]);
        assert!(check_lints(&cache, "x86_64").is_empty());
        let diags = check_lints(&cache, "aarch64");
        assert_eq!(codes(&diags), vec!["COMT-W004"]);
    }
}
