//! The shared diagnostics engine: severity, spans, diagnostics and the
//! per-check report with human and JSON rendering.

use serde::Serialize;
use std::fmt;

/// Diagnostic severity. `Error` findings make [`CheckReport::has_errors`]
/// true and gate `comt rebuild --check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    #[serde(rename = "info")]
    Info,
    #[serde(rename = "warning")]
    Warning,
    #[serde(rename = "error")]
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where a finding anchors: a trace step, a file, a layer index — any
/// combination, all optional.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Span {
    /// Zero-based index into the recorded trace.
    pub step: Option<usize>,
    /// The step's command line, for display.
    pub command: Option<String>,
    /// Absolute file path the finding is about.
    pub file: Option<String>,
    /// Zero-based layer index in the image manifest.
    pub layer: Option<usize>,
}

impl Span {
    pub fn step(idx: usize, command: &str) -> Span {
        Span {
            step: Some(idx),
            command: Some(command.to_string()),
            ..Span::default()
        }
    }

    pub fn file(path: &str) -> Span {
        Span {
            file: Some(path.to_string()),
            ..Span::default()
        }
    }

    pub fn layer(idx: usize) -> Span {
        Span {
            layer: Some(idx),
            ..Span::default()
        }
    }

    pub fn with_file(mut self, path: &str) -> Span {
        self.file = Some(path.to_string());
        self
    }
}

/// One finding: a stable code, severity, message, span and fix hint.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Stable code (`COMT-E001`, `COMT-W001`, …) — see the registry.
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    pub span: Span,
    /// Actionable fix hint, when one exists.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic for a registered code; severity comes from the
    /// registry so code and severity can never disagree.
    pub fn new(code: &'static str, message: String, span: Span) -> Diagnostic {
        let severity = crate::registry::lookup(code)
            .map(|info| info.severity)
            .unwrap_or(Severity::Warning);
        Diagnostic {
            code,
            severity,
            message,
            span,
            hint: None,
        }
    }

    pub fn with_hint(mut self, hint: String) -> Diagnostic {
        self.hint = Some(hint);
        self
    }
}

/// The result of one `comt check` run over a single target.
#[derive(Debug, Clone, Serialize)]
pub struct CheckReport {
    /// What was checked: an image ref or `<cache>` for bare cache checks.
    pub target: String,
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    pub fn new(target: &str, mut diagnostics: Vec<Diagnostic>) -> CheckReport {
        // Deterministic presentation: errors first, then by step/file.
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| a.span.step.cmp(&b.span.step))
                .then_with(|| a.span.file.cmp(&b.span.file))
        });
        CheckReport {
            target: target.to_string(),
            diagnostics,
        }
    }

    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any finding is error-severity (gates `rebuild --check`).
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Rustc-style human rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            if let (Some(step), Some(cmd)) = (d.span.step, d.span.command.as_ref()) {
                out.push_str(&format!("  --> step {step}: {cmd}\n"));
            }
            if let Some(file) = &d.span.file {
                out.push_str(&format!("  --> file {file}\n"));
            }
            if let Some(layer) = d.span.layer {
                out.push_str(&format!("  --> layer {layer}\n"));
            }
            if let Some(hint) = &d.hint {
                out.push_str(&format!("  = help: {hint}\n"));
            }
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            self.target,
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Structured JSON rendering (one object per report).
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Wire {
            target: String,
            errors: usize,
            warnings: usize,
            diagnostics: Vec<Diagnostic>,
        }
        serde_json::to_string_pretty(&Wire {
            target: self.target.clone(),
            errors: self.error_count(),
            warnings: self.warning_count(),
            diagnostics: self.diagnostics.clone(),
        })
        .unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_sorts_errors_first_and_counts() {
        let warn = Diagnostic::new("COMT-W001", "warn".into(), Span::step(1, "gcc"));
        let err = Diagnostic::new("COMT-E001", "err".into(), Span::step(0, "gcc"));
        let report = CheckReport::new("app+coM", vec![warn, err]);
        assert_eq!(report.diagnostics[0].code, "COMT-E001");
        assert!(report.has_errors());
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        let human = report.render_human();
        assert!(human.contains("error[COMT-E001]"));
        assert!(human.contains("--> step 0: gcc"));
    }

    #[test]
    fn json_is_structured() {
        let d = Diagnostic::new("COMT-W001", "non-portable".into(), Span::file("/src/a.c"))
            .with_hint("drop the flag".into());
        let report = CheckReport::new("app+coM", vec![d]);
        let json = report.to_json();
        assert!(json.contains("\"COMT-W001\""));
        assert!(json.contains("\"warning\""));
        assert!(json.contains("\"/src/a.c\""));
        assert!(json.contains("drop the flag"));
    }
}
