//! The diagnostic code registry: one table backing `comt check --explain`,
//! the docs and severity resolution for every pass.
//!
//! Codes are stable: `COMT-Exxx` are error-severity (they gate
//! `comt rebuild --check`), `COMT-Wxxx` are warnings. The hundreds digit
//! groups by pass: 0xx hazards/lints on the build model, 1xx layer stack,
//! 2xx adapter chain. `COMT-Fxxx` codes are emitted by `comt fsck` (the
//! on-disk layout checker in `comt-oci`); `COMT-Axxx` codes by the
//! `comt audit` ISA-compatibility pass. F and A severities are per-code,
//! not prefix-derived, and mirror [`comt_oci::fsck::FSCK_CODES`] /
//! [`crate::features::AUDIT_CODES`].

use crate::diag::Severity;

/// One registry entry, rendered by `comt check --explain <code>`.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    pub code: &'static str,
    pub severity: Severity,
    /// One-line title.
    pub title: &'static str,
    /// Longer explanation of why this is a problem.
    pub explanation: &'static str,
    /// Generic fix guidance.
    pub hint: &'static str,
}

/// Every diagnostic `comt check` can emit.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: "COMT-E001",
        severity: Severity::Error,
        title: "unordered write-write hazard between build steps",
        explanation: "Two steps in the same parallel compile segment write the same path and \
                      no dependency edge orders them. The ready-queue scheduler may run them \
                      in either order (or concurrently), so the replayed image content depends \
                      on scheduling.",
        hint: "declare the earlier step's output as an input of the later step, or give the \
               steps distinct output paths",
    },
    CodeInfo {
        code: "COMT-E002",
        severity: Severity::Error,
        title: "unordered read-write hazard between build steps",
        explanation: "One step reads a path another step in the same parallel compile segment \
                      writes, with no dependency edge between them. Depending on scheduling \
                      the reader sees the file before or after the write.",
        hint: "declare the written path as an input of the reading step so the scheduler \
               derives the edge",
    },
    CodeInfo {
        code: "COMT-E101",
        severity: Severity::Error,
        title: "whiteout shadows a file the rebuild reads",
        explanation: "A layer contains a whiteout entry deleting a path that a recorded build \
                      step reads or that belongs to the cache layer. After the layer stack is \
                      flattened the rebuild cannot see the file and replay fails or silently \
                      diverges.",
        hint: "drop the whiteout or re-record the build so the deleted path is not an input",
    },
    CodeInfo {
        code: "COMT-E102",
        severity: Severity::Error,
        title: "manifest layers and config diff_ids disagree",
        explanation: "The image manifest lists a different number of layers than the config's \
                      rootfs.diff_ids. The image violates the OCI spec and runtimes will \
                      reject or mis-apply it.",
        hint: "rebuild the image with a writer that appends the diff_id alongside every layer",
    },
    CodeInfo {
        code: "COMT-E103",
        severity: Severity::Error,
        title: "layer diff_id does not match blob content",
        explanation: "The digest of a layer's uncompressed tar differs from the diff_id the \
                      config records at the same index: the blob was modified, truncated or \
                      mis-ordered after the config was written.",
        hint: "re-export the layout; if the corruption persists, the blob store is damaged",
    },
    CodeInfo {
        code: "COMT-E104",
        severity: Severity::Error,
        title: "layer blob missing or undecodable",
        explanation: "A layer descriptor points at a blob that is absent from the store or \
                      cannot be decompressed/parsed as a tar stream.",
        hint: "re-export the layout from a store that holds every referenced blob",
    },
    CodeInfo {
        code: "COMT-W001",
        severity: Severity::Warning,
        title: "machine flag resolves on the build host",
        explanation: "`-march=native`/`-mtune=native`/`-mcpu=native` make the compiler probe \
                      the machine it runs on, so the recorded flags do not describe the code \
                      that a rebuild on different hardware will generate. coMtainer's \
                      adapters re-resolve `native` on the system side, but the recorded model \
                      is not self-describing.",
        hint: "record with an explicit -march value, or rely on the system-side adapter and \
               ignore this warning",
    },
    CodeInfo {
        code: "COMT-W002",
        severity: Severity::Warning,
        title: "timestamp macro embeds build time",
        explanation: "A cached source (or a -D define) uses __DATE__/__TIME__/__TIMESTAMP__, \
                      so every rebuild embeds its own wall-clock time and the rebuilt \
                      artifacts can never be bit-identical to the originals.",
        hint: "replace the macro with a configure-time constant to keep rebuilds reproducible",
    },
    CodeInfo {
        code: "COMT-W003",
        severity: Severity::Warning,
        title: "absolute host path recorded in command line",
        explanation: "The command line references an absolute path under a host-specific \
                      prefix (/home, /root, /Users, /tmp, …). The rebuild container will not \
                      have that path unless the cache layer happens to carry it.",
        hint: "build from container-relative paths so the model replays anywhere",
    },
    CodeInfo {
        code: "COMT-W004",
        severity: Severity::Warning,
        title: "ISA-specific flag the target cannot map",
        explanation: "A recorded flag names a CPU or feature of a different ISA than the \
                      check target (e.g. -mavx2 when targeting aarch64). The adapter chain \
                      has no rewrite for it, so a cross-ISA rebuild would pass a flag the \
                      target compiler rejects.",
        hint: "run `comt cross-check` for the full feasibility report, or drop the flag from \
               the build script",
    },
    CodeInfo {
        code: "COMT-W005",
        severity: Severity::Warning,
        title: "value-changing fast-math optimization recorded",
        explanation: "The step uses -Ofast or -ffast-math, which licenses the compiler to \
                      break IEEE semantics (reassociation, flush-to-zero, no NaN checks). \
                      The rebuilt binary can produce different numeric results than a \
                      rebuild without the flag — the flag changes values, not just \
                      host-coupling.",
        hint: "use -O3 with selective -f options, or accept that results are only \
               reproducible with the identical flag set",
    },
    CodeInfo {
        code: "COMT-W101",
        severity: Severity::Warning,
        title: "duplicate conflicting entries in one layer",
        explanation: "A single layer tar contains the same path twice with different content. \
                      Appliers keep the last entry, but duplicate paths usually indicate a \
                      corrupted or hand-assembled layer.",
        hint: "regenerate the layer from a filesystem diff",
    },
    CodeInfo {
        code: "COMT-W201",
        severity: Severity::Warning,
        title: "unparseable flag blocks adaptation",
        explanation: "A toolchain-claimed command line has a flag the option model cannot \
                      parse, so the step falls back to verbatim replay: no adapter (native \
                      toolchain swap, LTO, PGO) can transform it.",
        hint: "spell the flag in a standard form, or extend the option table",
    },
    CodeInfo {
        code: "COMT-W202",
        severity: Severity::Warning,
        title: "adapter chain drops a flag without rewrite",
        explanation: "Running the configured adapter chain over this step removes a recorded \
                      flag without introducing a replacement of the same category. The \
                      rebuilt step silently loses behavior the original build requested.",
        hint: "check the adapter pipeline order, or add an adapter that maps the flag",
    },
    CodeInfo {
        code: "COMT-A001",
        severity: Severity::Error,
        title: "object requires a feature the deployment target lacks",
        explanation: "Folding the step's effective -march/-mcpu/-m<feature> flags through \
                      the architecture×feature matrix yields a feature set that is not a \
                      subset of what the declared deployment target guarantees. The built \
                      object would fault (SIGILL) or refuse to load on that fleet.",
        hint: "retarget the step at or below the declared level, or declare a target that \
               has the features",
    },
    CodeInfo {
        code: "COMT-A002",
        severity: Severity::Warning,
        title: "adapter chain silently downgrades a requested feature",
        explanation: "The recorded command explicitly requests a feature (a -m flag or the \
                      base of its -march level) that is no longer in the effective feature \
                      set after the configured adapter chain rewrites the step. The rebuild \
                      quietly produces slower code than the original build asked for.",
        hint: "check the adapter pipeline order, or declare a weaker feature in the build \
               script so record and rebuild agree",
    },
    CodeInfo {
        code: "COMT-A003",
        severity: Severity::Error,
        title: "conflicting feature flags within one invocation",
        explanation: "One command line both enables and disables the same feature (or two \
                      mutually exclusive features, like -m32/-m64): the effective \
                      configuration depends on flag order, and last-one-wins resolution \
                      makes the recorded intent ambiguous for every later rewrite.",
        hint: "drop one of the flags so the request is unambiguous",
    },
    CodeInfo {
        code: "COMT-A004",
        severity: Severity::Warning,
        title: "mixed-feature objects linked into one artifact",
        explanation: "A link step combines objects whose effective feature sets differ. The \
                      binary's hardware floor is the max (union) of its objects — the \
                      portable-looking objects do not make the artifact portable, and one \
                      hot file compiled with a wider vector set decides where the whole \
                      binary can run.",
        hint: "compile every object of one artifact with the same machine flags",
    },
    CodeInfo {
        code: "COMT-A005",
        severity: Severity::Error,
        title: "layer stack mixes objects audited for disjoint targets",
        explanation: "With several declared deployment targets, every object is compatible \
                      with at least one of them, but no single target is compatible with \
                      all objects: the image as a whole can run on none of the declared \
                      fleets, even though each finding taken alone looks benign.",
        hint: "split the image per target, or rebuild the outlier objects for a common \
               level",
    },
    CodeInfo {
        code: "COMT-F001",
        severity: Severity::Error,
        title: "blob content does not hash to its name",
        explanation: "A file under blobs/sha256/ no longer hashes to the digest in its file \
                      name: it was truncated by a crash mid-write (outside the store's \
                      tmp+rename commit protocol) or corrupted at rest. Every ref whose \
                      closure includes the blob serves wrong bytes.",
        hint: "run `comt fsck --repair` to quarantine the blob, then re-push or re-pull the \
               affected refs to restore the content",
    },
    CodeInfo {
        code: "COMT-F002",
        severity: Severity::Error,
        title: "ref whose manifest closure is missing or corrupt",
        explanation: "An index.json ref points at a manifest that is absent, unparseable, or \
                      references config/layer blobs that are missing or corrupt. Pulling the \
                      ref would fail partway through.",
        hint: "run `comt fsck --repair` to drop the broken ref from the index (valid blobs \
               are kept), then re-publish the image",
    },
    CodeInfo {
        code: "COMT-F003",
        severity: Severity::Warning,
        title: "orphan temp file from an interrupted commit",
        explanation: "A `.tmp.*` staging file was left in the blob directory by a process \
                      that died between writing and renaming. The committed data is \
                      unaffected — renames are atomic — but the orphan wastes space and \
                      makes `OciDir::load` refuse the layout until it is removed.",
        hint: "run `comt fsck --repair` to delete it; this loses nothing that was committed",
    },
    CodeInfo {
        code: "COMT-F004",
        severity: Severity::Error,
        title: "index.json missing or unparseable",
        explanation: "The layout has blobs but its index.json is absent or not valid JSON, \
                      so no ref can be resolved. Because the index is committed atomically, \
                      this indicates external damage rather than a crashed `comt` process.",
        hint: "run `comt fsck --repair` to write an empty index (blobs are preserved), then \
               re-tag or re-push the images to restore the refs",
    },
    CodeInfo {
        code: "COMT-F005",
        severity: Severity::Warning,
        title: "foreign file in the blob directory",
        explanation: "blobs/sha256/ contains a file whose name is not a 64-hex-digit digest \
                      and not a recognized staging file. The store never creates such names; \
                      something else wrote into the layout.",
        hint: "run `comt fsck --repair` to delete it, or move the file out by hand if it is \
               yours",
    },
    CodeInfo {
        code: "COMT-F006",
        severity: Severity::Warning,
        title: "oci-layout version marker missing or invalid",
        explanation: "The `oci-layout` marker file that identifies the directory as an OCI \
                      image layout is missing or does not carry an imageLayoutVersion. \
                      External tools may refuse the directory.",
        hint: "run `comt fsck --repair` to rewrite the standard marker",
    },
    CodeInfo {
        code: "COMT-F007",
        severity: Severity::Error,
        title: "chunkmap disagrees with its stored layer",
        explanation: "A chunkmap blob recorded for a layer no longer describes the stored \
                      layer bytes: its offsets or per-chunk digests disagree, it is \
                      unparseable, or the layer it names is gone. Delta pulls that consult \
                      it will fail their per-chunk digest verification and fall back (or \
                      abort), so every such pull wastes a round trip.",
        hint: "run `comt fsck --repair` to quarantine the chunkmap and drop the \
               association; re-push with --chunked to regenerate it. Full-blob pulls are \
               unaffected",
    },
];

/// Look up a code (exact match).
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|c| c.code == code)
}

/// Rustc-style `--explain` rendering for one code.
pub fn render_explain(code: &str) -> Option<String> {
    let info = lookup(code)?;
    Some(format!(
        "{} ({}): {}\n\n{}\n\nhelp: {}\n",
        info.code, info.severity, info.title, info.explanation, info.hint
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_severity_matches_prefix() {
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.code, b.code, "duplicate code");
            }
            // F- and A-series severity is per-code (checked against the
            // fsck/audit tables below); E/W severity follows the prefix.
            if a.code.starts_with("COMT-F") || a.code.starts_with("COMT-A") {
                continue;
            }
            let expect = if a.code.starts_with("COMT-E") {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(a.severity, expect, "{}", a.code);
        }
    }

    #[test]
    fn fsck_codes_mirror_the_fsck_table() {
        // Every code `comt fsck` can emit must be explainable, with the
        // severity the fsck module declares.
        for (code, severity, _title) in comt_oci::fsck::FSCK_CODES {
            let info = lookup(code).unwrap_or_else(|| panic!("{code} not in REGISTRY"));
            let expect = match *severity {
                "error" => Severity::Error,
                "warning" => Severity::Warning,
                other => panic!("unknown fsck severity {other}"),
            };
            assert_eq!(info.severity, expect, "{code}");
        }
    }

    #[test]
    fn audit_codes_mirror_the_audit_table() {
        for (code, severity) in crate::features::AUDIT_CODES {
            let info = lookup(code).unwrap_or_else(|| panic!("{code} not in REGISTRY"));
            let expect = match *severity {
                "error" => Severity::Error,
                "warning" => Severity::Warning,
                other => panic!("unknown audit severity {other}"),
            };
            assert_eq!(info.severity, expect, "{code}");
        }
    }

    #[test]
    fn every_emitted_code_is_registered_and_explainable() {
        // The registry-consistency contract: each pass declares the codes
        // it can emit; every one must be registered with non-empty explain
        // text, and no registered code may be orphaned (emitted by no
        // pass). F-codes come from the fsck table in comt-oci.
        let mut emitted: Vec<&str> = Vec::new();
        emitted.extend(crate::hazards::EMITTED);
        emitted.extend(crate::lints::EMITTED);
        emitted.extend(crate::layers::EMITTED);
        emitted.extend(crate::chain::EMITTED);
        emitted.extend(crate::features::AUDIT_CODES.iter().map(|(c, _)| *c));
        emitted.extend(comt_oci::fsck::FSCK_CODES.iter().map(|(c, _, _)| *c));

        for code in &emitted {
            let info = lookup(code).unwrap_or_else(|| panic!("{code} emitted but unregistered"));
            assert!(!info.title.is_empty(), "{code} has an empty title");
            assert!(!info.explanation.is_empty(), "{code} has an empty explanation");
            assert!(!info.hint.is_empty(), "{code} has an empty hint");
            let text = render_explain(code).unwrap();
            assert!(text.contains(*code));
        }
        let mut sorted = emitted.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), emitted.len(), "a code is declared twice");
        for info in REGISTRY {
            assert!(
                emitted.contains(&info.code),
                "{} is registered but emitted by no pass",
                info.code
            );
        }
    }

    #[test]
    fn explain_renders_registry_entry() {
        let text = render_explain("COMT-W001").expect("registered");
        assert!(text.contains("COMT-W001"));
        assert!(text.contains("march=native"));
        assert!(text.contains("help:"));
        assert!(render_explain("COMT-X999").is_none());
    }
}
