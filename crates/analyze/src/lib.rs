//! `comt-analyze` — the static verifier behind `comt check`.
//!
//! coMtainer's premise is that a recorded build-process model plus the
//! cache layer suffices to rebuild an application on a foreign system.
//! This crate *proves a model safe to replay before the engine spends any
//! compile time*: four passes run over the decoded cache, the adapter
//! chain and the image's layer stack without executing anything.
//!
//! 1. [`hazards`] — write-write / read-write pairs left unordered by the
//!    dependency edges the ready-queue scheduler derives (`COMT-E00x`);
//! 2. [`lints`] — portability and reproducibility lints over the
//!    recorded compiler invocations and sources (`COMT-W00x`);
//! 3. [`layers`] — manifest/diff_id consistency, duplicate entries and
//!    whiteouts shadowing replay inputs (`COMT-E10x`/`COMT-W101`);
//! 4. [`chain`] — adapter-chain soundness: every recorded flag passes
//!    through or is explicitly rewritten (`COMT-W20x`);
//! 5. [`features`] — the `comt audit` ISA-compatibility audit: per-object
//!    effective target configurations folded through the architecture×
//!    feature matrix and checked against declared deployment targets
//!    (`COMT-A00x`).
//!
//! All passes emit [`Diagnostic`]s with stable codes from the
//! [`registry`]; [`CheckReport`] renders them human-readable or as JSON.
//! [`rebuild_checked`] is the `comt rebuild --check` gate: it refuses to
//! replay a model with error-severity findings.

pub mod chain;
pub mod diag;
pub mod features;
pub mod hazards;
pub mod layers;
pub mod lints;
pub mod registry;

pub use diag::{CheckReport, Diagnostic, Severity, Span};
pub use features::{audit_cache_contents, audit_extended_image, AuditReport, TargetVerdict};
pub use registry::{lookup, render_explain, CodeInfo, REGISTRY};

use comtainer::backend::RebuildOptions;
use comtainer::workflow::SystemSide;
use comtainer::{AdapterContext, CacheContents, ComtError, SystemAdapter};
use comt_oci::layout::OciDir;
use comt_toolchain::Toolchain;

/// Run the cache-level passes (hazards, lints, adapter chain) over
/// decoded cache contents. Layer checks need the image and live in
/// [`check_extended_image`].
pub fn check_cache_contents(
    cache: &CacheContents,
    target_isa: &str,
    toolchain: &Toolchain,
    adapters: &[Box<dyn SystemAdapter>],
) -> Vec<Diagnostic> {
    let ctx = AdapterContext {
        isa: target_isa.to_string(),
        toolchain: toolchain.clone(),
    };
    let mut diags = hazards::check_hazards(&cache.trace);
    diags.extend(lints::check_lints(cache, target_isa));
    diags.extend(chain::check_chain(cache, adapters, &ctx));
    diags
}

/// Run all four passes over an extended (`+coM`/`+coMre`) image in an OCI
/// layout. Fails only if the cache layer itself cannot be decoded; every
/// other problem becomes a diagnostic in the report.
pub fn check_extended_image(
    oci: &OciDir,
    image_ref: &str,
    target_isa: &str,
    toolchain: &Toolchain,
    adapters: &[Box<dyn SystemAdapter>],
) -> Result<CheckReport, ComtError> {
    let cache = comtainer::load_cache(oci, image_ref)?;
    let mut diags = check_cache_contents(&cache, target_isa, toolchain, adapters);
    diags.extend(layers::check_layers(oci, image_ref, &cache));
    Ok(CheckReport::new(image_ref, diags))
}

/// [`check_extended_image`] with the verifier configured exactly like a
/// [`SystemSide`] — the same ISA, toolchain and adapter pipeline the
/// rebuild would use.
pub fn check_for_side(
    oci: &OciDir,
    image_ref: &str,
    side: &SystemSide,
) -> Result<CheckReport, ComtError> {
    check_extended_image(oci, image_ref, &side.isa, &side.toolchain, &side.adapters)
}

/// The `comt rebuild --check` gate: verify first, then replay. A model
/// with error-severity findings is refused with a [`ComtError`] carrying
/// the rendered report; warnings do not block.
pub fn rebuild_checked(
    oci: &mut OciDir,
    extended_ref: &str,
    side: &SystemSide,
    opts: &RebuildOptions,
) -> Result<(String, CheckReport), ComtError> {
    let report = check_for_side(oci, extended_ref, side)?;
    if report.has_errors() {
        return Err(ComtError::build(format!(
            "refusing to rebuild {extended_ref}: {} error-severity finding(s)\n{}",
            report.error_count(),
            report.render_human()
        )));
    }
    let new_ref = comtainer::comtainer_rebuild(oci, extended_ref, side, opts)?;
    Ok((new_ref, report))
}

/// The `comt retarget` admission gate: run the ISA-compatibility audit
/// (`COMT-A001`/`COMT-A005`) over the cache for the *whole* requested
/// target set before any engine runs. An unsatisfiable set — an object
/// that no requested target can execute, or a stack whose objects only
/// run on disjoint targets — aborts the entire fan-out before a single
/// compile executes; the error carries the rendered audit so the operator
/// sees exactly which target rejected which object.
pub fn retarget_audited(
    oci: &mut OciDir,
    extended_ref: &str,
    side: &SystemSide,
    targets: &[String],
    opts: &RebuildOptions,
) -> Result<(comtainer::RetargetOutcome, AuditReport), ComtError> {
    // Audit first: it accepts cross-ISA target sets (each foreign target
    // gets its own adapter replay), so an operator mixing ISAs hears about
    // feature-level unsatisfiability (A005) rather than just the
    // single-side restriction validate_targets enforces below.
    let cache = comtainer::load_cache(oci, extended_ref)?;
    let (diags, verdicts) =
        audit_cache_contents(&cache, targets, &side.toolchain, &side.adapters)?;
    let audit = AuditReport {
        report: CheckReport::new(extended_ref, diags),
        verdicts,
    };
    if audit.has_errors() || audit.verdicts.iter().any(|v| !v.pass) {
        let failed: Vec<&str> = audit
            .verdicts
            .iter()
            .filter(|v| !v.pass)
            .map(|v| v.target.as_str())
            .collect();
        return Err(ComtError::build(format!(
            "refusing to retarget {extended_ref}: target set unsatisfiable \
             ({} error-severity finding(s); failing targets: {})\n{}",
            audit.report.error_count(),
            if failed.is_empty() {
                "none".to_string()
            } else {
                failed.join(", ")
            },
            audit.render_human()
        )));
    }
    comtainer::validate_targets(side, targets)?;
    let outcome = comtainer::comtainer_retarget(oci, extended_ref, side, targets, opts)?;
    Ok((outcome, audit))
}
