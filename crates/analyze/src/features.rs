//! Pass 5: ISA-compatibility audit over the architecture×feature matrix
//! (`comt audit`).
//!
//! For every recorded compile step the pass folds the *effective* target
//! configuration — `-march`/`-mcpu`/`-mtune`/`-m<feature>` flags, left to
//! right, through the recorded invocation **and** through the adapter-chain
//! rewrites — into a [`TargetConfig`] (see
//! [`comt_toolchain::features::fold_invocation`]), then checks the
//! resulting per-object feature sets against one or more declared
//! deployment targets:
//!
//! * `COMT-A001` — an object requires a feature the target lacks;
//! * `COMT-A002` — the adapter chain silently downgrades a requested
//!   feature;
//! * `COMT-A003` — conflicting feature flags within one invocation
//!   (last-one-wins ambiguity);
//! * `COMT-A004` — mixed-feature objects linked into one artifact (the
//!   binary's floor is the max of its objects);
//! * `COMT-A005` — the layer stack mixes objects audited for disjoint
//!   targets: no single declared target runs the whole image.
//!
//! The audit is pure static analysis: nothing is compiled, the adapter
//! chain runs over *copies* of the compilation models exactly like the
//! [`chain`](crate::chain) pass.

use crate::diag::{CheckReport, Diagnostic, Span};
use comtainer::{AdapterContext, CacheContents, CompilationModel, ComtError, SystemAdapter};
use comt_oci::layout::OciDir;
use comt_toolchain::features::{
    arch_features, conflicts_with, feature_closure, known_targets, normalize_isa, target_arch,
    FeatureSet, TargetConfig,
};
use comt_toolchain::{CompilerInvocation, DriverMode, Toolchain};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Codes this pass emits, with their severities — mirrored into the
/// registry the way `comt_oci::fsck::FSCK_CODES` is.
pub const AUDIT_CODES: &[(&str, &str)] = &[
    ("COMT-A001", "error"),
    ("COMT-A002", "warning"),
    ("COMT-A003", "error"),
    ("COMT-A004", "warning"),
    ("COMT-A005", "error"),
];

/// One audited compile step: the recorded and the adapter-effective target
/// configuration of the object it produces.
#[derive(Debug, Clone)]
pub struct ObjectAudit {
    pub step: usize,
    pub command: String,
    /// Absolute output path of the object, when derivable.
    pub output: Option<String>,
    pub recorded: TargetConfig,
    pub effective: TargetConfig,
}

/// Per-target verdict row of an [`AuditReport`].
#[derive(Debug, Clone, Serialize)]
pub struct TargetVerdict {
    pub target: String,
    pub isa: String,
    pub objects_checked: usize,
    pub incompatible_objects: usize,
    pub pass: bool,
}

/// The result of one `comt audit` run: the findings plus one verdict per
/// declared deployment target.
#[derive(Debug, Clone)]
pub struct AuditReport {
    pub report: CheckReport,
    pub verdicts: Vec<TargetVerdict>,
}

impl AuditReport {
    pub fn has_errors(&self) -> bool {
        self.report.has_errors()
    }

    /// Human rendering: the findings followed by the per-target verdict
    /// table.
    pub fn render_human(&self) -> String {
        let mut out = self.report.render_human();
        out.push_str("deployment targets:\n");
        out.push_str(&format!(
            "  {:<18} {:<8} {:>7} {:>12}  verdict\n",
            "target", "isa", "objects", "incompatible"
        ));
        for v in &self.verdicts {
            out.push_str(&format!(
                "  {:<18} {:<8} {:>7} {:>12}  {}\n",
                v.target,
                v.isa,
                v.objects_checked,
                v.incompatible_objects,
                if v.pass { "PASS" } else { "FAIL" }
            ));
        }
        out
    }

    /// Structured JSON rendering (one object per report).
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Wire {
            target: String,
            errors: usize,
            warnings: usize,
            verdicts: Vec<TargetVerdict>,
            diagnostics: Vec<Diagnostic>,
        }
        serde_json::to_string_pretty(&Wire {
            target: self.report.target.clone(),
            errors: self.report.error_count(),
            warnings: self.report.warning_count(),
            verdicts: self.verdicts.clone(),
            diagnostics: self.report.diagnostics.clone(),
        })
        .unwrap_or_else(|_| "{}".to_string())
    }
}

fn join_cwd(cwd: &str, path: &str) -> String {
    if path.starts_with('/') {
        path.to_string()
    } else {
        format!("{}/{}", cwd.trim_end_matches('/'), path)
    }
}

/// Fold every toolchain-claimed compile step under `fold_isa`: recorded
/// configuration from the raw argv, effective configuration after running
/// the adapter chain (with the same ISA in its context) over a copy.
fn collect_objects(
    cache: &CacheContents,
    fold_isa: &str,
    toolchain: &Toolchain,
    adapters: &[Box<dyn SystemAdapter>],
) -> Vec<ObjectAudit> {
    let ctx = AdapterContext {
        isa: fold_isa.to_string(),
        toolchain: toolchain.clone(),
    };
    let mut objects = Vec::new();
    for (idx, cmd) in cache.trace.commands.iter().enumerate() {
        let Ok(recorded_inv) = CompilerInvocation::parse(&cmd.argv) else {
            continue; // the chain pass reports unparseable toolchain steps
        };
        if recorded_inv.mode() != DriverMode::Compile {
            continue;
        }
        let mut model = CompilationModel::classify(&cmd.argv, &cmd.cwd, &cmd.env, &cmd.inputs);
        if !model.is_compilation() {
            continue;
        }
        comtainer::adapters::apply_adapters(&mut model, adapters, &ctx);
        let Some(adapted_inv) = model.invocation() else {
            continue;
        };
        let output = adapted_inv
            .output()
            .map(|o| join_cwd(&cmd.cwd, o))
            .or_else(|| cmd.outputs.iter().find(|p| p.ends_with(".o")).cloned());
        objects.push(ObjectAudit {
            step: idx,
            command: cmd.argv.join(" "),
            output,
            recorded: comt_toolchain::features::fold_invocation(fold_isa, &recorded_inv),
            effective: comt_toolchain::features::fold_invocation(fold_isa, &adapted_inv),
        });
    }
    objects
}

/// The feature set an object needs from a deployment target. A `native`
/// base re-resolves on the target itself, so only the explicit toggles on
/// top of the target's own features can exceed it.
fn required_for_target(cfg: &TargetConfig, target_set: &FeatureSet) -> FeatureSet {
    if !cfg.native {
        return cfg.enabled.clone();
    }
    let mut set = target_set.clone();
    for ev in &cfg.requested {
        if ev.enabled {
            let losers: Vec<&'static str> = set
                .iter()
                .copied()
                .filter(|g| conflicts_with(g, ev.feature))
                .collect();
            for g in losers {
                set.remove(g);
            }
            set.extend(feature_closure(ev.feature));
        } else {
            let dependents: Vec<&'static str> = set
                .iter()
                .copied()
                .filter(|g| feature_closure(g).contains(ev.feature))
                .collect();
            for g in dependents {
                set.remove(g);
            }
        }
    }
    set
}

/// Why an object cannot run on a target, if it cannot.
fn object_incompatibility(cfg: &TargetConfig, t_isa: &str, t_set: &FeatureSet) -> Option<String> {
    // A `-march` the fold could not resolve under the target's ISA but the
    // matrix knows under another ISA: the object explicitly targets a
    // different architecture.
    if let Some(m) = &cfg.unknown_march {
        if let Some((m_isa, _)) = target_arch(m) {
            if m_isa != t_isa {
                return Some(format!(
                    "the object is built for -march={m} ({m_isa}), not {t_isa}"
                ));
            }
        }
    }
    let required = required_for_target(cfg, t_set);
    let missing: Vec<&str> = required.difference(t_set).copied().collect();
    if missing.is_empty() {
        None
    } else {
        Some(format!(
            "the object requires {{{}}} which the target lacks",
            missing.join(", ")
        ))
    }
}

fn object_label(obj: &ObjectAudit) -> &str {
    obj.output.as_deref().unwrap_or("<object>")
}

/// Run the audit over decoded cache contents against the declared
/// deployment targets. Fails only on an unknown target name; every
/// compatibility problem becomes a diagnostic.
pub fn audit_cache_contents(
    cache: &CacheContents,
    targets: &[String],
    toolchain: &Toolchain,
    adapters: &[Box<dyn SystemAdapter>],
) -> Result<(Vec<Diagnostic>, Vec<TargetVerdict>), ComtError> {
    let mut resolved = Vec::new();
    for t in targets {
        let (isa, set) = target_arch(t).ok_or_else(|| {
            ComtError::build(format!(
                "unknown deployment target {t}; known targets: {}",
                known_targets().join(", ")
            ))
        })?;
        resolved.push((t.clone(), isa, set));
    }

    let home_isa = normalize_isa(&cache.models.isa).to_string();
    let home_objects = collect_objects(cache, &home_isa, toolchain, adapters);
    let mut diags = Vec::new();

    // A003: conflicting feature flags within one recorded invocation.
    for obj in &home_objects {
        let mut seen = BTreeSet::new();
        for c in &obj.recorded.conflicts {
            if seen.insert((c.first.clone(), c.second.clone())) {
                diags.push(
                    Diagnostic::new(
                        "COMT-A003",
                        format!(
                            "{} and {} conflict within one invocation: the effective \
                             feature set depends on flag order",
                            c.first, c.second
                        ),
                        Span::step(obj.step, &obj.command),
                    )
                    .with_hint("drop one of the flags so the request is unambiguous".to_string()),
                );
            }
        }
    }

    // A002: the adapter chain downgrades a feature the recorded command
    // explicitly requested (a flag, or the base of a known -march). A
    // native effective base re-resolves on the deployment host, so only
    // explicit flags count against it.
    for obj in &home_objects {
        let mut requested = obj.recorded.explicit_enables();
        if !obj.effective.native && !obj.recorded.native {
            if let Some(m) = &obj.recorded.march {
                if let Some(base) = arch_features(&home_isa, m) {
                    requested.extend(base);
                }
            }
        }
        let missing: Vec<&str> = requested
            .difference(&obj.effective.enabled)
            .copied()
            .collect();
        if !missing.is_empty() {
            diags.push(
                Diagnostic::new(
                    "COMT-A002",
                    format!(
                        "the adapter chain downgrades {{{}}} requested by the recorded \
                         command",
                        missing.join(", ")
                    ),
                    Span::step(obj.step, &obj.command),
                )
                .with_hint(
                    "check the adapter pipeline order, or declare a weaker feature in the \
                     build script"
                        .to_string(),
                ),
            );
        }
    }

    // A004: one link step pulling in objects with differing feature
    // requirements — the binary's floor is the union (max) of its objects.
    let by_output: BTreeMap<&str, &ObjectAudit> = home_objects
        .iter()
        .filter_map(|o| o.output.as_deref().map(|p| (p, o)))
        .collect();
    for (idx, cmd) in cache.trace.commands.iter().enumerate() {
        let Ok(inv) = CompilerInvocation::parse(&cmd.argv) else {
            continue;
        };
        if inv.mode() != DriverMode::Link {
            continue;
        }
        let mut linked: Vec<&ObjectAudit> = Vec::new();
        let mut paths: BTreeSet<String> = cmd.inputs.iter().cloned().collect();
        for (path, kind) in inv.inputs() {
            if kind == comt_toolchain::InputKind::Object {
                paths.insert(join_cwd(&cmd.cwd, path));
            }
        }
        for p in &paths {
            if let Some(obj) = by_output.get(p.as_str()) {
                linked.push(obj);
            }
        }
        let distinct: BTreeSet<&FeatureSet> = linked.iter().map(|o| &o.effective.enabled).collect();
        if distinct.len() > 1 {
            let floor: FeatureSet = linked
                .iter()
                .flat_map(|o| o.effective.enabled.iter().copied())
                .collect();
            let members = linked
                .iter()
                .map(|o| object_label(o))
                .collect::<Vec<_>>()
                .join(", ");
            diags.push(
                Diagnostic::new(
                    "COMT-A004",
                    format!(
                        "links objects with differing feature requirements ({members}); \
                         the binary's floor is the max of its objects: {{{}}}",
                        floor.iter().copied().collect::<Vec<_>>().join(", ")
                    ),
                    Span::step(idx, &cmd.argv.join(" ")),
                )
                .with_hint(
                    "compile every object of one artifact with the same machine flags"
                        .to_string(),
                ),
            );
        }
    }

    // A001 + verdicts, per declared target. Targets of a foreign ISA get
    // their own adapter replay: the chain retargets for that ISA exactly
    // as a rebuild on such a system side would.
    let mut foreign: BTreeMap<&str, Vec<ObjectAudit>> = BTreeMap::new();
    let mut verdicts = Vec::new();
    let mut compatible_targets: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (t_idx, (t_name, t_isa, t_set)) in resolved.iter().enumerate() {
        let objects: &[ObjectAudit] = if *t_isa == home_isa {
            &home_objects
        } else {
            foreign
                .entry(t_isa)
                .or_insert_with(|| collect_objects(cache, t_isa, toolchain, adapters))
        };
        let mut incompatible = 0usize;
        for obj in objects {
            match object_incompatibility(&obj.effective, t_isa, t_set) {
                Some(reason) => {
                    incompatible += 1;
                    diags.push(
                        Diagnostic::new(
                            "COMT-A001",
                            format!("{} cannot run on target {t_name}: {reason}", object_label(obj)),
                            Span::step(obj.step, &obj.command),
                        )
                        .with_hint(format!(
                            "retarget the step at or below {t_name}, or declare a target \
                             that has the features"
                        )),
                    );
                }
                None => {
                    compatible_targets.entry(obj.step).or_default().insert(t_idx);
                }
            }
        }
        verdicts.push(TargetVerdict {
            target: t_name.clone(),
            isa: t_isa.to_string(),
            objects_checked: objects.len(),
            incompatible_objects: incompatible,
            pass: incompatible == 0,
        });
    }

    // A005: every object runs somewhere, but no single declared target
    // runs them all — the image serves no one fleet.
    if resolved.len() >= 2 && !compatible_targets.is_empty() {
        let every_object_runs = home_objects
            .iter()
            .all(|o| compatible_targets.get(&o.step).is_some_and(|s| !s.is_empty()));
        let mut common: Option<BTreeSet<usize>> = None;
        for set in compatible_targets.values() {
            common = Some(match common {
                None => set.clone(),
                Some(acc) => acc.intersection(set).copied().collect(),
            });
        }
        if every_object_runs && common.is_some_and(|c| c.is_empty()) {
            diags.push(
                Diagnostic::new(
                    "COMT-A005",
                    format!(
                        "the layer stack mixes objects audited for disjoint targets: each \
                         object passes some declared target ({}), but no single target \
                         passes them all",
                        resolved
                            .iter()
                            .map(|(t, _, _)| t.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    Span::default(),
                )
                .with_hint(
                    "split the image per target, or rebuild the outlier objects for a \
                     common level"
                        .to_string(),
                ),
            );
        }
    }

    Ok((diags, verdicts))
}

/// Run `comt audit` over an extended (`+coM`/`+coMre`) image in an OCI
/// layout. `targets` overrides the layout's declared `targets` list; at
/// least one of the two must be non-empty.
pub fn audit_extended_image(
    oci: &OciDir,
    image_ref: &str,
    targets: &[String],
    toolchain: &Toolchain,
    adapters: &[Box<dyn SystemAdapter>],
) -> Result<AuditReport, ComtError> {
    let cache = comtainer::load_cache(oci, image_ref)?;
    let targets: Vec<String> = if targets.is_empty() {
        cache.models.targets.clone()
    } else {
        targets.to_vec()
    };
    if targets.is_empty() {
        return Err(ComtError::build(format!(
            "no deployment targets declared for {image_ref}: pass --target, or record a \
             targets list in the layout"
        )));
    }
    let (diags, verdicts) = audit_cache_contents(&cache, &targets, toolchain, adapters)?;
    Ok(AuditReport {
        report: CheckReport::new(image_ref, diags),
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comtainer::models::{BuildGraph, ImageModel, ProcessModels};
    use comtainer::NativeToolchainAdapter;
    use comt_buildsys::{BuildTrace, RawCommand};
    use comt_toolchain::OptionCategory;
    use std::collections::BTreeMap;

    fn cache_with(cmds: &[&str]) -> CacheContents {
        CacheContents {
            models: ProcessModels {
                image: ImageModel::default(),
                graph: BuildGraph::new(),
                isa: "x86_64".into(),
                cache_mode: Default::default(),
                targets: vec![],
            },
            trace: BuildTrace {
                commands: cmds
                    .iter()
                    .map(|c| RawCommand {
                        argv: c.split_whitespace().map(String::from).collect(),
                        cwd: "/src".into(),
                        env: vec![],
                        inputs: vec![],
                        outputs: vec![],
                    })
                    .collect(),
            },
            sources: BTreeMap::new(),
        }
    }

    fn audit(
        cache: &CacheContents,
        targets: &[&str],
        adapters: &[Box<dyn SystemAdapter>],
    ) -> (Vec<Diagnostic>, Vec<TargetVerdict>) {
        let targets: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
        audit_cache_contents(cache, &targets, &Toolchain::vendor_x86(), adapters).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn avx512_object_fails_v2_passes_v4() {
        let cache = cache_with(&["gcc -O2 -mavx512f -c kern.c -o kern.o"]);
        let (diags, verdicts) = audit(&cache, &["x86-64-v2"], &[]);
        assert_eq!(codes(&diags), vec!["COMT-A001"]);
        assert!(diags[0].message.contains("avx512f"));
        assert!(!verdicts[0].pass);
        assert_eq!(verdicts[0].incompatible_objects, 1);

        let (diags, verdicts) = audit(&cache, &["x86-64-v4"], &[]);
        assert!(diags.is_empty());
        assert!(verdicts[0].pass);
        assert_eq!(verdicts[0].objects_checked, 1);
    }

    #[test]
    fn march_exceeding_the_target_is_a001() {
        let cache = cache_with(&["gcc -O2 -march=x86-64-v3 -c a.c -o a.o"]);
        let (diags, _) = audit(&cache, &["x86-64-v2"], &[]);
        assert_eq!(codes(&diags), vec!["COMT-A001"]);
        let (diags, _) = audit(&cache, &["x86-64-v3"], &[]);
        assert!(diags.is_empty());
    }

    #[test]
    fn native_resolves_to_the_declared_target() {
        // -march=native re-resolves on the deployment host, so a native
        // object is compatible with any target of its ISA — the
        // NativeToolchainAdapter keeps the audit quiet, not noisy.
        let cache = cache_with(&["gcc -O3 -march=native -c a.c -o a.o"]);
        let adapters: Vec<Box<dyn SystemAdapter>> = vec![Box::new(NativeToolchainAdapter)];
        let (diags, verdicts) = audit(&cache, &["x86-64-v2"], &adapters);
        assert!(codes(&diags).is_empty());
        assert!(verdicts[0].pass);
        // …but explicit flags on top of native still floor the target.
        let cache = cache_with(&["gcc -O3 -march=native -mavx512f -c a.c -o a.o"]);
        let (diags, _) = audit(&cache, &["x86-64-v2"], &adapters);
        assert_eq!(codes(&diags), vec!["COMT-A001"]);
    }

    #[test]
    fn adapter_downgrade_is_a002() {
        struct StripMachine;
        impl SystemAdapter for StripMachine {
            fn name(&self) -> &str {
                "strip-machine"
            }
            fn transform(&self, model: &mut CompilationModel, _ctx: &AdapterContext) {
                if let Some(mut inv) = model.invocation() {
                    inv.remove_category(OptionCategory::Machine);
                    model.set_argv(inv.to_argv());
                }
            }
        }
        let cache = cache_with(&["gcc -O2 -mavx512f -c a.c -o a.o"]);
        let adapters: Vec<Box<dyn SystemAdapter>> = vec![Box::new(StripMachine)];
        let (diags, _) = audit(&cache, &["x86-64-v4"], &adapters);
        assert!(codes(&diags).contains(&"COMT-A002"), "{:?}", codes(&diags));
        assert!(diags
            .iter()
            .any(|d| d.code == "COMT-A002" && d.message.contains("avx512f")));
    }

    #[test]
    fn conflicting_flags_are_a003() {
        let cache = cache_with(&["gcc -mavx2 -mno-avx2 -c a.c -o a.o"]);
        let (diags, _) = audit(&cache, &["x86-64-v3"], &[]);
        assert!(codes(&diags).contains(&"COMT-A003"));
        let a3 = diags.iter().find(|d| d.code == "COMT-A003").unwrap();
        assert!(a3.message.contains("-mavx2") && a3.message.contains("-mno-avx2"));
    }

    #[test]
    fn mixed_link_is_a004() {
        let cache = cache_with(&[
            "gcc -O2 -mavx512f -c hot.c -o hot.o",
            "gcc -O2 -c cold.c -o cold.o",
            "gcc hot.o cold.o -o app",
        ]);
        let (diags, _) = audit(&cache, &["x86-64-v4"], &[]);
        assert_eq!(codes(&diags), vec!["COMT-A004"]);
        assert!(diags[0].message.contains("avx512f"));
        // Uniform objects link quietly.
        let cache = cache_with(&[
            "gcc -O2 -c hot.c -o hot.o",
            "gcc -O2 -c cold.c -o cold.o",
            "gcc hot.o cold.o -o app",
        ]);
        let (diags, _) = audit(&cache, &["x86-64-v4"], &[]);
        assert!(diags.is_empty());
    }

    #[test]
    fn disjoint_targets_are_a005() {
        // One object pinned to an x86 level, one to an AArch64 tier: each
        // passes one declared target, none passes both.
        let cache = cache_with(&[
            "gcc -O2 -march=x86-64-v2 -c x.c -o x.o",
            "gcc -O2 -march=armv8.2-a -c a.c -o a.o",
        ]);
        let (diags, verdicts) = audit(&cache, &["x86-64-v2", "armv8.2-a"], &[]);
        assert!(codes(&diags).contains(&"COMT-A005"), "{:?}", codes(&diags));
        assert!(verdicts.iter().all(|v| !v.pass));
    }

    #[test]
    fn unknown_target_is_an_error() {
        let cache = cache_with(&["gcc -O2 -c a.c -o a.o"]);
        let err = audit_cache_contents(
            &cache,
            &["warp-drive".to_string()],
            &Toolchain::vendor_x86(),
            &[],
        )
        .unwrap_err();
        assert!(err.to_string().contains("warp-drive"));
    }

    #[test]
    fn cross_isa_target_replays_adapters_for_that_isa() {
        // A plain portable compile passes an AArch64 tier: the per-target
        // replay folds under aarch64 and the default base is armv8-a.
        let cache = cache_with(&["gcc -O2 -c a.c -o a.o"]);
        let (diags, verdicts) = audit(&cache, &["armv8.2-a"], &[]);
        assert!(diags.is_empty());
        assert!(verdicts[0].pass);
        // An x86 feature flag does not.
        let cache = cache_with(&["gcc -O2 -mavx2 -c a.c -o a.o"]);
        let (diags, _) = audit(&cache, &["armv8.2-a"], &[]);
        assert_eq!(codes(&diags), vec!["COMT-A001"]);
    }

    #[test]
    fn audit_codes_match_emissions() {
        // Every code in the mirror table is audit-prefixed and the table
        // stays in sync with what the pass can emit.
        let names: Vec<&str> = AUDIT_CODES.iter().map(|(c, _)| *c).collect();
        assert_eq!(
            names,
            vec!["COMT-A001", "COMT-A002", "COMT-A003", "COMT-A004", "COMT-A005"]
        );
    }
}
