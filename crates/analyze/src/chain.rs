//! Pass 4: adapter-chain soundness.
//!
//! Runs the configured adapter pipeline over a *copy* of every
//! compilation model and verifies that each recorded flag either survives
//! or is rewritten to another option of the same category. Two findings:
//!
//! * `COMT-W201` — a toolchain-claimed command line the option model
//!   cannot parse: the step replays verbatim and no adapter can touch it.
//! * `COMT-W202` — the chain removed a flag without introducing any
//!   replacement of its category: requested behavior is silently lost.

use crate::diag::{Diagnostic, Span};
use comtainer::{AdapterContext, CacheContents, CompilationModel, SystemAdapter};
use comt_toolchain::invocation::Arg;
use comt_toolchain::{CompilerInvocation, OptionCategory, Toolchain};

/// Codes this pass can emit (registry-consistency contract).
pub const EMITTED: &[&str] = &["COMT-W201", "COMT-W202"];

/// Render one parsed option for matching and display.
fn render_opt(token: &str, value: &Option<String>) -> String {
    match value {
        Some(v) => format!("-{token}{v}"),
        None => format!("-{token}"),
    }
}

/// Whether any known toolchain personality claims this program.
fn toolchain_claims(program: &str) -> bool {
    [
        Toolchain::distro_gcc(),
        Toolchain::llvm(),
        Toolchain::vendor_x86(),
        Toolchain::vendor_arm(),
    ]
    .iter()
    .any(|t| t.language_of(program).is_some())
}

/// Check every recorded command against the adapter chain.
pub fn check_chain(
    cache: &CacheContents,
    adapters: &[Box<dyn SystemAdapter>],
    ctx: &AdapterContext,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (idx, cmd) in cache.trace.commands.iter().enumerate() {
        let command = cmd.argv.join(" ");
        let program = cmd.argv.first().map(String::as_str).unwrap_or("");

        let parsed = CompilerInvocation::parse(&cmd.argv);
        if toolchain_claims(program) {
            if let Err(e) = &parsed {
                diags.push(
                    Diagnostic::new(
                        "COMT-W201",
                        format!("cannot model this command line ({e}): adapters are skipped"),
                        Span::step(idx, &command),
                    )
                    .with_hint(
                        "spell the flag in a standard form, or extend the option table"
                            .to_string(),
                    ),
                );
                continue;
            }
        }
        let Ok(recorded) = parsed else { continue };

        let mut model = CompilationModel::classify(&cmd.argv, &cmd.cwd, &cmd.env, &cmd.inputs);
        if !model.is_compilation() {
            continue;
        }
        comtainer::adapters::apply_adapters(&mut model, adapters, ctx);
        let Some(adapted) = model.invocation() else {
            continue;
        };

        diags.extend(diff_invocations(&recorded, &adapted, idx, &command));
    }
    diags
}

/// Compare recorded vs adapted options: every recorded option must either
/// survive verbatim or have a same-category replacement in the adapted
/// command line.
fn diff_invocations(
    recorded: &CompilerInvocation,
    adapted: &CompilerInvocation,
    idx: usize,
    command: &str,
) -> Vec<Diagnostic> {
    let adapted_opts: Vec<(String, OptionCategory)> = adapted
        .args
        .iter()
        .filter_map(|a| match a {
            Arg::Opt {
                token,
                value,
                category,
                ..
            } => Some((render_opt(token, value), *category)),
            _ => None,
        })
        .collect();

    let mut diags = Vec::new();
    for arg in &recorded.args {
        let Arg::Opt {
            token,
            value,
            category,
            ..
        } = arg
        else {
            continue;
        };
        let rendered = render_opt(token, value);
        let survives = adapted_opts.iter().any(|(r, _)| r == &rendered);
        if survives {
            continue;
        }
        let rewritten = adapted_opts.iter().any(|(_, c)| c == category);
        if rewritten {
            continue; // explicit rewrite: e.g. -march=haswell → -march=native
        }
        diags.push(
            Diagnostic::new(
                "COMT-W202",
                format!("the adapter chain drops {rendered} without a replacement"),
                Span::step(idx, command),
            )
            .with_hint(format!(
                "no adapted option has category {category:?}; check the pipeline order or \
                 add an adapter that maps the flag"
            )),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use comtainer::models::{BuildGraph, ImageModel, ProcessModels};
    use comtainer::NativeToolchainAdapter;
    use comt_buildsys::{BuildTrace, RawCommand};
    use std::collections::BTreeMap;

    fn cache_with(cmds: &[&str]) -> CacheContents {
        CacheContents {
            models: ProcessModels {
                image: ImageModel::default(),
                graph: BuildGraph::new(),
                isa: "x86_64".into(),
                cache_mode: Default::default(),
                targets: vec![],
            },
            trace: BuildTrace {
                commands: cmds
                    .iter()
                    .map(|c| RawCommand {
                        argv: c.split_whitespace().map(String::from).collect(),
                        cwd: "/src".into(),
                        env: vec![],
                        inputs: vec![],
                        outputs: vec![],
                    })
                    .collect(),
            },
            sources: BTreeMap::new(),
        }
    }

    fn ctx() -> AdapterContext {
        AdapterContext {
            isa: "x86_64".into(),
            toolchain: Toolchain::vendor_x86(),
        }
    }

    #[test]
    fn native_adapter_chain_is_sound() {
        // The NativeToolchainAdapter swaps program / -march / -O — all
        // same-category rewrites, so no diagnostics.
        let cache = cache_with(&["gcc -O2 -march=haswell -c a.c -o a.o"]);
        let adapters: Vec<Box<dyn SystemAdapter>> = vec![Box::new(NativeToolchainAdapter)];
        assert!(check_chain(&cache, &adapters, &ctx()).is_empty());
    }

    #[test]
    fn unknown_flag_is_w201() {
        let cache = cache_with(&["gcc -zmagic -c a.c -o a.o"]);
        let diags = check_chain(&cache, &[], &ctx());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "COMT-W201");
        assert!(diags[0].message.contains("-zmagic"));
    }

    #[test]
    fn unknown_program_is_not_w201() {
        // `cp` is no compiler; replaying it verbatim is fine.
        let cache = cache_with(&["cp --weird-flag a b"]);
        assert!(check_chain(&cache, &[], &ctx()).is_empty());
    }

    #[test]
    fn dropping_adapter_is_w202() {
        struct DropDefines;
        impl SystemAdapter for DropDefines {
            fn name(&self) -> &str {
                "drop-defines"
            }
            fn transform(&self, model: &mut CompilationModel, _ctx: &AdapterContext) {
                if let Some(mut inv) = model.invocation() {
                    inv.remove_category(OptionCategory::Preprocessor);
                    model.set_argv(inv.to_argv());
                }
            }
        }
        let cache = cache_with(&["gcc -DNDEBUG -O2 -c a.c -o a.o"]);
        let adapters: Vec<Box<dyn SystemAdapter>> = vec![Box::new(DropDefines)];
        let diags = check_chain(&cache, &adapters, &ctx());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "COMT-W202");
        assert!(diags[0].message.contains("-DNDEBUG"));
    }
}
