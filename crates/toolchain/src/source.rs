//! Annotated synthetic sources.
//!
//! Workload source files are ordinary-looking C/C++/Fortran text whose
//! build-relevant facts are declared in `#pragma comt …` lines, the
//! structured stand-in for what a real compiler frontend extracts by
//! parsing:
//!
//! ```c
//! #pragma comt provides(CalcForceForNodes, main)
//! #pragma comt requires(CalcVolumeDerivatives)
//! #pragma comt extern(m:sqrt, mpi:MPI_Allreduce)
//! #pragma comt isa(x86_64)
//! #pragma comt kernel(flops=1.2e12, bytes=4.0e11, blas_frac=0.35)
//! #include "lulesh.h"
//! ```
//!
//! * `provides` / `requires` — internal symbols defined/used,
//! * `extern` — namespaced external symbols (`namespace:name`) satisfied by
//!   system libraries (`libm.so.*` provides `m:*`, `libmpi.so.*` provides
//!   `mpi:*`, …),
//! * `isa(<isa>)` — the translation unit contains ISA-specific code
//!   (inline assembly / intrinsics); compiling for another ISA fails,
//! * `kernel(k=v, …)` — performance characteristics that flow through
//!   objects into the linked binary and drive the performance model,
//! * `#include` lines are scanned for header dependencies.

use std::collections::BTreeMap;

/// Facts extracted from one source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceInfo {
    /// Symbols this translation unit defines.
    pub provides: Vec<String>,
    /// Internal symbols it references.
    pub requires: Vec<String>,
    /// External namespaced symbols (`ns:name`).
    pub externs: Vec<String>,
    /// Set when the unit contains ISA-specific code.
    pub isa: Option<String>,
    /// Performance kernel parameters.
    pub kernel: BTreeMap<String, f64>,
    /// `#include "…"` dependencies (searched in quote dirs + `-I`).
    pub includes_quoted: Vec<String>,
    /// `#include <…>` dependencies (searched in `-I` + system dirs).
    pub includes_system: Vec<String>,
    /// Number of source lines (for Table 2 accounting).
    pub loc: usize,
}

fn parse_args(body: &str) -> Vec<String> {
    body.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Extract a `name(args)` directive body if `line` carries the directive.
fn directive<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let rest = line.trim().strip_prefix("#pragma comt ")?.trim_start();
    let rest = rest.strip_prefix(name)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    Some(&rest[..close])
}

/// Parse an annotated source file.
pub fn parse_source(text: &str) -> SourceInfo {
    let mut info = SourceInfo::default();
    for line in text.lines() {
        info.loc += 1;
        let trimmed = line.trim();
        if let Some(body) = directive(trimmed, "provides") {
            info.provides.extend(parse_args(body));
        } else if let Some(body) = directive(trimmed, "requires") {
            info.requires.extend(parse_args(body));
        } else if let Some(body) = directive(trimmed, "extern") {
            info.externs.extend(parse_args(body));
        } else if let Some(body) = directive(trimmed, "isa") {
            info.isa = parse_args(body).into_iter().next();
        } else if let Some(body) = directive(trimmed, "kernel") {
            for kv in parse_args(body) {
                if let Some((k, v)) = kv.split_once('=') {
                    if let Ok(val) = v.trim().parse::<f64>() {
                        info.kernel.insert(k.trim().to_string(), val);
                    }
                }
            }
        } else if let Some(rest) = trimmed.strip_prefix("#include") {
            let rest = rest.trim();
            if let Some(inner) = rest.strip_prefix('"').and_then(|r| r.split('"').next()) {
                info.includes_quoted.push(inner.to_string());
            } else if let Some(inner) = rest
                .strip_prefix('<')
                .and_then(|r| r.split('>').next())
            {
                info.includes_system.push(inner.to_string());
            }
        }
    }
    info
}

/// Render a `SourceInfo` back into an annotated source header plus `body`
/// filler lines — used by the workload generators.
pub fn render_source(info: &SourceInfo, body: &str) -> String {
    let mut out = String::new();
    if !info.provides.is_empty() {
        out.push_str(&format!("#pragma comt provides({})\n", info.provides.join(", ")));
    }
    if !info.requires.is_empty() {
        out.push_str(&format!("#pragma comt requires({})\n", info.requires.join(", ")));
    }
    if !info.externs.is_empty() {
        out.push_str(&format!("#pragma comt extern({})\n", info.externs.join(", ")));
    }
    if let Some(isa) = &info.isa {
        out.push_str(&format!("#pragma comt isa({isa})\n"));
    }
    if !info.kernel.is_empty() {
        let kv: Vec<String> = info
            .kernel
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.push_str(&format!("#pragma comt kernel({})\n", kv.join(", ")));
    }
    for inc in &info.includes_quoted {
        out.push_str(&format!("#include \"{inc}\"\n"));
    }
    for inc in &info.includes_system {
        out.push_str(&format!("#include <{inc}>\n"));
    }
    out.push_str(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"#pragma comt provides(main, init_mesh)
#pragma comt requires(calc_forces)
#pragma comt extern(m:sqrt, mpi:MPI_Init)
#pragma comt kernel(flops=1.5e9, bytes=2e8)
#include "app.h"
#include <stdio.h>
int main(int argc, char** argv) {
  init_mesh();
  return 0;
}
"#;

    #[test]
    fn parses_all_directives() {
        let info = parse_source(SAMPLE);
        assert_eq!(info.provides, vec!["main", "init_mesh"]);
        assert_eq!(info.requires, vec!["calc_forces"]);
        assert_eq!(info.externs, vec!["m:sqrt", "mpi:MPI_Init"]);
        assert_eq!(info.kernel["flops"], 1.5e9);
        assert_eq!(info.kernel["bytes"], 2e8);
        assert_eq!(info.includes_quoted, vec!["app.h"]);
        assert_eq!(info.includes_system, vec!["stdio.h"]);
        assert_eq!(info.loc, 10);
        assert!(info.isa.is_none());
    }

    #[test]
    fn isa_directive() {
        let info = parse_source("#pragma comt isa(x86_64)\nasm(\"vfmadd231pd\");\n");
        assert_eq!(info.isa.as_deref(), Some("x86_64"));
    }

    #[test]
    fn plain_source_is_neutral() {
        let info = parse_source("int x;\nint y;\n");
        assert!(info.provides.is_empty());
        assert!(info.externs.is_empty());
        assert_eq!(info.loc, 2);
    }

    #[test]
    fn malformed_pragmas_ignored() {
        let info = parse_source("#pragma comt provides\n#pragma comt kernel(flops=abc)\n#pragma omp parallel\n");
        assert!(info.provides.is_empty());
        assert!(info.kernel.is_empty());
    }

    #[test]
    fn render_parse_roundtrip() {
        let info = parse_source(SAMPLE);
        let rendered = render_source(&info, "int main(){}\n");
        let back = parse_source(&rendered);
        assert_eq!(back.provides, info.provides);
        assert_eq!(back.requires, info.requires);
        assert_eq!(back.externs, info.externs);
        assert_eq!(back.kernel, info.kernel);
        assert_eq!(back.includes_quoted, info.includes_quoted);
        assert_eq!(back.includes_system, info.includes_system);
    }
}
