//! GCC-style toolchain model and simulated compilation.
//!
//! The heart of coMtainer's *compilation model* is "structural data
//! representing GCC command lines" (paper §4.3) — the paper's authors
//! "manually extract\[ed\] it by systematically reviewing the entire GCC user
//! manual". This crate reproduces that model and the build-tool behaviour
//! the rest of the system needs:
//!
//! * [`options`] — the GCC option database: option names, argument shapes
//!   (flag / joined / separate / joined-or-separate), and semantic
//!   categories (codegen, machine, preprocessor, linker, …). The paper's
//!   GCC has 2314 options; we model the ~150 families that carry build
//!   semantics and fold the rest through a generic `-f`/`-m`/`-W` scheme,
//!   so any real-world command line still parses and round-trips.
//! * [`invocation`] — parse `argv` → [`CompilerInvocation`] and unparse it
//!   back; this is the transformable IR the system adapters rewrite
//!   (retarget `-march`, swap toolchains, inject `-flto` / PGO flags).
//! * [`artifact`] — the simulated binary formats: object files, archives,
//!   shared objects and executables are structured records (symbol tables,
//!   target info, optimization provenance, kernel metadata) serialized into
//!   the virtual filesystem.
//! * [`source`] — the annotated-source conventions (`#pragma comt …`)
//!   through which synthetic workloads declare symbols, external library
//!   requirements, ISA-specific code and performance kernels.
//! * [`compiler`] — the simulated driver: compiling sources to objects,
//!   archiving, and full Unix linking (archive member pull-in fixpoint,
//!   namespaced external symbols resolved against `-l` libraries).
//! * [`toolchains`] — toolchain personalities (distro GCC, LLVM, vendor
//!   compilers) with codegen-quality factors used by the performance model.
//! * [`features`] — the architecture×feature matrix (x86-64-v1..v4 levels,
//!   AArch64 armv8.x/SVE tiers, implication and conflict edges) and the
//!   flow-sensitive flag fold behind `comt audit`.

pub mod artifact;
pub mod compiler;
pub mod features;
pub mod invocation;
pub mod options;
pub mod source;
pub mod toolchains;

pub use artifact::{Archive, Artifact, KernelParams, LinkedBinary, ObjectFile, PgoMode};
pub use compiler::{recodegen, CommandOutcome, CompileError, SimCompiler};
pub use features::{
    arch_features, conflicts_with, flag_feature, fold_invocation, implied_by, known_targets,
    target_arch, FeatureSet, TargetConfig,
};
pub use invocation::{CompilerInvocation, DriverMode, InputKind, ParseError};
pub use options::{lookup, OptionCategory, OptionShape};
pub use source::{parse_source, SourceInfo};
pub use toolchains::{Toolchain, ToolchainKind};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use comt_vfs::Vfs;

    /// Full mini-pipeline: compile two sources, archive one, link, inspect.
    #[test]
    fn compile_archive_link_end_to_end() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/src").unwrap();
        fs.mkdir_p("/usr/lib").unwrap();
        fs.write_file(
            "/src/main.c",
            Bytes::from(
                "#pragma comt provides(main)\n#pragma comt requires(helper)\n#pragma comt extern(m:sqrt)\nint main(){}\n",
            ),
            0o644,
        )
        .unwrap();
        fs.write_file(
            "/src/helper.c",
            Bytes::from("#pragma comt provides(helper)\nvoid helper(){}\n"),
            0o644,
        )
        .unwrap();
        // Opaque system math library (a vendor blob, not a COMT artifact).
        fs.write_file("/usr/lib/libm.so.6", Bytes::from_static(b"\x7fELF-m"), 0o644)
            .unwrap();

        let tc = Toolchain::distro_gcc();
        let sim = SimCompiler::new(tc, "x86_64");

        let o1 = sim
            .run(&mut fs, "/src", &argv("gcc -O2 -c main.c -o main.o"))
            .unwrap();
        assert_eq!(o1.outputs, vec!["/src/main.o".to_string()]);
        let o2 = sim
            .run(&mut fs, "/src", &argv("gcc -O2 -c helper.c -o helper.o"))
            .unwrap();
        assert_eq!(o2.outputs, vec!["/src/helper.o".to_string()]);

        sim.run(&mut fs, "/src", &argv("ar rcs libhelper.a helper.o"))
            .unwrap();

        let link = sim
            .run(&mut fs, "/src", &argv("gcc main.o -L. -lhelper -lm -o app"))
            .unwrap();
        assert!(link.outputs.contains(&"/src/app".to_string()));

        let bin = artifact::read_linked(&fs.read("/src/app").unwrap()).unwrap();
        assert!(bin.defined.contains(&"main".to_string()));
        assert!(bin.needed_libs.iter().any(|l| l.contains("m")));
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }
}
