//! Parsed compiler command lines — the transformable compilation model.
//!
//! A [`CompilerInvocation`] preserves the full argument sequence (options
//! *and* inputs, in order — link order is semantics) so that `to_argv()`
//! round-trips losslessly, while exposing typed accessors and mutators used
//! by the system adapters.

use crate::options::{lookup, OptionCategory, OptionShape};
use std::fmt;

/// Driver mode derived from the mode flags present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverMode {
    /// `-E`: stop after preprocessing.
    Preprocess,
    /// `-S`: stop after codegen to assembly.
    Assemble,
    /// `-c`: compile each source to an object.
    Compile,
    /// default: compile as needed and link.
    Link,
}

/// Classification of an input path by extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    CSource,
    CxxSource,
    FortranSource,
    Assembly,
    Object,
    Archive,
    SharedObject,
    Other,
}

impl InputKind {
    /// Classify a path the way the GCC driver does, by suffix.
    pub fn classify(path: &str) -> InputKind {
        let name = path.rsplit('/').next().unwrap_or(path);
        // `.C` (capital) is C++ in GCC; check before lowercasing.
        if name.ends_with(".C") || name.ends_with(".cc") || name.ends_with(".cpp")
            || name.ends_with(".cxx") || name.ends_with(".c++")
        {
            return InputKind::CxxSource;
        }
        let lower = name.to_ascii_lowercase();
        if lower.ends_with(".c") {
            InputKind::CSource
        } else if lower.ends_with(".f") || lower.ends_with(".f77") || lower.ends_with(".f90")
            || lower.ends_with(".f95") || lower.ends_with(".f03") || lower.ends_with(".for")
        {
            InputKind::FortranSource
        } else if lower.ends_with(".s") {
            InputKind::Assembly
        } else if lower.ends_with(".o") {
            InputKind::Object
        } else if lower.ends_with(".a") {
            InputKind::Archive
        } else if lower.ends_with(".so") || lower.contains(".so.") {
            InputKind::SharedObject
        } else {
            InputKind::Other
        }
    }

    /// Whether this is a source file needing compilation.
    pub fn is_source(&self) -> bool {
        matches!(
            self,
            InputKind::CSource | InputKind::CxxSource | InputKind::FortranSource
        )
    }
}

/// One parsed argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// A positional input file.
    Input { path: String, kind: InputKind },
    /// An option, possibly with a value.
    Opt {
        /// Option spelling without the leading dash; for table entries this
        /// is the canonical name (`march=`, `I`, `Wl,`), for prefix-fallback
        /// flags it is the whole token.
        token: String,
        value: Option<String>,
        /// Whether the value was glued to the option (one argv token).
        joined: bool,
        category: OptionCategory,
        shape: OptionShape,
    },
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An option that requires a value ended the command line.
    MissingValue(String),
    /// A token that is neither a known option nor a plausible input.
    UnknownOption(String),
    /// Empty argv.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingValue(t) => write!(f, "option -{t} requires a value"),
            ParseError::UnknownOption(t) => write!(f, "unknown option: {t}"),
            ParseError::Empty => write!(f, "empty command line"),
        }
    }
}

impl std::error::Error for ParseError {}

/// PGO state encoded in the flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PgoFlag {
    #[default]
    None,
    /// `-fprofile-generate[=dir]`
    Generate(Option<String>),
    /// `-fprofile-use[=file]`
    Use(Option<String>),
}

/// A parsed compiler command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilerInvocation {
    /// argv\[0\] as invoked (e.g. `gcc`, `g++-13`, `mpicc`, `clang`).
    pub program: String,
    /// Full argument sequence, order preserved.
    pub args: Vec<Arg>,
}

impl CompilerInvocation {
    /// Parse a full argv (including the program at index 0).
    pub fn parse(argv: &[String]) -> Result<Self, ParseError> {
        let (program, rest) = argv.split_first().ok_or(ParseError::Empty)?;
        let mut args = Vec::with_capacity(rest.len());
        let mut i = 0usize;
        while i < rest.len() {
            let tok = &rest[i];
            i += 1;
            if let Some(body) = tok.strip_prefix('-') {
                if body.is_empty() {
                    // Bare `-` is stdin input; treat as other input.
                    args.push(Arg::Input {
                        path: tok.clone(),
                        kind: InputKind::Other,
                    });
                    continue;
                }
                let (spec, split) =
                    lookup(body).ok_or_else(|| ParseError::UnknownOption(tok.clone()))?;
                let canonical = if spec.name.is_empty() {
                    body.to_string()
                } else {
                    spec.name.to_string()
                };
                match (spec.shape, split) {
                    (OptionShape::Flag, _) => args.push(Arg::Opt {
                        token: canonical,
                        value: None,
                        joined: false,
                        category: spec.category,
                        shape: spec.shape,
                    }),
                    (OptionShape::Joined, Some(at)) => args.push(Arg::Opt {
                        token: canonical,
                        value: Some(body[at..].to_string()),
                        joined: true,
                        category: spec.category,
                        shape: spec.shape,
                    }),
                    (OptionShape::Joined, None) => {
                        return Err(ParseError::MissingValue(body.to_string()))
                    }
                    (OptionShape::Separate, _) | (OptionShape::JoinedOrSeparate, None) => {
                        let value = rest
                            .get(i)
                            .cloned()
                            .ok_or_else(|| ParseError::MissingValue(body.to_string()))?;
                        i += 1;
                        args.push(Arg::Opt {
                            token: canonical,
                            value: Some(value),
                            joined: false,
                            category: spec.category,
                            shape: spec.shape,
                        });
                    }
                    (OptionShape::JoinedOrSeparate, Some(at)) => args.push(Arg::Opt {
                        token: canonical,
                        value: Some(body[at..].to_string()),
                        joined: true,
                        category: spec.category,
                        shape: spec.shape,
                    }),
                }
            } else {
                args.push(Arg::Input {
                    path: tok.clone(),
                    kind: InputKind::classify(tok),
                });
            }
        }
        Ok(CompilerInvocation {
            program: program.clone(),
            args,
        })
    }

    /// Reconstruct the argv (lossless for parsed command lines).
    pub fn to_argv(&self) -> Vec<String> {
        let mut out = vec![self.program.clone()];
        for a in &self.args {
            match a {
                Arg::Input { path, .. } => out.push(path.clone()),
                Arg::Opt {
                    token,
                    value,
                    joined,
                    ..
                } => match value {
                    None => out.push(format!("-{token}")),
                    Some(v) if *joined => {
                        // Joined-table names carry their `=`; joined
                        // prefixes (`I`, `O`, `Wl,`) glue directly.
                        out.push(format!("-{token}{v}"));
                    }
                    Some(v) => {
                        out.push(format!("-{token}"));
                        out.push(v.clone());
                    }
                },
            }
        }
        out
    }

    /// Driver mode implied by mode flags.
    pub fn mode(&self) -> DriverMode {
        for a in &self.args {
            if let Arg::Opt { token, .. } = a {
                match token.as_str() {
                    "E" => return DriverMode::Preprocess,
                    "S" => return DriverMode::Assemble,
                    "c" => return DriverMode::Compile,
                    _ => {}
                }
            }
        }
        DriverMode::Link
    }

    /// The `-o` value, if any.
    pub fn output(&self) -> Option<&str> {
        self.opt_value("o")
    }

    /// All positional inputs in order.
    pub fn inputs(&self) -> Vec<(&str, InputKind)> {
        self.args
            .iter()
            .filter_map(|a| match a {
                Arg::Input { path, kind } => Some((path.as_str(), *kind)),
                _ => None,
            })
            .collect()
    }

    fn opt_value(&self, name: &str) -> Option<&str> {
        self.args.iter().rev().find_map(|a| match a {
            Arg::Opt { token, value, .. } if token == name => value.as_deref(),
            _ => None,
        })
    }

    fn has_flag(&self, name: &str) -> bool {
        self.args
            .iter()
            .any(|a| matches!(a, Arg::Opt { token, .. } if token == name))
    }

    /// Optimization level as the suffix string (`"2"`, `"3"`, `"fast"`,
    /// `"s"`); last one wins like GCC.
    pub fn opt_level(&self) -> Option<String> {
        self.args.iter().rev().find_map(|a| match a {
            Arg::Opt {
                token,
                value,
                category: OptionCategory::OptLevel,
                ..
            } => Some(match value {
                Some(v) => v.clone(),
                None => token.trim_start_matches('O').to_string(),
            }),
            _ => None,
        })
    }

    pub fn march(&self) -> Option<&str> {
        self.opt_value("march=")
    }

    pub fn mtune(&self) -> Option<&str> {
        self.opt_value("mtune=")
    }

    pub fn std(&self) -> Option<&str> {
        self.opt_value("std=")
    }

    pub fn include_dirs(&self) -> Vec<&str> {
        self.values_of("I")
    }

    pub fn lib_dirs(&self) -> Vec<&str> {
        self.values_of("L")
    }

    pub fn libs(&self) -> Vec<&str> {
        self.values_of("l")
    }

    pub fn defines(&self) -> Vec<&str> {
        self.values_of("D")
    }

    fn values_of(&self, name: &str) -> Vec<&str> {
        self.args
            .iter()
            .filter_map(|a| match a {
                Arg::Opt { token, value, .. } if token == name => value.as_deref(),
                _ => None,
            })
            .collect()
    }

    pub fn is_shared(&self) -> bool {
        self.has_flag("shared")
    }

    pub fn is_static(&self) -> bool {
        self.has_flag("static")
    }

    pub fn openmp(&self) -> bool {
        self.has_flag("fopenmp")
    }

    pub fn fast_math(&self) -> bool {
        (self.has_flag("ffast-math") || self.opt_level().as_deref() == Some("fast"))
            && !self.has_flag("fno-fast-math")
    }

    /// Whether LTO is requested (`-flto` / `-flto=…`, not negated later).
    pub fn lto(&self) -> bool {
        let mut on = false;
        for a in &self.args {
            if let Arg::Opt { token, .. } = a {
                match token.as_str() {
                    "flto" | "flto=" => on = true,
                    "fno-lto" => on = false,
                    _ => {}
                }
            }
        }
        on
    }

    /// The PGO state encoded in the flags (last relevant flag wins).
    pub fn pgo(&self) -> PgoFlag {
        let mut state = PgoFlag::None;
        for a in &self.args {
            if let Arg::Opt { token, value, .. } = a {
                match token.as_str() {
                    "fprofile-generate" => state = PgoFlag::Generate(None),
                    "fprofile-generate=" => state = PgoFlag::Generate(value.clone()),
                    "fprofile-use" => state = PgoFlag::Use(None),
                    "fprofile-use=" => state = PgoFlag::Use(value.clone()),
                    _ => {}
                }
            }
        }
        state
    }

    // ---- mutators used by system adapters -------------------------------

    /// Remove every option of a category.
    pub fn remove_category(&mut self, category: OptionCategory) {
        self.args.retain(|a| !matches!(a, Arg::Opt { category: c, .. } if *c == category));
    }

    /// Append a bare flag.
    pub fn push_flag(&mut self, token: &str, category: OptionCategory) {
        self.args.push(Arg::Opt {
            token: token.to_string(),
            value: None,
            joined: false,
            category,
            shape: OptionShape::Flag,
        });
    }

    /// Append a joined option (`-name=value` style; `name` must carry its
    /// `=` when the table spells it that way).
    pub fn push_joined(&mut self, token: &str, value: &str, category: OptionCategory) {
        self.args.push(Arg::Opt {
            token: token.to_string(),
            value: Some(value.to_string()),
            joined: true,
            category,
            shape: OptionShape::Joined,
        });
    }

    /// Set (replacing any existing) the `-march=` value.
    pub fn set_march(&mut self, value: &str) {
        self.args.retain(|a| !matches!(a, Arg::Opt { token, .. } if token == "march="));
        self.push_joined("march=", value, OptionCategory::Machine);
    }

    /// Set the optimization level, replacing existing `-O*`.
    pub fn set_opt_level(&mut self, level: &str) {
        self.remove_category(OptionCategory::OptLevel);
        self.push_flag(&format!("O{level}"), OptionCategory::OptLevel);
    }

    /// Enable LTO (idempotent).
    pub fn enable_lto(&mut self) {
        if !self.lto() {
            self.push_flag("flto", OptionCategory::Lto);
        }
    }

    /// Clear PGO flags then set the requested state.
    pub fn set_pgo(&mut self, pgo: PgoFlag) {
        self.args.retain(|a| {
            !matches!(a, Arg::Opt { token, .. } if token.starts_with("fprofile-generate") || token.starts_with("fprofile-use"))
        });
        match pgo {
            PgoFlag::None => {}
            PgoFlag::Generate(None) => self.push_flag("fprofile-generate", OptionCategory::Pgo),
            PgoFlag::Generate(Some(d)) => {
                self.push_joined("fprofile-generate=", &d, OptionCategory::Pgo)
            }
            PgoFlag::Use(None) => self.push_flag("fprofile-use", OptionCategory::Pgo),
            PgoFlag::Use(Some(p)) => self.push_joined("fprofile-use=", &p, OptionCategory::Pgo),
        }
    }

    /// Replace the output path.
    pub fn set_output(&mut self, path: &str) {
        self.args.retain(|a| !matches!(a, Arg::Opt { token, .. } if token == "o"));
        self.args.push(Arg::Opt {
            token: "o".to_string(),
            value: Some(path.to_string()),
            joined: false,
            category: OptionCategory::Output,
            shape: OptionShape::JoinedOrSeparate,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn parse(s: &str) -> CompilerInvocation {
        CompilerInvocation::parse(&argv(s)).unwrap()
    }

    #[test]
    fn roundtrip_typical_compile() {
        let cmd = "gcc -O2 -march=x86-64 -Ivendor/include -DNDEBUG -c lulesh.cc -o lulesh.o";
        let inv = parse(cmd);
        assert_eq!(inv.to_argv().join(" "), cmd);
    }

    #[test]
    fn roundtrip_separate_forms() {
        let cmd = "g++ -I include -D FOO=1 -L /opt/lib -o app main.o -l m";
        let inv = parse(cmd);
        assert_eq!(inv.to_argv().join(" "), cmd);
    }

    #[test]
    fn mode_detection() {
        assert_eq!(parse("gcc -c a.c").mode(), DriverMode::Compile);
        assert_eq!(parse("gcc -E a.c").mode(), DriverMode::Preprocess);
        assert_eq!(parse("gcc -S a.c").mode(), DriverMode::Assemble);
        assert_eq!(parse("gcc a.o -o app").mode(), DriverMode::Link);
    }

    #[test]
    fn typed_accessors() {
        let inv = parse(
            "g++ -O3 -march=native -mtune=native -std=c++17 -fopenmp -Iinc -I inc2 -DX=1 -L/l1 -lm -lmpi main.cc -o out",
        );
        assert_eq!(inv.opt_level().as_deref(), Some("3"));
        assert_eq!(inv.march(), Some("native"));
        assert_eq!(inv.mtune(), Some("native"));
        assert_eq!(inv.std(), Some("c++17"));
        assert!(inv.openmp());
        assert_eq!(inv.include_dirs(), vec!["inc", "inc2"]);
        assert_eq!(inv.defines(), vec!["X=1"]);
        assert_eq!(inv.lib_dirs(), vec!["/l1"]);
        assert_eq!(inv.libs(), vec!["m", "mpi"]);
        assert_eq!(inv.output(), Some("out"));
    }

    #[test]
    fn last_opt_level_wins() {
        assert_eq!(parse("gcc -O0 -O3 -c a.c").opt_level().as_deref(), Some("3"));
        assert_eq!(parse("gcc -O -c a.c").opt_level().as_deref(), Some(""));
    }

    #[test]
    fn lto_negation() {
        assert!(parse("gcc -flto a.o").lto());
        assert!(parse("gcc -flto=auto a.o").lto());
        assert!(!parse("gcc -flto -fno-lto a.o").lto());
        assert!(!parse("gcc a.o").lto());
    }

    #[test]
    fn pgo_states() {
        assert_eq!(parse("gcc a.c").pgo(), PgoFlag::None);
        assert_eq!(
            parse("gcc -fprofile-generate a.c").pgo(),
            PgoFlag::Generate(None)
        );
        assert_eq!(
            parse("gcc -fprofile-use=x.prof a.c").pgo(),
            PgoFlag::Use(Some("x.prof".into()))
        );
    }

    #[test]
    fn input_classification() {
        assert_eq!(InputKind::classify("a.c"), InputKind::CSource);
        assert_eq!(InputKind::classify("b.cc"), InputKind::CxxSource);
        assert_eq!(InputKind::classify("b.C"), InputKind::CxxSource);
        assert_eq!(InputKind::classify("f.f90"), InputKind::FortranSource);
        assert_eq!(InputKind::classify("x.o"), InputKind::Object);
        assert_eq!(InputKind::classify("libx.a"), InputKind::Archive);
        assert_eq!(InputKind::classify("libm.so.6"), InputKind::SharedObject);
        assert_eq!(InputKind::classify("README"), InputKind::Other);
    }

    #[test]
    fn link_order_preserved() {
        let inv = parse("gcc main.o -lfirst other.o -lsecond -o app");
        let order: Vec<String> = inv
            .args
            .iter()
            .filter_map(|a| match a {
                Arg::Input { path, .. } => Some(path.clone()),
                Arg::Opt { token, value, .. } if token == "l" => {
                    Some(format!("-l{}", value.clone().unwrap()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(order, vec!["main.o", "-lfirst", "other.o", "-lsecond"]);
    }

    #[test]
    fn missing_value_errors() {
        assert!(matches!(
            CompilerInvocation::parse(&argv("gcc -o")),
            Err(ParseError::MissingValue(_))
        ));
        assert!(matches!(
            CompilerInvocation::parse(&argv("gcc -I")),
            Err(ParseError::MissingValue(_))
        ));
    }

    #[test]
    fn unknown_option_errors() {
        assert!(matches!(
            CompilerInvocation::parse(&argv("gcc -zmagic a.c")),
            Err(ParseError::UnknownOption(_))
        ));
    }

    #[test]
    fn mutators_retarget() {
        let mut inv = parse("g++ -O2 -march=x86-64 -c a.cc -o a.o");
        inv.set_march("icelake-server");
        inv.set_opt_level("3");
        inv.enable_lto();
        inv.enable_lto(); // idempotent
        let out = inv.to_argv().join(" ");
        assert!(out.contains("-march=icelake-server"));
        assert!(out.contains("-O3"));
        assert!(!out.contains("-O2"));
        assert_eq!(out.matches("-flto").count(), 1);
    }

    #[test]
    fn mutators_pgo_replace() {
        let mut inv = parse("gcc -fprofile-generate -c a.c");
        inv.set_pgo(PgoFlag::Use(Some("/prof/app.prof".into())));
        assert_eq!(inv.pgo(), PgoFlag::Use(Some("/prof/app.prof".into())));
        let s = inv.to_argv().join(" ");
        assert!(!s.contains("profile-generate"));
        assert!(s.contains("-fprofile-use=/prof/app.prof"));
    }

    #[test]
    fn set_output_replaces() {
        let mut inv = parse("gcc a.o -o old");
        inv.set_output("/abs/new");
        assert_eq!(inv.output(), Some("/abs/new"));
        assert_eq!(inv.to_argv().iter().filter(|t| *t == "-o").count(), 1);
    }

    #[test]
    fn wl_passthrough_roundtrip() {
        let cmd = "gcc a.o -Wl,-rpath,/opt/lib -Wl,--as-needed -o app";
        assert_eq!(parse(cmd).to_argv().join(" "), cmd);
    }

    #[test]
    fn fallback_flags_roundtrip() {
        let cmd = "gcc -fstrict-aliasing -mbranch-protection -Wshadow -c a.c";
        assert_eq!(parse(cmd).to_argv().join(" "), cmd);
    }
}
