//! The simulated compiler driver: compile, archive, link.
//!
//! [`SimCompiler::run`] executes one toolchain command line against a
//! virtual filesystem, producing artifact files and reporting exactly which
//! paths were read and written — the information the build recorder
//! captures for the build-graph model.
//!
//! The linker implements the classic Unix model: objects are included
//! unconditionally; archive members are pulled in only when they define a
//! currently-undefined symbol (iterated to a fixpoint); external namespaced
//! symbols (`ns:name`) are satisfied by `-l` libraries whose name matches
//! the namespace (`-lm` ⇒ `m:*`), with the driver's implicit libraries
//! (`c`, `stdc++`/`gfortran` per language, `gomp` under `-fopenmp`) added
//! the way real drivers do.

use crate::artifact::{
    self, Archive, BinKind, KernelParams, LinkedBinary, ObjectFile, OptProvenance, PgoMode,
    TargetInfo,
};
use crate::invocation::{Arg, CompilerInvocation, DriverMode, InputKind, ParseError, PgoFlag};
use crate::source::parse_source;
use crate::toolchains::{vector_width, Language, Toolchain};
use bytes::Bytes;
use comt_vfs::Vfs;
use std::collections::BTreeSet;
use std::fmt;

/// Output of a dry compile: the outcome plus `(path, bytes)` objects.
pub type CompileOutputs = (CommandOutcome, Vec<(String, Vec<u8>)>);

/// Result of executing one command.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommandOutcome {
    /// Absolute paths read (sources, headers, objects, libraries, profiles).
    pub inputs: Vec<String>,
    /// Absolute paths written.
    pub outputs: Vec<String>,
}

/// Compilation/linking failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Program name not handled by this toolchain.
    UnknownProgram(String),
    /// Command line did not parse.
    Parse(ParseError),
    /// The toolchain cannot target this ISA (vendor compilers are
    /// single-ISA).
    UnsupportedIsa { toolchain: String, isa: String },
    /// An input file is missing.
    MissingInput(String),
    /// `gcc -c a.c b.c -o x.o` is rejected like the real driver.
    MultipleSourcesWithOutput,
    /// No input files.
    NoInputs,
    /// A translation unit contains code for a different ISA — the failure
    /// mode of the cross-ISA experiment (paper §5.5).
    IsaMismatch {
        unit: String,
        unit_isa: String,
        target_isa: String,
    },
    /// Link failed: symbol not defined by any object/archive/library.
    Unresolved { symbol: String, context: String },
    /// `-lfoo` found no library.
    MissingLibrary(String),
    /// A file that should be a COMT artifact is not.
    BadArtifact(String),
    /// `-fprofile-use=<path>` pointed at a missing profile.
    MissingProfile(String),
    /// A machine option from another ISA (`-mavx2` on aarch64, …) — real
    /// drivers reject these, and this is the §5.5 cross-ISA failure mode.
    UnrecognizedOption { option: String, isa: String },
    /// Filesystem error.
    Fs(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownProgram(p) => write!(f, "unknown program: {p}"),
            CompileError::Parse(e) => write!(f, "command line: {e}"),
            CompileError::UnsupportedIsa { toolchain, isa } => {
                write!(f, "toolchain {toolchain} cannot target {isa}")
            }
            CompileError::MissingInput(p) => write!(f, "no such file: {p}"),
            CompileError::MultipleSourcesWithOutput => {
                write!(f, "cannot specify -o with -c and multiple files")
            }
            CompileError::NoInputs => write!(f, "no input files"),
            CompileError::IsaMismatch {
                unit,
                unit_isa,
                target_isa,
            } => write!(
                f,
                "{unit}: ISA-specific code for {unit_isa} cannot compile for {target_isa}"
            ),
            CompileError::Unresolved { symbol, context } => {
                write!(f, "undefined reference to `{symbol}' while linking {context}")
            }
            CompileError::MissingLibrary(l) => write!(f, "cannot find -l{l}"),
            CompileError::BadArtifact(p) => write!(f, "file format not recognized: {p}"),
            CompileError::MissingProfile(p) => write!(f, "profile data not found: {p}"),
            CompileError::UnrecognizedOption { option, isa } => {
                write!(f, "unrecognized command-line option '{option}' for {isa} (ISA-specific flag)")
            }
            CompileError::Fs(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

/// Default library search directories, after `-L` paths.
const DEFAULT_LIB_DIRS: &[&str] = &["/usr/local/lib", "/usr/lib", "/lib"];
/// Default system include directories.
const DEFAULT_INCLUDE_DIRS: &[&str] = &["/usr/local/include", "/usr/include"];

/// The simulated driver for one toolchain targeting one ISA.
#[derive(Debug, Clone)]
pub struct SimCompiler {
    pub toolchain: Toolchain,
    pub isa: String,
}

impl SimCompiler {
    pub fn new(toolchain: Toolchain, isa: &str) -> Self {
        SimCompiler {
            toolchain,
            isa: isa.to_string(),
        }
    }

    /// Whether this driver handles the given program name (compiler,
    /// archiver, or ranlib).
    pub fn handles(&self, program: &str) -> bool {
        self.toolchain.language_of(program).is_some()
            || Toolchain::is_archiver(program)
            || Toolchain::is_ranlib(program)
    }

    /// Execute a command line in `cwd`.
    pub fn run(
        &self,
        fs: &mut Vfs,
        cwd: &str,
        argv: &[String],
    ) -> Result<CommandOutcome, CompileError> {
        let program = argv.first().ok_or(CompileError::NoInputs)?.clone();
        if Toolchain::is_archiver(&program) {
            return self.run_ar(fs, cwd, argv);
        }
        if Toolchain::is_ranlib(&program) {
            // ranlib regenerates the symbol index; COMT archives carry it
            // inherently, so this only validates the target exists.
            let target = argv.get(1).ok_or(CompileError::NoInputs)?;
            let path = comt_vfs::join(cwd, target);
            if !fs.exists(&path) {
                return Err(CompileError::MissingInput(path));
            }
            return Ok(CommandOutcome {
                inputs: vec![path],
                outputs: vec![],
            });
        }
        let language = self
            .toolchain
            .language_of(&program)
            .ok_or_else(|| CompileError::UnknownProgram(program.clone()))?;
        if !self.toolchain.supported_isas.iter().any(|i| i == &self.isa) {
            return Err(CompileError::UnsupportedIsa {
                toolchain: self.toolchain.name.clone(),
                isa: self.isa.clone(),
            });
        }

        let mut inv = CompilerInvocation::parse(argv)?;
        // MPI wrappers implicitly add the MPI library to link steps.
        let base = program.rsplit('/').next().unwrap_or(&program);
        let is_mpi_wrapper = base.starts_with("mpi");
        if is_mpi_wrapper && inv.mode() == DriverMode::Link && !inv.libs().contains(&"mpi") {
            inv.args.push(Arg::Opt {
                token: "l".into(),
                value: Some("mpi".into()),
                joined: true,
                category: crate::options::OptionCategory::LibLink,
                shape: crate::options::OptionShape::JoinedOrSeparate,
            });
        }

        match inv.mode() {
            DriverMode::Compile => self.run_compile(fs, cwd, &inv, language),
            DriverMode::Link => self.run_link(fs, cwd, &inv, language),
            DriverMode::Preprocess | DriverMode::Assemble => {
                self.run_passthrough(fs, cwd, &inv)
            }
        }
    }

    // ---- compile ---------------------------------------------------------

    fn run_compile(
        &self,
        fs: &mut Vfs,
        cwd: &str,
        inv: &CompilerInvocation,
        language: Language,
    ) -> Result<CommandOutcome, CompileError> {
        let (outcome, outputs) = self.compile_only_inv(fs, cwd, inv, language)?;
        for (path, data) in outputs {
            fs.write_file_p(&path, Bytes::from(data), 0o644)
                .map_err(|e| CompileError::Fs(e.to_string()))?;
        }
        Ok(outcome)
    }

    /// Compile without mutating the filesystem: returns the outcome plus
    /// the object files as `(path, bytes)` pairs. This is the thread-safe
    /// entry point the parallel system-side rebuild uses — many threads
    /// share one immutable snapshot and outputs are merged afterwards.
    pub fn compile_only(
        &self,
        fs: &Vfs,
        cwd: &str,
        argv: &[String],
    ) -> Result<CompileOutputs, CompileError> {
        let program = argv.first().ok_or(CompileError::NoInputs)?;
        let language = self
            .toolchain
            .language_of(program)
            .ok_or_else(|| CompileError::UnknownProgram(program.clone()))?;
        if !self.toolchain.supported_isas.iter().any(|i| i == &self.isa) {
            return Err(CompileError::UnsupportedIsa {
                toolchain: self.toolchain.name.clone(),
                isa: self.isa.clone(),
            });
        }
        let inv = CompilerInvocation::parse(argv)?;
        if inv.mode() != DriverMode::Compile {
            return Err(CompileError::UnknownProgram(format!(
                "compile_only only handles -c steps, got {:?}",
                inv.mode()
            )));
        }
        self.compile_only_inv(fs, cwd, &inv, language)
    }

    fn compile_only_inv(
        &self,
        fs: &Vfs,
        cwd: &str,
        inv: &CompilerInvocation,
        language: Language,
    ) -> Result<CompileOutputs, CompileError> {
        let sources: Vec<&str> = inv
            .inputs()
            .iter()
            .filter(|(_, k)| k.is_source())
            .map(|(p, _)| *p)
            .collect();
        if sources.is_empty() {
            return Err(CompileError::NoInputs);
        }
        if sources.len() > 1 && inv.output().is_some() {
            return Err(CompileError::MultipleSourcesWithOutput);
        }

        let mut outcome = CommandOutcome::default();
        let mut outputs = Vec::new();
        for src in sources {
            let (obj, reads) = self.compile_unit(fs, cwd, inv, src, language)?;
            outcome.inputs.extend(reads);
            let out_path = match inv.output() {
                Some(o) => comt_vfs::join(cwd, o),
                None => {
                    let stem = comt_vfs::file_name(&comt_vfs::join(cwd, src));
                    let stem = stem.rsplit_once('.').map(|(s, _)| s.to_string()).unwrap_or(stem);
                    comt_vfs::join(cwd, &format!("{stem}.o"))
                }
            };
            outcome.outputs.push(out_path.clone());
            outputs.push((out_path, artifact::write_object(&obj)));
        }
        Ok((outcome, outputs))
    }

    /// Compile one translation unit to an in-memory object.
    fn compile_unit(
        &self,
        fs: &Vfs,
        cwd: &str,
        inv: &CompilerInvocation,
        src: &str,
        language: Language,
    ) -> Result<(ObjectFile, Vec<String>), CompileError> {
        let src_path = comt_vfs::join(cwd, src);
        let text = fs
            .read_string(&src_path)
            .map_err(|_| CompileError::MissingInput(src_path.clone()))?;
        let info = parse_source(&text);
        let mut reads = vec![src_path.clone()];

        // Header dependency scan (transitive, tolerant of missing system
        // headers the way `-MG` is).
        let mut include_dirs: Vec<String> = inv
            .include_dirs()
            .iter()
            .map(|d| comt_vfs::join(cwd, d))
            .collect();
        include_dirs.extend(DEFAULT_INCLUDE_DIRS.iter().map(|d| d.to_string()));
        let mut visited = BTreeSet::new();
        let mut queue: Vec<(String, String)> = Vec::new();
        let src_dir = comt_vfs::parent(&src_path);
        for inc in &info.includes_quoted {
            queue.push((src_dir.clone(), inc.clone()));
        }
        for inc in &info.includes_system {
            queue.push((String::new(), inc.clone()));
        }
        while let Some((from_dir, inc)) = queue.pop() {
            let mut candidates = Vec::new();
            if !from_dir.is_empty() {
                candidates.push(comt_vfs::join(&from_dir, &inc));
            }
            for d in &include_dirs {
                candidates.push(comt_vfs::join(d, &inc));
            }
            if let Some(found) = candidates.into_iter().find(|c| fs.exists(c)) {
                if visited.insert(found.clone()) {
                    reads.push(found.clone());
                    if let Ok(header_text) = fs.read_string(&found) {
                        let hinfo = parse_source(&header_text);
                        let hdir = comt_vfs::parent(&found);
                        for i in hinfo.includes_quoted {
                            queue.push((hdir.clone(), i));
                        }
                        for i in hinfo.includes_system {
                            queue.push((String::new(), i));
                        }
                    }
                }
            }
        }

        // Machine flags from another ISA are rejected like real drivers
        // reject them ("unrecognized command-line option").
        for arg in &inv.args {
            if let crate::invocation::Arg::Opt { token, value, .. } = arg {
                if let Some(bad) = foreign_machine_flag(&self.isa, token, value.as_deref()) {
                    return Err(CompileError::UnrecognizedOption {
                        option: bad,
                        isa: self.isa.clone(),
                    });
                }
            }
        }

        // ISA-specific units refuse to compile for another ISA.
        if let Some(unit_isa) = &info.isa {
            if unit_isa != &self.isa {
                return Err(CompileError::IsaMismatch {
                    unit: src_path,
                    unit_isa: unit_isa.clone(),
                    target_isa: self.isa.clone(),
                });
            }
        }

        // Target resolution.
        let march = match inv.march() {
            Some("native") => self.toolchain.native_march(&self.isa).to_string(),
            Some(m) => m.to_string(),
            None => self.toolchain.default_march(&self.isa).to_string(),
        };
        let vw = vector_width(&self.isa, &march);

        // PGO.
        let pgo = match inv.pgo() {
            PgoFlag::None => PgoMode::None,
            PgoFlag::Generate(_) => PgoMode::Instrumented,
            PgoFlag::Use(Some(path)) => {
                let p = comt_vfs::join(cwd, &path);
                if !fs.exists(&p) {
                    return Err(CompileError::MissingProfile(p));
                }
                reads.push(p);
                PgoMode::Optimized
            }
            PgoFlag::Use(None) => PgoMode::Optimized,
        };

        let opt_level = inv.opt_level().unwrap_or_else(|| "0".to_string());
        let quality = self.toolchain.codegen_quality * opt_level_factor(&opt_level);

        let obj = ObjectFile {
            source_path: src_path,
            source_digest: comt_digest::Digest::of(text.as_bytes()).to_oci_string(),
            lang: language.as_str().to_string(),
            defined: info.provides.clone(),
            undefined: info.requires.clone(),
            externs: info.externs.clone(),
            target: Some(TargetInfo {
                isa: self.isa.clone(),
                march,
            }),
            opt: OptProvenance {
                toolchain: self.toolchain.name.clone(),
                codegen_quality: quality,
                opt_level,
                vector_width: vw,
                fast_math: inv.fast_math(),
                openmp: inv.openmp(),
                lto_ir: inv.lto(),
                pgo,
            },
            kernel: KernelParams(info.kernel.clone()),
        };
        Ok((obj, reads))
    }

    // ---- archive ---------------------------------------------------------

    fn run_ar(
        &self,
        fs: &mut Vfs,
        cwd: &str,
        argv: &[String],
    ) -> Result<CommandOutcome, CompileError> {
        // `ar <flags> <archive> <members...>`; we accept the common rcs/crs
        // spellings and treat them all as create/replace.
        if argv.len() < 3 {
            return Err(CompileError::NoInputs);
        }
        let out = comt_vfs::join(cwd, &argv[2]);
        let mut archive = Archive::default();
        let mut outcome = CommandOutcome::default();
        for member in &argv[3..] {
            let path = comt_vfs::join(cwd, member);
            let bytes = fs
                .read(&path)
                .map_err(|_| CompileError::MissingInput(path.clone()))?;
            let obj = artifact::read_object(&bytes)
                .map_err(|_| CompileError::BadArtifact(path.clone()))?;
            outcome.inputs.push(path.clone());
            archive
                .members
                .push((comt_vfs::file_name(&path), obj));
        }
        fs.write_file_p(
            &out,
            Bytes::from(artifact::write_archive_artifact(&archive)),
            0o644,
        )
        .map_err(|e| CompileError::Fs(e.to_string()))?;
        outcome.outputs.push(out);
        Ok(outcome)
    }

    // ---- link ------------------------------------------------------------

    fn run_link(
        &self,
        fs: &mut Vfs,
        cwd: &str,
        inv: &CompilerInvocation,
        language: Language,
    ) -> Result<CommandOutcome, CompileError> {
        let mut outcome = CommandOutcome::default();
        let mut objects: Vec<ObjectFile> = Vec::new();
        let mut archives: Vec<(String, Archive)> = Vec::new();
        /// A library visible to the link: its name (namespace) and, when it
        /// is a COMT artifact, its symbol table.
        struct LinkedLib {
            namespace: String,
            comt_defined: Vec<String>,
        }
        let mut libs: Vec<LinkedLib> = Vec::new();
        let mut needed_libs: Vec<String> = Vec::new();

        let mut lib_dirs: Vec<String> = inv
            .lib_dirs()
            .iter()
            .map(|d| comt_vfs::join(cwd, d))
            .collect();
        lib_dirs.extend(DEFAULT_LIB_DIRS.iter().map(|d| d.to_string()));

        for arg in &inv.args {
            match arg {
                Arg::Input { path, kind } => {
                    let abs = comt_vfs::join(cwd, path);
                    match kind {
                        k if k.is_source() => {
                            let (obj, reads) = self.compile_unit(fs, cwd, inv, path, language)?;
                            outcome.inputs.extend(reads);
                            objects.push(obj);
                        }
                        InputKind::Object => {
                            let bytes = fs
                                .read(&abs)
                                .map_err(|_| CompileError::MissingInput(abs.clone()))?;
                            let obj = artifact::read_object(&bytes)
                                .map_err(|_| CompileError::BadArtifact(abs.clone()))?;
                            outcome.inputs.push(abs);
                            objects.push(obj);
                        }
                        InputKind::Archive => {
                            let bytes = fs
                                .read(&abs)
                                .map_err(|_| CompileError::MissingInput(abs.clone()))?;
                            let ar = artifact::read_archive_artifact(&bytes)
                                .map_err(|_| CompileError::BadArtifact(abs.clone()))?;
                            outcome.inputs.push(abs.clone());
                            archives.push((abs, ar));
                        }
                        InputKind::SharedObject => {
                            let bytes = fs
                                .read(&abs)
                                .map_err(|_| CompileError::MissingInput(abs.clone()))?;
                            outcome.inputs.push(abs.clone());
                            let ns = lib_namespace(&comt_vfs::file_name(&abs));
                            let defined = match artifact::read_artifact(&bytes) {
                                Ok(artifact::Artifact::Linked(b)) => b.defined,
                                _ => Vec::new(),
                            };
                            needed_libs.push(ns.clone());
                            libs.push(LinkedLib {
                                namespace: ns,
                                comt_defined: defined,
                            });
                        }
                        _ => {}
                    }
                }
                Arg::Opt { token, value, .. } if token == "l" => {
                    let name = value.clone().unwrap_or_default();
                    let (path, bytes) = find_library(fs, &lib_dirs, &name, inv.is_static())
                        .ok_or_else(|| CompileError::MissingLibrary(name.clone()))?;
                    outcome.inputs.push(path.clone());
                    match artifact::read_artifact(&bytes) {
                        Ok(artifact::Artifact::Archive(ar)) => {
                            archives.push((path, ar));
                            needed_libs.push(name.clone());
                        }
                        Ok(artifact::Artifact::Linked(b)) => {
                            needed_libs.push(name.clone());
                            libs.push(LinkedLib {
                                namespace: name.clone(),
                                comt_defined: b.defined,
                            });
                        }
                        _ => {
                            // Opaque system library: provides its namespace.
                            needed_libs.push(name.clone());
                            libs.push(LinkedLib {
                                namespace: name.clone(),
                                comt_defined: Vec::new(),
                            });
                        }
                    }
                }
                _ => {}
            }
        }

        if objects.is_empty() && archives.is_empty() {
            return Err(CompileError::NoInputs);
        }

        // Implicit driver libraries.
        let mut implicit: Vec<&str> = vec!["c"];
        match language {
            Language::Cxx => implicit.push("stdc++"),
            Language::Fortran => implicit.push("gfortran"),
            Language::C => {}
        }
        if inv.openmp() || objects.iter().any(|o| o.opt.openmp) {
            implicit.push("gomp");
        }
        for ns in implicit {
            if !needed_libs.iter().any(|l| l == ns) {
                needed_libs.push(ns.to_string());
                libs.push(LinkedLib {
                    namespace: ns.to_string(),
                    comt_defined: Vec::new(),
                });
            }
        }

        // Symbol resolution with archive pull-in fixpoint.
        let mut included: Vec<ObjectFile> = objects;
        let mut defined: BTreeSet<String> = included
            .iter()
            .flat_map(|o| o.defined.iter().cloned())
            .collect();
        for lib in &libs {
            defined.extend(lib.comt_defined.iter().cloned());
        }
        let mut pulled: BTreeSet<(usize, usize)> = BTreeSet::new();
        loop {
            let undefined: BTreeSet<String> = included
                .iter()
                .flat_map(|o| o.undefined.iter().cloned())
                .filter(|s| !defined.contains(s))
                .collect();
            if undefined.is_empty() {
                break;
            }
            let mut progressed = false;
            for (ai, (_, ar)) in archives.iter().enumerate() {
                for (mi, (_, member)) in ar.members.iter().enumerate() {
                    if pulled.contains(&(ai, mi)) {
                        continue;
                    }
                    if member.defined.iter().any(|d| undefined.contains(d)) {
                        pulled.insert((ai, mi));
                        defined.extend(member.defined.iter().cloned());
                        included.push(member.clone());
                        progressed = true;
                    }
                }
            }
            if !progressed {
                // Whatever is still undefined cannot be resolved.
                let sym = undefined.into_iter().next().unwrap();
                let out_name = inv.output().unwrap_or("a.out").to_string();
                if !inv.is_shared() {
                    return Err(CompileError::Unresolved {
                        symbol: sym,
                        context: out_name,
                    });
                }
                break; // shared objects may keep undefined internals
            }
        }

        // External namespaced symbols must have a providing library.
        let externs: BTreeSet<String> = included
            .iter()
            .flat_map(|o| o.externs.iter().cloned())
            .collect();
        for ext in &externs {
            if let Some((ns, _)) = ext.split_once(':') {
                let have = libs.iter().any(|l| {
                    l.namespace == ns || l.comt_defined.iter().any(|d| d == ext)
                });
                if !have && !inv.is_shared() {
                    return Err(CompileError::Unresolved {
                        symbol: ext.clone(),
                        context: format!("missing -l{ns}"),
                    });
                }
            }
        }

        // Executables need an entry point.
        let all_defined: BTreeSet<String> = included
            .iter()
            .flat_map(|o| o.defined.iter().cloned())
            .collect();
        if !inv.is_shared() && !all_defined.contains("main") {
            return Err(CompileError::Unresolved {
                symbol: "main".into(),
                context: "(entry point)".into(),
            });
        }

        // Aggregate provenance conservatively.
        let mut kernel = KernelParams::default();
        for o in &included {
            kernel.absorb(&o.kernel);
        }
        let quality = included
            .iter()
            .map(|o| o.opt.codegen_quality)
            .fold(f64::INFINITY, f64::min);
        let vw = included.iter().map(|o| o.opt.vector_width).min().unwrap_or(2);
        let fast_math = included.iter().all(|o| o.opt.fast_math);
        let openmp = included.iter().any(|o| o.opt.openmp);
        let any_instrumented = included.iter().any(|o| o.opt.pgo == PgoMode::Instrumented);
        let all_optimized =
            !included.is_empty() && included.iter().all(|o| o.opt.pgo == PgoMode::Optimized);
        let pgo = if any_instrumented {
            PgoMode::Instrumented
        } else if all_optimized {
            PgoMode::Optimized
        } else {
            PgoMode::None
        };
        let lto_applied = inv.lto() && included.iter().all(|o| o.opt.lto_ir);
        let opt_level = included
            .iter()
            .map(|o| o.opt.opt_level.clone())
            .next()
            .unwrap_or_else(|| "0".to_string());
        let target = included.iter().find_map(|o| o.target.clone());

        needed_libs.dedup();
        let binary = LinkedBinary {
            kind: if inv.is_shared() {
                BinKind::SharedObject
            } else {
                BinKind::Executable
            },
            defined: all_defined.into_iter().collect(),
            externs: externs.into_iter().collect(),
            needed_libs,
            objects: included.iter().map(|o| o.source_path.clone()).collect(),
            target,
            opt: OptProvenance {
                toolchain: self.toolchain.name.clone(),
                codegen_quality: if quality.is_finite() { quality } else { 1.0 },
                opt_level,
                vector_width: vw,
                fast_math,
                openmp,
                lto_ir: false,
                pgo,
            },
            lto_applied,
            layout_optimized: false,
            kernel,
        };

        let out_path = comt_vfs::join(cwd, inv.output().unwrap_or("a.out"));
        fs.write_file_p(&out_path, Bytes::from(artifact::write_linked(&binary)), 0o755)
            .map_err(|e| CompileError::Fs(e.to_string()))?;
        outcome.outputs.push(out_path);
        Ok(outcome)
    }

    fn run_passthrough(
        &self,
        fs: &mut Vfs,
        cwd: &str,
        inv: &CompilerInvocation,
    ) -> Result<CommandOutcome, CompileError> {
        // `-E` / `-S`: read the sources; if `-o` is given, copy the first
        // source's text there (enough for build graphs that stash
        // preprocessed output).
        let mut outcome = CommandOutcome::default();
        let sources: Vec<&str> = inv
            .inputs()
            .iter()
            .filter(|(_, k)| k.is_source())
            .map(|(p, _)| *p)
            .collect();
        if sources.is_empty() {
            return Err(CompileError::NoInputs);
        }
        for s in &sources {
            let p = comt_vfs::join(cwd, s);
            if !fs.exists(&p) {
                return Err(CompileError::MissingInput(p));
            }
            outcome.inputs.push(p);
        }
        if let Some(out) = inv.output() {
            let text = fs
                .read(&outcome.inputs[0])
                .map_err(|e| CompileError::Fs(e.to_string()))?;
            let out_path = comt_vfs::join(cwd, out);
            fs.write_file_p(&out_path, text, 0o644)
                .map_err(|e| CompileError::Fs(e.to_string()))?;
            outcome.outputs.push(out_path);
        }
        Ok(outcome)
    }
}

/// Re-generate code for an IR-carrying object under a new toolchain and
/// flags — the LLVM-IR distribution alternative of paper §4.6. The IR
/// keeps symbols and kernel metadata; codegen provenance (toolchain,
/// quality, vector width, LTO/PGO state) is recomputed from the
/// transformed invocation. IR embeds the target triple, so re-codegen is
/// only possible for the ISA the IR was produced for.
pub fn recodegen(
    obj: &mut crate::artifact::ObjectFile,
    toolchain: &Toolchain,
    isa: &str,
    inv: &CompilerInvocation,
) -> Result<(), CompileError> {
    if let Some(t) = &obj.target {
        if t.isa != isa {
            return Err(CompileError::IsaMismatch {
                unit: obj.source_path.clone(),
                unit_isa: t.isa.clone(),
                target_isa: isa.to_string(),
            });
        }
    }
    let march = match inv.march() {
        Some("native") => toolchain.native_march(isa).to_string(),
        Some(m) => m.to_string(),
        None => obj
            .target
            .as_ref()
            .map(|t| t.march.clone())
            .unwrap_or_else(|| toolchain.default_march(isa).to_string()),
    };
    let opt_level = inv
        .opt_level()
        .unwrap_or_else(|| obj.opt.opt_level.clone());
    obj.opt.toolchain = toolchain.name.clone();
    obj.opt.codegen_quality = toolchain.codegen_quality * opt_level_factor(&opt_level);
    obj.opt.opt_level = opt_level;
    obj.opt.vector_width = vector_width(isa, &march);
    obj.opt.lto_ir = inv.lto() || obj.opt.lto_ir;
    obj.opt.fast_math = inv.fast_math() || obj.opt.fast_math;
    obj.opt.pgo = match inv.pgo() {
        PgoFlag::None => obj.opt.pgo,
        PgoFlag::Generate(_) => PgoMode::Instrumented,
        PgoFlag::Use(_) => PgoMode::Optimized,
    };
    obj.target = Some(TargetInfo {
        isa: isa.to_string(),
        march,
    });
    Ok(())
}

/// `-O` level → codegen speed factor.
fn opt_level_factor(level: &str) -> f64 {
    match level {
        "0" => 0.55,
        "1" | "" => 0.8,
        "2" => 1.0,
        "3" => 1.07,
        "fast" => 1.12,
        "s" | "z" | "g" => 0.9,
        _ => 1.0,
    }
}

/// x86-only and arm-only machine options; returns the offending spelling
/// when `token` does not exist on `isa`.
fn foreign_machine_flag(isa: &str, token: &str, value: Option<&str>) -> Option<String> {
    const X86_FLAGS: &[&str] = &["mavx2", "mavx512f", "msse4.2", "mfma", "m32", "m64"];
    const X86_MARCH: &[&str] = &[
        "x86-64", "x86-64-v3", "haswell", "icelake-server", "skylake-avx512", "sapphirerapids",
        "znver3", "znver4", "alderlake",
    ];
    const ARM_FLAGS: &[&str] = &["mfpu="];
    const ARM_MARCH: &[&str] = &["armv8-a", "armv8.2-a", "ft2000plus", "a64fx"];

    if matches!(token, "march=" | "mtune=" | "mcpu=") {
        let v = value.unwrap_or("");
        if v == "native" || v.is_empty() {
            return None;
        }
        let foreign = match isa {
            "aarch64" => X86_MARCH.contains(&v),
            "x86_64" => ARM_MARCH.contains(&v),
            _ => false,
        };
        return foreign.then(|| format!("-{token}{v}"));
    }
    let foreign = match isa {
        "aarch64" => X86_FLAGS.contains(&token),
        "x86_64" => ARM_FLAGS.contains(&token),
        _ => false,
    };
    foreign.then(|| format!("-{token}"))
}

/// Library namespace from a file name: `libm.so.6` → `m`.
fn lib_namespace(file_name: &str) -> String {
    let stem = file_name.strip_prefix("lib").unwrap_or(file_name);
    match stem.find(".so").or_else(|| stem.find(".a")) {
        Some(i) => stem[..i].to_string(),
        None => stem.to_string(),
    }
}

/// Search `-L` dirs then defaults for `-lname`. Accepts `libN.so`,
/// versioned `libN.so.X` (packages install sonames without dev symlinks in
/// this simulation), and `libN.a`; `-static` prefers the archive.
fn find_library(fs: &Vfs, dirs: &[String], name: &str, prefer_static: bool) -> Option<(String, Bytes)> {
    for dir in dirs {
        let so_exact = comt_vfs::join(dir, &format!("lib{name}.so"));
        let a_exact = comt_vfs::join(dir, &format!("lib{name}.a"));
        let mut candidates: Vec<String> = Vec::new();
        if prefer_static {
            candidates.push(a_exact.clone());
            candidates.push(so_exact.clone());
        } else {
            candidates.push(so_exact.clone());
        }
        // Versioned sonames.
        if let Ok(children) = fs.list_dir(dir) {
            let prefix = format!("lib{name}.so.");
            let mut versioned: Vec<String> = children
                .into_iter()
                .filter(|c| c.starts_with(&prefix))
                .map(|c| comt_vfs::join(dir, &c))
                .collect();
            versioned.sort();
            candidates.extend(versioned);
        }
        if !prefer_static {
            candidates.push(a_exact);
        }
        for c in candidates {
            if let Ok(bytes) = fs.read(&c) {
                return Some((c, bytes));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn base_fs() -> Vfs {
        let mut fs = Vfs::new();
        fs.mkdir_p("/work").unwrap();
        fs.mkdir_p("/usr/lib").unwrap();
        fs.mkdir_p("/usr/include").unwrap();
        fs.write_file("/usr/lib/libm.so.6", Bytes::from_static(b"ELF m"), 0o644)
            .unwrap();
        fs.write_file("/usr/lib/libc.so.6", Bytes::from_static(b"ELF c"), 0o644)
            .unwrap();
        fs.write_file(
            "/usr/lib/libstdc++.so.6",
            Bytes::from_static(b"ELF s"),
            0o644,
        )
        .unwrap();
        fs
    }

    fn write_src(fs: &mut Vfs, path: &str, text: &str) {
        fs.write_file_p(path, Bytes::from(text.to_string()), 0o644)
            .unwrap();
    }

    fn sim() -> SimCompiler {
        SimCompiler::new(Toolchain::distro_gcc(), "x86_64")
    }

    #[test]
    fn compile_records_reads_and_writes() {
        let mut fs = base_fs();
        write_src(
            &mut fs,
            "/work/a.c",
            "#pragma comt provides(main)\n#include \"a.h\"\nint main(){}\n",
        );
        write_src(&mut fs, "/work/a.h", "#include \"b.h\"\n");
        write_src(&mut fs, "/work/b.h", "// leaf header\n");
        let out = sim().run(&mut fs, "/work", &argv("gcc -O2 -c a.c")).unwrap();
        assert!(out.inputs.contains(&"/work/a.c".to_string()));
        assert!(out.inputs.contains(&"/work/a.h".to_string()));
        assert!(out.inputs.contains(&"/work/b.h".to_string()));
        assert_eq!(out.outputs, vec!["/work/a.o".to_string()]);
        let obj = artifact::read_object(&fs.read("/work/a.o").unwrap()).unwrap();
        assert_eq!(obj.defined, vec!["main"]);
        assert_eq!(obj.opt.opt_level, "2");
        assert_eq!(obj.opt.vector_width, 2); // default x86-64 march
    }

    #[test]
    fn march_native_widens_vectors() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/k.c", "#pragma comt provides(main)\n");
        sim()
            .run(&mut fs, "/work", &argv("gcc -O3 -march=native -c k.c"))
            .unwrap();
        let obj = artifact::read_object(&fs.read("/work/k.o").unwrap()).unwrap();
        assert_eq!(obj.target.unwrap().march, "icelake-server");
        assert_eq!(obj.opt.vector_width, 8);
        assert!(obj.opt.codegen_quality > 1.0);
    }

    #[test]
    fn isa_mismatch_rejected() {
        let mut fs = base_fs();
        write_src(
            &mut fs,
            "/work/simd.c",
            "#pragma comt provides(main)\n#pragma comt isa(x86_64)\n",
        );
        let arm = SimCompiler::new(Toolchain::distro_gcc(), "aarch64");
        let err = arm.run(&mut fs, "/work", &argv("gcc -c simd.c")).unwrap_err();
        assert!(matches!(err, CompileError::IsaMismatch { .. }));
    }

    #[test]
    fn vendor_toolchain_rejects_foreign_isa() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/a.c", "#pragma comt provides(main)\n");
        let cross = SimCompiler::new(Toolchain::vendor_x86(), "aarch64");
        let err = cross.run(&mut fs, "/work", &argv("vcc -c a.c")).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedIsa { .. }));
    }

    #[test]
    fn link_pulls_archive_members_on_demand() {
        let mut fs = base_fs();
        write_src(
            &mut fs,
            "/work/main.c",
            "#pragma comt provides(main)\n#pragma comt requires(used)\n",
        );
        write_src(&mut fs, "/work/used.c", "#pragma comt provides(used)\n#pragma comt requires(dep)\n");
        write_src(&mut fs, "/work/dep.c", "#pragma comt provides(dep)\n");
        write_src(&mut fs, "/work/unused.c", "#pragma comt provides(unused)\n");
        let s = sim();
        for f in ["main.c", "used.c", "dep.c", "unused.c"] {
            s.run(&mut fs, "/work", &argv(&format!("gcc -c {f}"))).unwrap();
        }
        s.run(&mut fs, "/work", &argv("ar rcs libapp.a used.o dep.o unused.o"))
            .unwrap();
        s.run(&mut fs, "/work", &argv("gcc main.o -L. -lapp -o app"))
            .unwrap();
        let bin = artifact::read_linked(&fs.read("/work/app").unwrap()).unwrap();
        // Pull-in semantics: used + transitive dep linked, unused not.
        assert!(bin.objects.iter().any(|o| o.ends_with("used.c")));
        assert!(bin.objects.iter().any(|o| o.ends_with("dep.c")));
        assert!(!bin.objects.iter().any(|o| o.ends_with("unused.c")));
    }

    #[test]
    fn unresolved_symbol_fails_link() {
        let mut fs = base_fs();
        write_src(
            &mut fs,
            "/work/main.c",
            "#pragma comt provides(main)\n#pragma comt requires(ghost)\n",
        );
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc -c main.c")).unwrap();
        let err = s
            .run(&mut fs, "/work", &argv("gcc main.o -o app"))
            .unwrap_err();
        assert!(matches!(err, CompileError::Unresolved { symbol, .. } if symbol == "ghost"));
    }

    #[test]
    fn missing_extern_library_fails() {
        let mut fs = base_fs();
        write_src(
            &mut fs,
            "/work/main.c",
            "#pragma comt provides(main)\n#pragma comt extern(openblas:dgemm)\n",
        );
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc -c main.c")).unwrap();
        let err = s
            .run(&mut fs, "/work", &argv("gcc main.o -o app"))
            .unwrap_err();
        assert!(
            matches!(err, CompileError::Unresolved { ref symbol, .. } if symbol == "openblas:dgemm"),
            "{err:?}"
        );
    }

    #[test]
    fn extern_resolved_by_versioned_soname() {
        let mut fs = base_fs();
        write_src(
            &mut fs,
            "/work/main.c",
            "#pragma comt provides(main)\n#pragma comt extern(m:sqrt)\n",
        );
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc -c main.c")).unwrap();
        let out = s
            .run(&mut fs, "/work", &argv("gcc main.o -lm -o app"))
            .unwrap();
        assert!(out.inputs.contains(&"/usr/lib/libm.so.6".to_string()));
    }

    #[test]
    fn missing_library_reported() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/main.c", "#pragma comt provides(main)\n");
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc -c main.c")).unwrap();
        let err = s
            .run(&mut fs, "/work", &argv("gcc main.o -lnope -o app"))
            .unwrap_err();
        assert!(matches!(err, CompileError::MissingLibrary(n) if n == "nope"));
    }

    #[test]
    fn executable_requires_main() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/lib.c", "#pragma comt provides(helper)\n");
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc -c lib.c")).unwrap();
        let err = s.run(&mut fs, "/work", &argv("gcc lib.o -o app")).unwrap_err();
        assert!(matches!(err, CompileError::Unresolved { symbol, .. } if symbol == "main"));
        // …but a shared object is fine.
        s.run(&mut fs, "/work", &argv("gcc -shared lib.o -o libhelper.so"))
            .unwrap();
        let so = artifact::read_linked(&fs.read("/work/libhelper.so").unwrap()).unwrap();
        assert_eq!(so.kind, BinKind::SharedObject);
    }

    #[test]
    fn cxx_driver_adds_stdcxx() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/m.cc", "#pragma comt provides(main)\n");
        let s = sim();
        s.run(&mut fs, "/work", &argv("g++ m.cc -o app")).unwrap();
        let bin = artifact::read_linked(&fs.read("/work/app").unwrap()).unwrap();
        assert!(bin.needed_libs.contains(&"stdc++".to_string()));
        assert!(bin.needed_libs.contains(&"c".to_string()));
    }

    #[test]
    fn mpicc_wrapper_links_mpi() {
        let mut fs = base_fs();
        fs.write_file("/usr/lib/libmpi.so.12", Bytes::from_static(b"ELF mpi"), 0o644)
            .unwrap();
        write_src(
            &mut fs,
            "/work/m.c",
            "#pragma comt provides(main)\n#pragma comt extern(mpi:MPI_Init)\n",
        );
        let s = sim();
        s.run(&mut fs, "/work", &argv("mpicc m.c -o app")).unwrap();
        let bin = artifact::read_linked(&fs.read("/work/app").unwrap()).unwrap();
        assert!(bin.needed_libs.contains(&"mpi".to_string()));
    }

    #[test]
    fn link_directly_from_sources() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/a.c", "#pragma comt provides(main)\n#pragma comt kernel(flops=5)\n");
        write_src(&mut fs, "/work/b.c", "#pragma comt provides(aux)\n#pragma comt kernel(flops=7)\n");
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc a.c b.c -o app")).unwrap();
        let bin = artifact::read_linked(&fs.read("/work/app").unwrap()).unwrap();
        assert_eq!(bin.kernel.get("flops"), 12.0);
        assert_eq!(bin.objects.len(), 2);
    }

    #[test]
    fn lto_applied_only_with_ir_objects() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/a.c", "#pragma comt provides(main)\n");
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc -flto -c a.c")).unwrap();
        s.run(&mut fs, "/work", &argv("gcc -flto a.o -o app")).unwrap();
        let bin = artifact::read_linked(&fs.read("/work/app").unwrap()).unwrap();
        assert!(bin.lto_applied);

        // Without IR in the object, link-time -flto does nothing.
        s.run(&mut fs, "/work", &argv("gcc -c a.c")).unwrap();
        s.run(&mut fs, "/work", &argv("gcc -flto a.o -o app2")).unwrap();
        let bin2 = artifact::read_linked(&fs.read("/work/app2").unwrap()).unwrap();
        assert!(!bin2.lto_applied);
    }

    #[test]
    fn pgo_instrumented_then_optimized() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/a.c", "#pragma comt provides(main)\n");
        let s = sim();
        s.run(&mut fs, "/work", &argv("gcc -fprofile-generate -c a.c"))
            .unwrap();
        s.run(&mut fs, "/work", &argv("gcc a.o -o app")).unwrap();
        let bin = artifact::read_linked(&fs.read("/work/app").unwrap()).unwrap();
        assert_eq!(bin.opt.pgo, PgoMode::Instrumented);

        // -fprofile-use requires the profile to exist.
        let err = s
            .run(&mut fs, "/work", &argv("gcc -fprofile-use=app.prof -c a.c"))
            .unwrap_err();
        assert!(matches!(err, CompileError::MissingProfile(_)));
        write_src(&mut fs, "/work/app.prof", "hot:main 99\n");
        s.run(&mut fs, "/work", &argv("gcc -fprofile-use=app.prof -c a.c"))
            .unwrap();
        s.run(&mut fs, "/work", &argv("gcc a.o -o app")).unwrap();
        let bin2 = artifact::read_linked(&fs.read("/work/app").unwrap()).unwrap();
        assert_eq!(bin2.opt.pgo, PgoMode::Optimized);
    }

    #[test]
    fn multiple_sources_with_output_rejected() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/a.c", "");
        write_src(&mut fs, "/work/b.c", "");
        let err = sim()
            .run(&mut fs, "/work", &argv("gcc -c a.c b.c -o x.o"))
            .unwrap_err();
        assert_eq!(err, CompileError::MultipleSourcesWithOutput);
    }

    #[test]
    fn ar_requires_objects() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/notobj.o", "just text");
        let err = sim()
            .run(&mut fs, "/work", &argv("ar rcs lib.a notobj.o"))
            .unwrap_err();
        assert!(matches!(err, CompileError::BadArtifact(_)));
    }

    #[test]
    fn quality_reflects_opt_level_and_toolchain() {
        let mut fs = base_fs();
        write_src(&mut fs, "/work/a.c", "#pragma comt provides(main)\n");
        let gcc = sim();
        gcc.run(&mut fs, "/work", &argv("gcc -O0 -c a.c -o o0.o")).unwrap();
        gcc.run(&mut fs, "/work", &argv("gcc -O3 -c a.c -o o3.o")).unwrap();
        let q0 = artifact::read_object(&fs.read("/work/o0.o").unwrap()).unwrap().opt.codegen_quality;
        let q3 = artifact::read_object(&fs.read("/work/o3.o").unwrap()).unwrap().opt.codegen_quality;
        assert!(q3 > q0);

        let vendor = SimCompiler::new(Toolchain::vendor_x86(), "x86_64");
        vendor.run(&mut fs, "/work", &argv("vcc -O3 -c a.c -o v3.o")).unwrap();
        let qv = artifact::read_object(&fs.read("/work/v3.o").unwrap()).unwrap().opt.codegen_quality;
        assert!(qv > q3);
    }

    #[test]
    fn lib_namespace_extraction() {
        assert_eq!(lib_namespace("libm.so.6"), "m");
        assert_eq!(lib_namespace("libopenblas.so.0"), "openblas");
        assert_eq!(lib_namespace("libapp.a"), "app");
        assert_eq!(lib_namespace("libstdc++.so.6"), "stdc++");
    }
}
