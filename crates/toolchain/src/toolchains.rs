//! Toolchain personalities.
//!
//! A [`Toolchain`] bundles the program names it answers to, per-ISA default
//! and native `-march` values, and a codegen-quality factor used by the
//! performance model. The quality ordering encodes the paper's observation
//! that the x86 distro toolchain is "more mature" (its defaults already
//! resemble LTO/PGO output) while the AArch64 system benefits more from the
//! vendor compiler (Figure 3: `cxxo` is worth more on ARM).

/// Identity of a toolchain family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolchainKind {
    /// The distro's default GCC — what generic user-side images use.
    DistroGcc,
    /// Free LLVM/Clang — the artifact-evaluation substitute toolchain.
    Llvm,
    /// The x86-64 system's proprietary vendor compiler (ICC-like).
    VendorX86,
    /// The AArch64 system's proprietary vendor compiler.
    VendorArm,
}

/// A toolchain personality.
#[derive(Debug, Clone, PartialEq)]
pub struct Toolchain {
    pub kind: ToolchainKind,
    /// Identity string recorded in artifacts (e.g. `gcc-13`).
    pub name: String,
    /// C compiler program names.
    pub cc_names: Vec<String>,
    /// C++ compiler program names.
    pub cxx_names: Vec<String>,
    /// Fortran compiler program names.
    pub fc_names: Vec<String>,
    /// Codegen quality multiplier (distro GCC = 1.0).
    pub codegen_quality: f64,
    /// ISAs this toolchain can target (vendor compilers are single-ISA;
    /// that restriction is what the cross-ISA workflow must respect).
    pub supported_isas: Vec<String>,
}

impl Toolchain {
    pub fn distro_gcc() -> Self {
        Toolchain {
            kind: ToolchainKind::DistroGcc,
            name: "gcc-13".into(),
            cc_names: strv(&["gcc", "cc", "gcc-13"]),
            cxx_names: strv(&["g++", "c++", "g++-13"]),
            fc_names: strv(&["gfortran", "gfortran-13"]),
            codegen_quality: 1.0,
            supported_isas: strv(&["x86_64", "aarch64"]),
        }
    }

    pub fn llvm() -> Self {
        Toolchain {
            kind: ToolchainKind::Llvm,
            name: "llvm-18".into(),
            cc_names: strv(&["clang", "clang-18"]),
            cxx_names: strv(&["clang++", "clang++-18"]),
            fc_names: strv(&["flang", "flang-new"]),
            codegen_quality: 1.06,
            supported_isas: strv(&["x86_64", "aarch64"]),
        }
    }

    pub fn vendor_x86() -> Self {
        Toolchain {
            kind: ToolchainKind::VendorX86,
            name: "vendor-x86".into(),
            cc_names: strv(&["vcc", "icx"]),
            cxx_names: strv(&["vcx", "icpx"]),
            fc_names: strv(&["vfc", "ifx"]),
            codegen_quality: 1.17,
            supported_isas: strv(&["x86_64"]),
        }
    }

    pub fn vendor_arm() -> Self {
        Toolchain {
            kind: ToolchainKind::VendorArm,
            name: "vendor-arm".into(),
            cc_names: strv(&["ftcc"]),
            cxx_names: strv(&["ftcxx"]),
            fc_names: strv(&["ftfc"]),
            codegen_quality: 1.26,
            supported_isas: strv(&["aarch64"]),
        }
    }

    /// The toolchain for a target system's native stack.
    pub fn vendor_for(isa: &str) -> Self {
        match isa {
            "aarch64" => Self::vendor_arm(),
            _ => Self::vendor_x86(),
        }
    }

    /// Default `-march` when none is given.
    pub fn default_march(&self, isa: &str) -> &'static str {
        match isa {
            "aarch64" => "armv8-a",
            _ => "x86-64",
        }
    }

    /// What `-march=native` resolves to on the named ISA's target machine.
    pub fn native_march(&self, isa: &str) -> &'static str {
        match isa {
            "aarch64" => "ft2000plus",
            _ => "icelake-server",
        }
    }

    /// Language a program name compiles, if it belongs to this toolchain.
    /// MPI wrappers (`mpicc`/`mpicxx`/`mpif90`) map onto the underlying
    /// language and are accepted for every toolchain.
    pub fn language_of(&self, program: &str) -> Option<Language> {
        let base = program.rsplit('/').next().unwrap_or(program);
        if self.cc_names.iter().any(|n| n == base) || base == "mpicc" {
            Some(Language::C)
        } else if self.cxx_names.iter().any(|n| n == base) || base == "mpicxx" || base == "mpic++" {
            Some(Language::Cxx)
        } else if self.fc_names.iter().any(|n| n == base) || base == "mpif90" || base == "mpifort" {
            Some(Language::Fortran)
        } else {
            None
        }
    }

    /// Whether a program name is the archiver.
    pub fn is_archiver(program: &str) -> bool {
        let base = program.rsplit('/').next().unwrap_or(program);
        base == "ar"
    }

    /// Whether a program name is `ranlib` (a no-op for COMT archives).
    pub fn is_ranlib(program: &str) -> bool {
        let base = program.rsplit('/').next().unwrap_or(program);
        base == "ranlib"
    }
}

/// Source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    C,
    Cxx,
    Fortran,
}

impl Language {
    pub fn as_str(&self) -> &'static str {
        match self {
            Language::C => "c",
            Language::Cxx => "c++",
            Language::Fortran => "fortran",
        }
    }
}

/// Effective SIMD width in f64 lanes for a `-march` value.
pub fn vector_width(isa: &str, march: &str) -> u32 {
    match isa {
        "x86_64" => match march {
            // AVX-512 targets.
            "icelake-server" | "skylake-avx512" | "sapphirerapids" | "znver4" => 8,
            // AVX2 targets.
            "haswell" | "x86-64-v3" | "znver3" | "alderlake" => 4,
            // Baseline SSE2.
            _ => 2,
        },
        "aarch64" => match march {
            // SVE parts are wider still.
            "a64fx" => 8,
            // The FT-2000+ vendor toolchain actually fills both ASIMD
            // pipes; generic armv8-a codegen does not.
            "ft2000plus" => 3,
            _ => 2,
        },
        _ => 1,
    }
}

fn strv(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn language_dispatch() {
        let g = Toolchain::distro_gcc();
        assert_eq!(g.language_of("gcc"), Some(Language::C));
        assert_eq!(g.language_of("/usr/bin/g++-13"), Some(Language::Cxx));
        assert_eq!(g.language_of("gfortran"), Some(Language::Fortran));
        assert_eq!(g.language_of("mpicc"), Some(Language::C));
        assert_eq!(g.language_of("mpicxx"), Some(Language::Cxx));
        assert_eq!(g.language_of("clang"), None);
        let l = Toolchain::llvm();
        assert_eq!(l.language_of("clang++"), Some(Language::Cxx));
    }

    #[test]
    fn archiver_names() {
        assert!(Toolchain::is_archiver("/usr/bin/ar"));
        assert!(Toolchain::is_ranlib("ranlib"));
        assert!(!Toolchain::is_archiver("tar"));
    }

    #[test]
    fn quality_ordering_matches_paper_story() {
        let gcc = Toolchain::distro_gcc().codegen_quality;
        let llvm = Toolchain::llvm().codegen_quality;
        let vx = Toolchain::vendor_x86().codegen_quality;
        let va = Toolchain::vendor_arm().codegen_quality;
        assert!(gcc < llvm && llvm < vx && vx < va);
    }

    #[test]
    fn vendor_single_isa() {
        assert_eq!(Toolchain::vendor_x86().supported_isas, vec!["x86_64"]);
        assert_eq!(Toolchain::vendor_for("aarch64").kind, ToolchainKind::VendorArm);
    }

    #[test]
    fn vector_widths() {
        assert_eq!(vector_width("x86_64", "x86-64"), 2);
        assert_eq!(vector_width("x86_64", "haswell"), 4);
        assert_eq!(vector_width("x86_64", "icelake-server"), 8);
        assert_eq!(vector_width("aarch64", "armv8-a"), 2);
        assert_eq!(vector_width("aarch64", "ft2000plus"), 3);
        assert_eq!(vector_width("aarch64", "a64fx"), 8);
    }
}
