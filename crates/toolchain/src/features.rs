//! Architecture×feature matrix — the queryable table behind `comt audit`.
//!
//! The paper's adaptability story assumes someone knows which ISA features a
//! deployment fleet actually has; this module is that knowledge, modeled on
//! the gccarch idea: a real table mapping micro-architecture levels
//! (`x86-64-v1..v4`, AArch64 `armv8.x` tiers, concrete CPU names) to the
//! feature sets they guarantee, plus `implied_by` / `conflicts_with` edges
//! between individual feature flags.
//!
//! Two consumers:
//!
//! * [`arch_features`] / [`target_arch`] answer "what does `-march=X` (or a
//!   declared deployment target) guarantee?" — used by the audit pass and by
//!   the multi-ISA fan-out planned in ROADMAP item 3.
//! * [`fold_invocation`] performs the flow-sensitive left-to-right fold of a
//!   parsed [`CompilerInvocation`]'s machine flags (`-march=`/`-mcpu=` reset
//!   the base, `-m<feature>`/`-mno-<feature>` refine it, implications are
//!   closed at every step) into a [`TargetConfig`] — the *effective* target
//!   configuration of one compile step.

use crate::invocation::{Arg, CompilerInvocation};
use crate::options::OptionCategory;
use std::collections::BTreeSet;

/// A set of ISA feature names (entries of the [`FEATURES`] table).
pub type FeatureSet = BTreeSet<&'static str>;

/// One row of the feature table.
#[derive(Debug, Clone, Copy)]
pub struct FeatureInfo {
    /// Canonical feature name as spelled in `-m<name>` (x86) or a `+<name>`
    /// march suffix (AArch64).
    pub name: &'static str,
    /// The ISA the feature belongs to (`x86_64` or `aarch64`).
    pub isa: &'static str,
    /// Features this one directly implies (enabling `avx2` enables `avx`).
    pub implies: &'static [&'static str],
}

/// Every feature the matrix knows about. Implication edges are direct; use
/// [`implied_by`] for the edge list and the closure helpers for transitive
/// queries.
pub const FEATURES: &[FeatureInfo] = &[
    // x86-64 SIMD ladder.
    FeatureInfo { name: "sse2", isa: "x86_64", implies: &[] },
    FeatureInfo { name: "sse3", isa: "x86_64", implies: &["sse2"] },
    FeatureInfo { name: "ssse3", isa: "x86_64", implies: &["sse3"] },
    FeatureInfo { name: "sse4.1", isa: "x86_64", implies: &["ssse3"] },
    FeatureInfo { name: "sse4.2", isa: "x86_64", implies: &["sse4.1"] },
    FeatureInfo { name: "avx", isa: "x86_64", implies: &["sse4.2"] },
    FeatureInfo { name: "avx2", isa: "x86_64", implies: &["avx"] },
    FeatureInfo { name: "avx512f", isa: "x86_64", implies: &["avx2"] },
    FeatureInfo { name: "avx512cd", isa: "x86_64", implies: &["avx512f"] },
    FeatureInfo { name: "avx512bw", isa: "x86_64", implies: &["avx512f"] },
    FeatureInfo { name: "avx512dq", isa: "x86_64", implies: &["avx512f"] },
    FeatureInfo { name: "avx512vl", isa: "x86_64", implies: &["avx512f"] },
    // x86-64 scalar/bit-manipulation extensions.
    FeatureInfo { name: "fma", isa: "x86_64", implies: &["avx"] },
    FeatureInfo { name: "f16c", isa: "x86_64", implies: &["avx"] },
    FeatureInfo { name: "popcnt", isa: "x86_64", implies: &[] },
    FeatureInfo { name: "bmi1", isa: "x86_64", implies: &[] },
    FeatureInfo { name: "bmi2", isa: "x86_64", implies: &[] },
    FeatureInfo { name: "lzcnt", isa: "x86_64", implies: &[] },
    FeatureInfo { name: "movbe", isa: "x86_64", implies: &[] },
    // ABI width (the `-m32`/`-m64` pair; mutually exclusive).
    FeatureInfo { name: "abi32", isa: "x86_64", implies: &[] },
    FeatureInfo { name: "abi64", isa: "x86_64", implies: &[] },
    // AArch64.
    FeatureInfo { name: "neon", isa: "aarch64", implies: &[] },
    FeatureInfo { name: "lse", isa: "aarch64", implies: &[] },
    FeatureInfo { name: "fp16", isa: "aarch64", implies: &["neon"] },
    FeatureInfo { name: "dotprod", isa: "aarch64", implies: &["neon"] },
    FeatureInfo { name: "crypto", isa: "aarch64", implies: &["neon"] },
    FeatureInfo { name: "sve", isa: "aarch64", implies: &["neon"] },
    FeatureInfo { name: "sve2", isa: "aarch64", implies: &["sve"] },
];

/// Explicitly conflicting feature pairs (beyond the implicit cross-ISA
/// conflicts). Order within a pair is irrelevant.
pub const CONFLICT_PAIRS: &[(&str, &str)] = &[("abi32", "abi64")];

// Shared per-tier feature lists (pre-closure). The x86-64-vN levels are the
// psABI micro-architecture levels; CPU names map onto the level they sit in.
const X86_V1: &[&str] = &["sse2"];
const X86_V2: &[&str] = &["sse4.2", "popcnt"];
const X86_V3: &[&str] = &[
    "sse4.2", "popcnt", "avx2", "bmi1", "bmi2", "f16c", "fma", "lzcnt", "movbe",
];
const X86_V4: &[&str] = &[
    "sse4.2", "popcnt", "avx2", "bmi1", "bmi2", "f16c", "fma", "lzcnt", "movbe", "avx512f",
    "avx512bw", "avx512cd", "avx512dq", "avx512vl",
];
const ARM_V8: &[&str] = &["neon"];
const ARM_V8_1: &[&str] = &["neon", "lse"];
const ARM_V8_2: &[&str] = &["neon", "lse", "fp16"];
const ARM_V8_4: &[&str] = &["neon", "lse", "fp16", "dotprod"];

/// One row of the architecture table: a `-march=` value (or deployment
/// target name) and the features it guarantees.
#[derive(Debug, Clone, Copy)]
pub struct ArchEntry {
    pub name: &'static str,
    pub isa: &'static str,
    /// Guaranteed features, pre-closure ([`arch_features`] closes them).
    pub features: &'static [&'static str],
}

/// The architecture table. Micro-architecture levels first, then the CPU
/// names the workload catalog and adapters actually emit.
pub const ARCHES: &[ArchEntry] = &[
    ArchEntry { name: "x86-64", isa: "x86_64", features: X86_V1 },
    ArchEntry { name: "x86-64-v1", isa: "x86_64", features: X86_V1 },
    ArchEntry { name: "x86-64-v2", isa: "x86_64", features: X86_V2 },
    ArchEntry { name: "x86-64-v3", isa: "x86_64", features: X86_V3 },
    ArchEntry { name: "x86-64-v4", isa: "x86_64", features: X86_V4 },
    ArchEntry { name: "nehalem", isa: "x86_64", features: X86_V2 },
    ArchEntry { name: "westmere", isa: "x86_64", features: X86_V2 },
    ArchEntry { name: "haswell", isa: "x86_64", features: X86_V3 },
    ArchEntry { name: "skylake", isa: "x86_64", features: X86_V3 },
    ArchEntry { name: "znver3", isa: "x86_64", features: X86_V3 },
    ArchEntry { name: "skylake-avx512", isa: "x86_64", features: X86_V4 },
    ArchEntry { name: "icelake-server", isa: "x86_64", features: X86_V4 },
    ArchEntry { name: "sapphirerapids", isa: "x86_64", features: X86_V4 },
    ArchEntry { name: "znver4", isa: "x86_64", features: X86_V4 },
    ArchEntry { name: "armv8-a", isa: "aarch64", features: ARM_V8 },
    ArchEntry { name: "armv8.1-a", isa: "aarch64", features: ARM_V8_1 },
    ArchEntry { name: "armv8.2-a", isa: "aarch64", features: ARM_V8_2 },
    ArchEntry { name: "armv8.3-a", isa: "aarch64", features: ARM_V8_2 },
    ArchEntry { name: "armv8.4-a", isa: "aarch64", features: ARM_V8_4 },
    ArchEntry { name: "armv8.5-a", isa: "aarch64", features: ARM_V8_4 },
    ArchEntry { name: "ft2000plus", isa: "aarch64", features: ARM_V8 },
    ArchEntry { name: "neoverse-n1", isa: "aarch64", features: ARM_V8_2 },
    ArchEntry {
        name: "a64fx",
        isa: "aarch64",
        features: &["neon", "lse", "fp16", "sve"],
    },
    ArchEntry {
        name: "neoverse-v1",
        isa: "aarch64",
        features: &["neon", "lse", "fp16", "dotprod", "sve"],
    },
];

/// Normalize the ISA spellings used across the repo (`x86_64`, `x86-64`,
/// `amd64` / `aarch64`, `arm64`) to the two canonical tags.
pub fn normalize_isa(isa: &str) -> &str {
    match isa {
        "x86_64" | "x86-64" | "amd64" => "x86_64",
        "aarch64" | "arm64" => "aarch64",
        other => other,
    }
}

/// The implicit `-march` base when a command line carries none.
pub fn default_march(isa: &str) -> Option<&'static str> {
    match normalize_isa(isa) {
        "x86_64" => Some("x86-64"),
        "aarch64" => Some("armv8-a"),
        _ => None,
    }
}

fn feature_info(name: &str) -> Option<&'static FeatureInfo> {
    FEATURES.iter().find(|f| f.name == name)
}

/// The ISA a feature belongs to, if known.
pub fn feature_isa(name: &str) -> Option<&'static str> {
    feature_info(name).map(|f| f.isa)
}

/// Direct implication edges of a feature (`implied_by("avx2") == ["avx"]`).
pub fn implied_by(name: &str) -> &'static [&'static str] {
    feature_info(name).map(|f| f.implies).unwrap_or(&[])
}

/// A feature plus everything it transitively implies.
pub fn feature_closure(name: &str) -> FeatureSet {
    let mut out = FeatureSet::new();
    let mut stack = vec![name];
    while let Some(f) = stack.pop() {
        if let Some(info) = feature_info(f) {
            if out.insert(info.name) {
                stack.extend(info.implies);
            }
        }
    }
    out
}

fn close(features: &mut FeatureSet) {
    let seeds: Vec<&'static str> = features.iter().copied().collect();
    for f in seeds {
        features.extend(feature_closure(f));
    }
}

/// Whether two features cannot coexist in one effective configuration:
/// either an explicit [`CONFLICT_PAIRS`] edge, or the features belong to
/// different ISAs.
pub fn conflicts_with(a: &str, b: &str) -> bool {
    if a == b {
        return false;
    }
    if CONFLICT_PAIRS
        .iter()
        .any(|(x, y)| (*x == a && *y == b) || (*x == b && *y == a))
    {
        return true;
    }
    match (feature_isa(a), feature_isa(b)) {
        (Some(ia), Some(ib)) => ia != ib,
        _ => false,
    }
}

/// The implication-closed feature set guaranteed by `-march=<march>` on
/// `isa`. AArch64 `+ext` / `+noext` suffixes (`armv8.2-a+sve`) are folded
/// in. `None` when the arch name is unknown or belongs to a different ISA.
///
/// x86-64 entries always include both ABI-width features — a 64-bit CPU
/// runs 32-bit objects, so ABI width never causes a target mismatch on its
/// own (only an intra-invocation `-m32`/`-m64` conflict).
pub fn arch_features(isa: &str, march: &str) -> Option<FeatureSet> {
    let isa = normalize_isa(isa);
    let mut parts = march.split('+');
    let base = parts.next().unwrap_or(march);
    let entry = ARCHES.iter().find(|e| e.name == base && e.isa == isa)?;
    let mut set: FeatureSet = entry.features.iter().copied().collect();
    for ext in parts {
        // GCC spells NEON as `simd` in march suffixes.
        fn alias(name: &str) -> &str {
            if name == "simd" {
                "neon"
            } else {
                name
            }
        }
        let (name, enable) = match ext.strip_prefix("no") {
            Some(rest) if feature_info(alias(rest)).is_some() => (alias(rest), false),
            _ => (alias(ext), true),
        };
        let info = feature_info(name)?;
        if enable {
            set.insert(info.name);
        } else {
            set.remove(info.name);
        }
    }
    close(&mut set);
    if isa == "x86_64" {
        set.insert("abi32");
        set.insert("abi64");
    }
    Some(set)
}

/// Resolve a declared deployment target name (`x86-64-v2`, `armv8.2-a+sve`,
/// a CPU name) to its ISA and implication-closed feature set.
pub fn target_arch(target: &str) -> Option<(&'static str, FeatureSet)> {
    let base = target.split('+').next().unwrap_or(target);
    let entry = ARCHES.iter().find(|e| e.name == base)?;
    arch_features(entry.isa, target).map(|set| (entry.isa, set))
}

/// Every target name the matrix accepts (for CLI error messages).
pub fn known_targets() -> Vec<&'static str> {
    ARCHES.iter().map(|e| e.name).collect()
}

/// Map a parsed machine-flag token (`mavx512f`, `mno-avx`, `m32`) to the
/// feature it toggles. Valued machine options (`march=`, `mtune=`,
/// `mprefer-vector-width=`) and unknown `-m` flags return `None`.
pub fn flag_feature(token: &str) -> Option<(&'static str, bool)> {
    if token.contains('=') {
        return None;
    }
    match token {
        "m32" => return Some(("abi32", true)),
        "m64" => return Some(("abi64", true)),
        _ => {}
    }
    let body = token.strip_prefix('m')?;
    let (name, enable) = match body.strip_prefix("no-") {
        Some(rest) => (rest, false),
        None => (body, true),
    };
    feature_info(name).map(|info| (info.name, enable))
}

/// One explicit feature toggle seen while folding an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureEvent {
    /// The flag spelling as written (`-mavx512f`, `-mno-avx`, `-m32`).
    pub flag: String,
    /// The canonical feature it toggles.
    pub feature: &'static str,
    pub enabled: bool,
}

/// A pair of flags that fight within one invocation (last-one-wins
/// ambiguity or a [`conflicts_with`] edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagConflict {
    pub first: String,
    pub second: String,
}

/// The effective target configuration of one compile step, produced by
/// [`fold_invocation`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TargetConfig {
    /// Canonical ISA the fold ran under.
    pub isa: String,
    /// Last `-march=`/`-mcpu=` value, if any.
    pub march: Option<String>,
    /// Last `-mtune=` value, if any.
    pub tune: Option<String>,
    /// The base arch is `native` — unresolved until a host (or declared
    /// target) is chosen.
    pub native: bool,
    /// The tune target is `native` — like [`Self::native`], it pins the
    /// invocation to the build host and stays unresolved until one is
    /// chosen, but it never changes the feature set.
    pub tune_native: bool,
    /// A `-march`/`-mcpu` value the matrix does not know.
    pub unknown_march: Option<String>,
    /// Implication-closed effective feature set.
    pub enabled: FeatureSet,
    /// Explicit `-m<feature>` toggles in command-line order (march resets
    /// the enabled set but never erases this log).
    pub requested: Vec<FeatureEvent>,
    /// Intra-invocation conflicts detected during the fold.
    pub conflicts: Vec<FlagConflict>,
}

impl TargetConfig {
    /// Features explicitly requested (enabled and never re-disabled later).
    pub fn explicit_enables(&self) -> FeatureSet {
        let mut out = FeatureSet::new();
        for ev in &self.requested {
            if ev.enabled {
                out.insert(ev.feature);
            } else {
                out.remove(ev.feature);
            }
        }
        out
    }
}

fn base_features(isa: &str, march: Option<&str>) -> FeatureSet {
    march
        .or_else(|| default_march(isa))
        .and_then(|m| arch_features(isa, m))
        .unwrap_or_default()
}

/// Apply explicit feature toggles, in order, on top of a base set:
/// enabling adds the implication closure (and evicts conflicting
/// features), disabling removes the feature and everything that needs it.
pub fn apply_events(base: &FeatureSet, events: &[FeatureEvent]) -> FeatureSet {
    let mut set = base.clone();
    for ev in events {
        if ev.enabled {
            let losers: Vec<&'static str> = set
                .iter()
                .copied()
                .filter(|g| conflicts_with(g, ev.feature))
                .collect();
            for g in losers {
                set.remove(g);
            }
            set.extend(feature_closure(ev.feature));
        } else {
            let dependents: Vec<&'static str> = set
                .iter()
                .copied()
                .filter(|g| feature_closure(g).contains(ev.feature))
                .collect();
            for g in dependents {
                set.remove(g);
            }
        }
    }
    set
}

/// Fold a parsed invocation's machine flags left-to-right into its
/// effective [`TargetConfig`].
///
/// GCC semantics: the **base** obeys last-`-march`/`-mcpu`-wins, while
/// explicit `-m<feature>`/`-mno-<feature>` toggles always beat the march
/// defaults — so the fold resolves the final base first and then applies
/// the toggle sequence (in order, with implication closure) on top of it.
/// `-mtune=` is recorded but never changes the feature set. Conflicts
/// (same feature toggled both ways, or a [`conflicts_with`] pair both
/// enabled) are collected, not resolved — the audit pass turns them into
/// COMT-A003.
pub fn fold_invocation(isa: &str, inv: &CompilerInvocation) -> TargetConfig {
    let isa = normalize_isa(isa).to_string();
    let mut cfg = TargetConfig {
        isa: isa.clone(),
        ..TargetConfig::default()
    };
    for arg in &inv.args {
        let Arg::Opt {
            token,
            value,
            category,
            ..
        } = arg
        else {
            continue;
        };
        if *category != OptionCategory::Machine {
            continue;
        }
        match token.as_str() {
            "march=" | "mcpu=" => {
                let v = value.clone().unwrap_or_default();
                cfg.native = v == "native";
                cfg.unknown_march = if !cfg.native && arch_features(&isa, &v).is_none() {
                    Some(v.clone())
                } else {
                    None
                };
                cfg.march = Some(v);
            }
            "mtune=" => {
                cfg.tune = value.clone();
                // `-mtune=native` is not a CPU name: like `-march=native`
                // it binds the invocation to the build host and stays
                // unresolved until a concrete target is chosen.
                cfg.tune_native = value.as_deref() == Some("native");
            }
            _ => {
                let Some((feature, enable)) = flag_feature(token) else {
                    continue;
                };
                let flag = format!("-{token}");
                for prior in &cfg.requested {
                    let fights = if enable {
                        // Re-enabling after an explicit disable (or enabling
                        // something a conflicting flag rules out).
                        (!prior.enabled && prior.feature == feature)
                            || (prior.enabled && conflicts_with(prior.feature, feature))
                    } else {
                        // Disabling a feature an earlier flag asked for,
                        // directly or via its implication closure.
                        prior.enabled && feature_closure(prior.feature).contains(feature)
                    };
                    if fights {
                        cfg.conflicts.push(FlagConflict {
                            first: prior.flag.clone(),
                            second: flag.clone(),
                        });
                    }
                }
                cfg.requested.push(FeatureEvent {
                    flag,
                    feature,
                    enabled: enable,
                });
            }
        }
    }
    let base = match &cfg.march {
        Some(m) if !cfg.native && cfg.unknown_march.is_none() => base_features(&isa, Some(m)),
        _ => base_features(&isa, None),
    };
    cfg.enabled = apply_events(&base, &cfg.requested);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn fold(isa: &str, cmd: &str) -> TargetConfig {
        fold_invocation(isa, &CompilerInvocation::parse(&argv(cmd)).unwrap())
    }

    #[test]
    fn microarch_levels_nest() {
        let v1 = arch_features("x86_64", "x86-64").unwrap();
        let v2 = arch_features("x86_64", "x86-64-v2").unwrap();
        let v3 = arch_features("x86_64", "x86-64-v3").unwrap();
        let v4 = arch_features("x86_64", "x86-64-v4").unwrap();
        assert!(v1.is_subset(&v2) && v2.is_subset(&v3) && v3.is_subset(&v4));
        assert!(v2.contains("sse4.2") && !v2.contains("avx"));
        assert!(v3.contains("avx2") && v3.contains("fma") && !v3.contains("avx512f"));
        assert!(v4.contains("avx512vl") && v4.contains("avx512f"));
    }

    #[test]
    fn implication_closure_is_transitive() {
        let c = feature_closure("avx512f");
        for f in ["avx512f", "avx2", "avx", "sse4.2", "sse4.1", "ssse3", "sse3", "sse2"] {
            assert!(c.contains(f), "closure missing {f}");
        }
        assert_eq!(implied_by("avx2"), &["avx"]);
    }

    #[test]
    fn cpu_names_resolve_to_their_level() {
        assert_eq!(
            arch_features("x86_64", "icelake-server"),
            arch_features("x86_64", "x86-64-v4")
        );
        assert_eq!(
            arch_features("aarch64", "ft2000plus"),
            arch_features("aarch64", "armv8-a")
        );
        assert!(arch_features("x86_64", "armv8.2-a").is_none());
        assert!(arch_features("x86_64", "tachyon9000").is_none());
    }

    #[test]
    fn aarch64_march_suffixes() {
        let sve = arch_features("aarch64", "armv8.2-a+sve").unwrap();
        assert!(sve.contains("sve") && sve.contains("neon") && sve.contains("fp16"));
        let nosimd = arch_features("aarch64", "armv8-a+nosimd").unwrap();
        assert!(!nosimd.contains("neon"));
        let a64fx = arch_features("aarch64", "a64fx").unwrap();
        assert!(a64fx.contains("sve"));
    }

    #[test]
    fn target_arch_resolves_isa() {
        let (isa, set) = target_arch("x86-64-v2").unwrap();
        assert_eq!(isa, "x86_64");
        assert!(set.contains("sse4.2"));
        let (isa, set) = target_arch("armv8.2-a+sve").unwrap();
        assert_eq!(isa, "aarch64");
        assert!(set.contains("sve"));
        assert!(target_arch("not-an-arch").is_none());
    }

    #[test]
    fn conflict_edges() {
        assert!(conflicts_with("abi32", "abi64"));
        assert!(conflicts_with("avx2", "sve")); // cross-ISA
        assert!(!conflicts_with("avx2", "fma"));
        assert!(!conflicts_with("avx2", "avx2"));
    }

    #[test]
    fn flag_feature_parses_machine_flags() {
        assert_eq!(flag_feature("mavx512f"), Some(("avx512f", true)));
        assert_eq!(flag_feature("mno-avx"), Some(("avx", false)));
        assert_eq!(flag_feature("m32"), Some(("abi32", true)));
        assert_eq!(flag_feature("march="), None);
        assert_eq!(flag_feature("mprefer-vector-width="), None);
        assert_eq!(flag_feature("mbranch-protection"), None);
    }

    #[test]
    fn fold_march_plus_feature_flags() {
        let cfg = fold("x86_64", "gcc -O2 -march=x86-64-v2 -mavx512f -c a.c -o a.o");
        assert_eq!(cfg.march.as_deref(), Some("x86-64-v2"));
        assert!(cfg.enabled.contains("avx512f"));
        assert!(cfg.enabled.contains("avx2")); // implied by avx512f
        assert!(cfg.enabled.contains("sse4.2")); // from the march base
        assert!(cfg.conflicts.is_empty());
        assert_eq!(cfg.explicit_enables(), FeatureSet::from(["avx512f"]));
    }

    #[test]
    fn fold_explicit_toggles_beat_march_defaults() {
        // GCC semantics: -march picks the base, explicit -m toggles win
        // over it regardless of position — so avx512f survives a later
        // -march (adapters append -march at the end of argv).
        let cfg = fold("x86_64", "gcc -mavx512f -march=x86-64-v2 -c a.c");
        assert!(cfg.enabled.contains("avx512f"));
        assert!(cfg.enabled.contains("sse4.2")); // from the march base
        assert_eq!(cfg.requested.len(), 1);
        // The base itself obeys last-march-wins.
        let cfg = fold("x86_64", "gcc -march=x86-64-v4 -march=x86-64-v2 -c a.c");
        assert!(!cfg.enabled.contains("avx512f"));
        assert_eq!(cfg.march.as_deref(), Some("x86-64-v2"));
    }

    #[test]
    fn fold_disable_removes_dependents() {
        let cfg = fold("x86_64", "gcc -march=x86-64-v4 -mno-avx -c a.c");
        for gone in ["avx", "avx2", "avx512f", "fma"] {
            assert!(!cfg.enabled.contains(gone), "{gone} should be disabled");
        }
        assert!(cfg.enabled.contains("sse4.2"));
    }

    #[test]
    fn fold_records_toggle_conflicts() {
        let cfg = fold("x86_64", "gcc -mavx2 -mno-avx2 -c a.c");
        assert_eq!(cfg.conflicts.len(), 1);
        assert_eq!(cfg.conflicts[0].first, "-mavx2");
        assert_eq!(cfg.conflicts[0].second, "-mno-avx2");
        assert!(!cfg.enabled.contains("avx2"));
        // Disabling an implied base also fights the flag that needed it.
        let cfg = fold("x86_64", "gcc -mavx512f -mno-avx -c a.c");
        assert_eq!(cfg.conflicts.len(), 1);
        // The ABI pair conflicts both ways.
        let cfg = fold("x86_64", "gcc -m32 -m64 -c a.c");
        assert_eq!(cfg.conflicts.len(), 1);
    }

    #[test]
    fn fold_native_is_marked_unresolved() {
        let cfg = fold("x86_64", "gcc -O3 -march=native -c a.c");
        assert!(cfg.native);
        assert_eq!(cfg.march.as_deref(), Some("native"));
        let cfg = fold("x86_64", "gcc -O3 -march=x86-64-v3 -c a.c");
        assert!(!cfg.native);
    }

    #[test]
    fn fold_unknown_march_is_flagged_not_fatal() {
        let cfg = fold("x86_64", "gcc -march=quantum99 -c a.c");
        assert_eq!(cfg.unknown_march.as_deref(), Some("quantum99"));
        assert!(cfg.enabled.contains("sse2")); // falls back to the ISA default
    }

    #[test]
    fn fold_mtune_never_changes_features() {
        let a = fold("x86_64", "gcc -march=x86-64-v2 -c a.c");
        let b = fold("x86_64", "gcc -march=x86-64-v2 -mtune=icelake-server -c a.c");
        assert_eq!(a.enabled, b.enabled);
        assert_eq!(b.tune.as_deref(), Some("icelake-server"));
        assert!(!b.tune_native);
    }

    #[test]
    fn fold_tune_native_is_marked_unresolved() {
        let cfg = fold("x86_64", "gcc -O3 -march=x86-64-v3 -mtune=native -c a.c");
        assert!(cfg.tune_native);
        assert_eq!(cfg.tune.as_deref(), Some("native"));
        assert!(!cfg.native); // the march base itself resolved fine
        // Tune-native never touches the feature set either.
        let plain = fold("x86_64", "gcc -O3 -march=x86-64-v3 -c a.c");
        assert_eq!(cfg.enabled, plain.enabled);
    }

    #[test]
    fn fold_last_mtune_wins_for_native_marking() {
        let cfg = fold("x86_64", "gcc -mtune=native -mtune=generic -c a.c");
        assert!(!cfg.tune_native);
        assert_eq!(cfg.tune.as_deref(), Some("generic"));
        let cfg = fold("x86_64", "gcc -mtune=generic -mtune=native -c a.c");
        assert!(cfg.tune_native);
    }

    #[test]
    fn abi_width_is_always_target_compatible() {
        let v2 = arch_features("x86_64", "x86-64-v2").unwrap();
        assert!(v2.contains("abi32") && v2.contains("abi64"));
        let arm = arch_features("aarch64", "armv8-a").unwrap();
        assert!(!arm.contains("abi32"));
    }
}
