//! Simulated binary artifact formats.
//!
//! Compiled outputs are structured records serialized into the virtual
//! filesystem with magic headers (`COMT-OBJ`, `COMT-AR`, `COMT-BIN`), the
//! stand-ins for ELF objects, `ar` archives and executables/shared objects.
//! They carry exactly the information the rest of the system consumes:
//! symbol tables, target/ISA provenance, optimization provenance (toolchain,
//! `-O` level, vector width, LTO/PGO state) and accumulated kernel
//! parameters for the performance model.
//!
//! The serialization is a deliberate from-scratch line format (not serde):
//! it plays the role of an object-file format, including being inspectable
//! with `strings`-like tooling.

use std::collections::BTreeMap;
use std::fmt;

const OBJ_MAGIC: &str = "COMT-OBJ 1";
const AR_MAGIC: &str = "COMT-AR 1";
const BIN_MAGIC: &str = "COMT-BIN 1";

/// PGO state of an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PgoMode {
    #[default]
    None,
    /// Built with `-fprofile-generate`: running it emits a profile.
    Instrumented,
    /// Built with `-fprofile-use`: profile-guided layout applied.
    Optimized,
}

impl fmt::Display for PgoMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PgoMode::None => "none",
            PgoMode::Instrumented => "instrumented",
            PgoMode::Optimized => "optimized",
        };
        write!(f, "{s}")
    }
}

fn parse_pgo(s: &str) -> PgoMode {
    match s {
        "instrumented" => PgoMode::Instrumented,
        "optimized" => PgoMode::Optimized,
        _ => PgoMode::None,
    }
}

/// Accumulated performance-kernel parameters (summed across objects).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelParams(pub BTreeMap<String, f64>);

impl KernelParams {
    pub fn get(&self, key: &str) -> f64 {
        self.0.get(key).copied().unwrap_or(0.0)
    }

    /// Merge another set by summation (objects contribute additively).
    pub fn absorb(&mut self, other: &KernelParams) {
        for (k, v) in &other.0 {
            *self.0.entry(k.clone()).or_insert(0.0) += v;
        }
    }
}

/// Target the code was generated for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetInfo {
    pub isa: String,
    /// Effective `-march` after resolving `native`.
    pub march: String,
}

/// Optimization provenance of generated code.
#[derive(Debug, Clone, PartialEq)]
pub struct OptProvenance {
    /// Toolchain identity string (e.g. `gcc-13`, `llvm-18`, `vendor-x86`).
    pub toolchain: String,
    /// Scalar codegen quality (toolchain quality × opt-level factor).
    pub codegen_quality: f64,
    /// `-O` suffix as given (`"2"`, `"3"`, `"fast"`, …).
    pub opt_level: String,
    /// Effective SIMD width in f64 lanes for this march.
    pub vector_width: u32,
    pub fast_math: bool,
    pub openmp: bool,
    /// Object carries IR usable for link-time optimization.
    pub lto_ir: bool,
    pub pgo: PgoMode,
}

impl Default for OptProvenance {
    fn default() -> Self {
        OptProvenance {
            toolchain: "gcc-13".to_string(),
            codegen_quality: 1.0,
            opt_level: "0".to_string(),
            vector_width: 2,
            fast_math: false,
            openmp: false,
            lto_ir: false,
            pgo: PgoMode::None,
        }
    }
}

/// A relocatable object file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjectFile {
    /// Source path it was compiled from.
    pub source_path: String,
    /// Digest of the source content (`sha256:…`).
    pub source_digest: String,
    /// Source language (`c`, `c++`, `fortran`).
    pub lang: String,
    /// Symbols defined.
    pub defined: Vec<String>,
    /// Internal symbols referenced but not defined.
    pub undefined: Vec<String>,
    /// External namespaced symbols (`ns:name`).
    pub externs: Vec<String>,
    pub target: Option<TargetInfo>,
    pub opt: OptProvenance,
    pub kernel: KernelParams,
}

/// A static archive of objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Archive {
    /// `(member name, object)` pairs in insertion order.
    pub members: Vec<(String, ObjectFile)>,
}

/// Kind of linked output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Executable,
    SharedObject,
}

/// A linked executable or shared object.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedBinary {
    pub kind: BinKind,
    pub defined: Vec<String>,
    /// External namespaced symbols satisfied by shared libraries at runtime.
    pub externs: Vec<String>,
    /// Library names linked (`m`, `mpi`, `openblas`, …).
    pub needed_libs: Vec<String>,
    /// Source paths of the objects linked in (provenance).
    pub objects: Vec<String>,
    pub target: Option<TargetInfo>,
    /// Aggregated provenance: conservative combination over all objects.
    pub opt: OptProvenance,
    /// Whole-program LTO was applied at link time.
    pub lto_applied: bool,
    /// A post-link binary layout optimizer (BOLT-style) reordered the
    /// code using a runtime profile.
    pub layout_optimized: bool,
    /// Summed kernel parameters of all linked objects.
    pub kernel: KernelParams,
}

/// Any artifact, for format-sniffing readers.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    Object(ObjectFile),
    Archive(Archive),
    Linked(LinkedBinary),
}

/// Artifact decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Not a COMT artifact (opaque bytes, e.g. a package-provided library).
    NotAnArtifact,
    /// Magic found but the body is malformed.
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::NotAnArtifact => write!(f, "not a COMT artifact"),
            ArtifactError::Malformed(e) => write!(f, "malformed artifact: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

// ---- serialization ------------------------------------------------------

fn write_opt(out: &mut String, opt: &OptProvenance) {
    out.push_str(&format!("toolchain={}\n", opt.toolchain));
    out.push_str(&format!("quality={}\n", opt.codegen_quality));
    out.push_str(&format!("opt={}\n", opt.opt_level));
    out.push_str(&format!("vector={}\n", opt.vector_width));
    out.push_str(&format!("fast-math={}\n", opt.fast_math as u8));
    out.push_str(&format!("openmp={}\n", opt.openmp as u8));
    out.push_str(&format!("lto-ir={}\n", opt.lto_ir as u8));
    out.push_str(&format!("pgo={}\n", opt.pgo));
}

fn write_target(out: &mut String, t: &Option<TargetInfo>) {
    if let Some(t) = t {
        out.push_str(&format!("isa={}\n", t.isa));
        out.push_str(&format!("march={}\n", t.march));
    }
}

fn write_kernel(out: &mut String, k: &KernelParams) {
    for (key, v) in &k.0 {
        out.push_str(&format!("kernel.{key}={v}\n"));
    }
}

fn obj_body(o: &ObjectFile) -> String {
    let mut s = String::new();
    s.push_str(&format!("source={}\n", o.source_path));
    s.push_str(&format!("source-digest={}\n", o.source_digest));
    s.push_str(&format!("lang={}\n", o.lang));
    write_target(&mut s, &o.target);
    write_opt(&mut s, &o.opt);
    for d in &o.defined {
        s.push_str(&format!("def={d}\n"));
    }
    for u in &o.undefined {
        s.push_str(&format!("und={u}\n"));
    }
    for e in &o.externs {
        s.push_str(&format!("ext={e}\n"));
    }
    write_kernel(&mut s, &o.kernel);
    s
}

/// Serialize an object file.
pub fn write_object(o: &ObjectFile) -> Vec<u8> {
    format!("{OBJ_MAGIC}\n{}", obj_body(o)).into_bytes()
}

/// Serialize an archive.
pub fn write_archive_artifact(a: &Archive) -> Vec<u8> {
    let mut s = format!("{AR_MAGIC}\n");
    for (name, obj) in &a.members {
        let body = obj_body(obj);
        s.push_str(&format!("member {} {}\n{}", name, body.len(), body));
    }
    s.into_bytes()
}

/// Serialize a linked binary.
pub fn write_linked(b: &LinkedBinary) -> Vec<u8> {
    let mut s = format!("{BIN_MAGIC}\n");
    s.push_str(&format!(
        "kind={}\n",
        match b.kind {
            BinKind::Executable => "exe",
            BinKind::SharedObject => "so",
        }
    ));
    write_target(&mut s, &b.target);
    write_opt(&mut s, &b.opt);
    s.push_str(&format!("lto-applied={}\n", b.lto_applied as u8));
    s.push_str(&format!("layout-optimized={}\n", b.layout_optimized as u8));
    for d in &b.defined {
        s.push_str(&format!("def={d}\n"));
    }
    for e in &b.externs {
        s.push_str(&format!("ext={e}\n"));
    }
    for l in &b.needed_libs {
        s.push_str(&format!("needed={l}\n"));
    }
    for o in &b.objects {
        s.push_str(&format!("object={o}\n"));
    }
    write_kernel(&mut s, &b.kernel);
    s.into_bytes()
}

// ---- deserialization ----------------------------------------------------

struct Fields<'a> {
    lines: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(body: &'a str) -> Self {
        let lines = body
            .lines()
            .filter_map(|l| l.split_once('='))
            .collect();
        Fields { lines }
    }

    fn one(&self, key: &str) -> Option<&'a str> {
        self.lines.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn many(&self, key: &str) -> Vec<String> {
        self.lines
            .iter()
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| v.to_string())
            .collect()
    }

    fn kernel(&self) -> KernelParams {
        let mut k = KernelParams::default();
        for (key, v) in &self.lines {
            if let Some(name) = key.strip_prefix("kernel.") {
                if let Ok(val) = v.parse::<f64>() {
                    k.0.insert(name.to_string(), val);
                }
            }
        }
        k
    }

    fn opt(&self) -> OptProvenance {
        OptProvenance {
            toolchain: self.one("toolchain").unwrap_or("gcc-13").to_string(),
            codegen_quality: self.one("quality").and_then(|v| v.parse().ok()).unwrap_or(1.0),
            opt_level: self.one("opt").unwrap_or("0").to_string(),
            vector_width: self.one("vector").and_then(|v| v.parse().ok()).unwrap_or(2),
            fast_math: self.one("fast-math") == Some("1"),
            openmp: self.one("openmp") == Some("1"),
            lto_ir: self.one("lto-ir") == Some("1"),
            pgo: parse_pgo(self.one("pgo").unwrap_or("none")),
        }
    }

    fn target(&self) -> Option<TargetInfo> {
        match (self.one("isa"), self.one("march")) {
            (Some(isa), Some(march)) => Some(TargetInfo {
                isa: isa.to_string(),
                march: march.to_string(),
            }),
            _ => None,
        }
    }
}

fn obj_from_body(body: &str) -> ObjectFile {
    let f = Fields::parse(body);
    ObjectFile {
        source_path: f.one("source").unwrap_or("").to_string(),
        source_digest: f.one("source-digest").unwrap_or("").to_string(),
        lang: f.one("lang").unwrap_or("c").to_string(),
        defined: f.many("def"),
        undefined: f.many("und"),
        externs: f.many("ext"),
        target: f.target(),
        opt: f.opt(),
        kernel: f.kernel(),
    }
}

/// Parse an object file.
pub fn read_object(bytes: &[u8]) -> Result<ObjectFile, ArtifactError> {
    let text = std::str::from_utf8(bytes).map_err(|_| ArtifactError::NotAnArtifact)?;
    let body = text
        .strip_prefix(OBJ_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or(ArtifactError::NotAnArtifact)?;
    Ok(obj_from_body(body))
}

/// Parse an archive.
pub fn read_archive_artifact(bytes: &[u8]) -> Result<Archive, ArtifactError> {
    let text = std::str::from_utf8(bytes).map_err(|_| ArtifactError::NotAnArtifact)?;
    let mut rest = text
        .strip_prefix(AR_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or(ArtifactError::NotAnArtifact)?;
    let mut members = Vec::new();
    while !rest.is_empty() {
        let line_end = rest
            .find('\n')
            .ok_or_else(|| ArtifactError::Malformed("truncated member header".into()))?;
        let header = &rest[..line_end];
        rest = &rest[line_end + 1..];
        let mut parts = header.split(' ');
        let kw = parts.next().unwrap_or("");
        if kw != "member" {
            return Err(ArtifactError::Malformed(format!("bad member header: {header}")));
        }
        let name = parts
            .next()
            .ok_or_else(|| ArtifactError::Malformed("member missing name".into()))?;
        let len: usize = parts
            .next()
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| ArtifactError::Malformed("member missing length".into()))?;
        if rest.len() < len {
            return Err(ArtifactError::Malformed("member body truncated".into()));
        }
        let body = &rest[..len];
        rest = &rest[len..];
        members.push((name.to_string(), obj_from_body(body)));
    }
    Ok(Archive { members })
}

/// Parse a linked binary.
pub fn read_linked(bytes: &[u8]) -> Result<LinkedBinary, ArtifactError> {
    let text = std::str::from_utf8(bytes).map_err(|_| ArtifactError::NotAnArtifact)?;
    let body = text
        .strip_prefix(BIN_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or(ArtifactError::NotAnArtifact)?;
    let f = Fields::parse(body);
    Ok(LinkedBinary {
        kind: if f.one("kind") == Some("so") {
            BinKind::SharedObject
        } else {
            BinKind::Executable
        },
        defined: f.many("def"),
        externs: f.many("ext"),
        needed_libs: f.many("needed"),
        objects: f.many("object"),
        target: f.target(),
        opt: f.opt(),
        lto_applied: f.one("lto-applied") == Some("1"),
        layout_optimized: f.one("layout-optimized") == Some("1"),
        kernel: f.kernel(),
    })
}

/// Sniff and parse any COMT artifact.
pub fn read_artifact(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
    let text = std::str::from_utf8(bytes).map_err(|_| ArtifactError::NotAnArtifact)?;
    if text.starts_with(OBJ_MAGIC) {
        read_object(bytes).map(Artifact::Object)
    } else if text.starts_with(AR_MAGIC) {
        read_archive_artifact(bytes).map(Artifact::Archive)
    } else if text.starts_with(BIN_MAGIC) {
        read_linked(bytes).map(Artifact::Linked)
    } else {
        Err(ArtifactError::NotAnArtifact)
    }
}

/// Whether bytes look like a COMT artifact at all.
pub fn is_artifact(bytes: &[u8]) -> bool {
    [OBJ_MAGIC, AR_MAGIC, BIN_MAGIC]
        .iter()
        .any(|m| bytes.starts_with(m.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_obj() -> ObjectFile {
        let mut kernel = KernelParams::default();
        kernel.0.insert("flops".into(), 1.5e12);
        kernel.0.insert("bytes".into(), 4.2e11);
        ObjectFile {
            source_path: "/src/kernel.cc".into(),
            source_digest: "sha256:abcd".into(),
            lang: "c++".into(),
            defined: vec!["CalcForce".into(), "CalcVolume".into()],
            undefined: vec!["CommSend".into()],
            externs: vec!["m:sqrt".into(), "mpi:MPI_Allreduce".into()],
            target: Some(TargetInfo {
                isa: "x86_64".into(),
                march: "icelake-server".into(),
            }),
            opt: OptProvenance {
                toolchain: "vendor-x86".into(),
                codegen_quality: 1.25,
                opt_level: "3".into(),
                vector_width: 8,
                fast_math: true,
                openmp: true,
                lto_ir: true,
                pgo: PgoMode::Instrumented,
            },
            kernel,
        }
    }

    #[test]
    fn object_roundtrip() {
        let o = sample_obj();
        let bytes = write_object(&o);
        assert!(is_artifact(&bytes));
        let back = read_object(&bytes).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn archive_roundtrip() {
        let a = Archive {
            members: vec![
                ("kernel.o".into(), sample_obj()),
                ("util.o".into(), ObjectFile::default()),
            ],
        };
        let bytes = write_archive_artifact(&a);
        let back = read_archive_artifact(&bytes).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn linked_roundtrip() {
        let b = LinkedBinary {
            kind: BinKind::Executable,
            defined: vec!["main".into()],
            externs: vec!["m:sqrt".into()],
            needed_libs: vec!["m".into(), "mpi".into()],
            objects: vec!["/src/main.cc".into()],
            target: Some(TargetInfo {
                isa: "aarch64".into(),
                march: "armv8-a".into(),
            }),
            opt: OptProvenance::default(),
            lto_applied: true,
            layout_optimized: false,
            kernel: KernelParams::default(),
        };
        let bytes = write_linked(&b);
        let back = read_linked(&bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn sniffing_dispatch() {
        let o = write_object(&sample_obj());
        assert!(matches!(read_artifact(&o), Ok(Artifact::Object(_))));
        let a = write_archive_artifact(&Archive::default());
        assert!(matches!(read_artifact(&a), Ok(Artifact::Archive(_))));
        assert!(matches!(
            read_artifact(b"\x7fELF real binary"),
            Err(ArtifactError::NotAnArtifact)
        ));
        assert!(!is_artifact(b"\x7fELF"));
    }

    #[test]
    fn kernel_params_absorb_sums() {
        let mut a = KernelParams::default();
        a.0.insert("flops".into(), 1.0);
        let mut b = KernelParams::default();
        b.0.insert("flops".into(), 2.5);
        b.0.insert("bytes".into(), 7.0);
        a.absorb(&b);
        assert_eq!(a.get("flops"), 3.5);
        assert_eq!(a.get("bytes"), 7.0);
        assert_eq!(a.get("missing"), 0.0);
    }

    #[test]
    fn truncated_archive_malformed() {
        let a = Archive {
            members: vec![("m.o".into(), sample_obj())],
        };
        let mut bytes = write_archive_artifact(&a);
        bytes.truncate(bytes.len() - 10);
        assert!(matches!(
            read_archive_artifact(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn float_roundtrip_exact() {
        let mut k = KernelParams::default();
        k.0.insert("x".into(), 1.234_567_890_123e-7);
        let o = ObjectFile {
            kernel: k.clone(),
            ..Default::default()
        };
        let back = read_object(&write_object(&o)).unwrap();
        assert_eq!(back.kernel, k);
    }
}
