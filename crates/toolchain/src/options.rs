//! The GCC option database.
//!
//! Each entry describes an option's *shape* (how it consumes arguments) and
//! *category* (what it means for the build). The categories drive the
//! system-side transformations: retargeting rewrites `Machine` options,
//! toolchain swaps must preserve `Preprocessor`/`IncludePath` options,
//! LTO/PGO adapters add `Lto`/`Pgo` options, and so on.
//!
//! GCC 13 has 2314 options; modeling every one adds no information for the
//! reproduction, so this table covers the option *families* with build
//! semantics, and three prefix fallbacks (`-f`, `-m`, `-W`) absorb the long
//! tail exactly the way GCC's own option machinery treats unknown
//! `-f`/`-m`/`-W` spellings: as single-token flags. Every command line
//! therefore parses, and parsing is lossless (see `unparse`).

/// How an option consumes its argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionShape {
    /// No argument: `-c`, `-v`, `-shared`.
    Flag,
    /// Argument glued to the option: `-O2`, `-std=c++17`, `-Wl,...`.
    Joined,
    /// Argument in the next token: `-Xlinker foo`.
    Separate,
    /// Either glued or next token: `-o out`, `-I dir`, `-Iinclude`.
    JoinedOrSeparate,
}

/// Build semantics of an option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionCategory {
    /// Driver mode selection: `-c`, `-S`, `-E`.
    Mode,
    /// Output file: `-o`.
    Output,
    /// Optimization level: `-O*`.
    OptLevel,
    /// Code generation (`-f...` that changes emitted code).
    Codegen,
    /// Machine/target selection: `-march`, `-mtune`, `-mcpu`, `-m*`.
    Machine,
    /// Preprocessor: `-D`, `-U`, `-E`-related.
    Preprocessor,
    /// Header search path: `-I`, `-isystem`, `-include`.
    IncludePath,
    /// Library search path: `-L`.
    LibPath,
    /// Library link request: `-l`.
    LibLink,
    /// Warnings: `-W*` (except `-Wl,`/`-Wa,`/`-Wp,`).
    Warning,
    /// Debug info: `-g*`.
    Debug,
    /// Link-time optimization: `-flto*`.
    Lto,
    /// Profile-guided optimization: `-fprofile-*`.
    Pgo,
    /// Language standard: `-std=`, `-ansi`.
    Standard,
    /// Linker pass-through and link behaviour: `-Wl,`, `-static`, `-shared`.
    Linker,
    /// OpenMP and other parallel runtimes: `-fopenmp`.
    Parallel,
    /// Everything else (harmless for transformations).
    Other,
}

/// One database entry.
#[derive(Debug, Clone, Copy)]
pub struct OptionSpec {
    /// Option spelling without the leading dash(es), e.g. `o`, `march=`.
    /// A trailing `=` means the argument is joined after the `=`.
    pub name: &'static str,
    pub shape: OptionShape,
    pub category: OptionCategory,
}

use OptionCategory as C;
use OptionShape as S;

/// The option table, longest-match-first semantics applied by [`lookup`].
pub const OPTION_TABLE: &[OptionSpec] = &[
    // Driver modes.
    OptionSpec { name: "c", shape: S::Flag, category: C::Mode },
    OptionSpec { name: "S", shape: S::Flag, category: C::Mode },
    OptionSpec { name: "E", shape: S::Flag, category: C::Mode },
    // Output.
    OptionSpec { name: "o", shape: S::JoinedOrSeparate, category: C::Output },
    // Optimization levels.
    OptionSpec { name: "O0", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "O1", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "O2", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "O3", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "Os", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "Oz", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "Ofast", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "Og", shape: S::Flag, category: C::OptLevel },
    OptionSpec { name: "O", shape: S::Joined, category: C::OptLevel },
    // Machine.
    OptionSpec { name: "march=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "mtune=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "mcpu=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "mabi=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "mfpu=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "m32", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "m64", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mavx2", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mavx512f", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "msse4.2", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mfma", shape: S::Flag, category: C::Machine },
    // Preprocessor.
    OptionSpec { name: "D", shape: S::JoinedOrSeparate, category: C::Preprocessor },
    OptionSpec { name: "U", shape: S::JoinedOrSeparate, category: C::Preprocessor },
    OptionSpec { name: "M", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "MM", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "MD", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "MMD", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "MF", shape: S::JoinedOrSeparate, category: C::Preprocessor },
    OptionSpec { name: "MT", shape: S::JoinedOrSeparate, category: C::Preprocessor },
    OptionSpec { name: "MP", shape: S::Flag, category: C::Preprocessor },
    // Include paths.
    OptionSpec { name: "I", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "isystem", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "iquote", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "include", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "idirafter", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "nostdinc", shape: S::Flag, category: C::IncludePath },
    // Library paths and links.
    OptionSpec { name: "L", shape: S::JoinedOrSeparate, category: C::LibPath },
    OptionSpec { name: "l", shape: S::JoinedOrSeparate, category: C::LibLink },
    // Standards.
    OptionSpec { name: "std=", shape: S::Joined, category: C::Standard },
    OptionSpec { name: "ansi", shape: S::Flag, category: C::Standard },
    OptionSpec { name: "pedantic", shape: S::Flag, category: C::Standard },
    // Debug.
    OptionSpec { name: "g0", shape: S::Flag, category: C::Debug },
    OptionSpec { name: "g1", shape: S::Flag, category: C::Debug },
    OptionSpec { name: "g3", shape: S::Flag, category: C::Debug },
    OptionSpec { name: "ggdb", shape: S::Flag, category: C::Debug },
    OptionSpec { name: "gdwarf", shape: S::Joined, category: C::Debug },
    OptionSpec { name: "g", shape: S::Flag, category: C::Debug },
    // LTO family.
    OptionSpec { name: "flto=", shape: S::Joined, category: C::Lto },
    OptionSpec { name: "flto", shape: S::Flag, category: C::Lto },
    OptionSpec { name: "fno-lto", shape: S::Flag, category: C::Lto },
    OptionSpec { name: "ffat-lto-objects", shape: S::Flag, category: C::Lto },
    OptionSpec { name: "fuse-linker-plugin", shape: S::Flag, category: C::Lto },
    // PGO family.
    OptionSpec { name: "fprofile-generate=", shape: S::Joined, category: C::Pgo },
    OptionSpec { name: "fprofile-generate", shape: S::Flag, category: C::Pgo },
    OptionSpec { name: "fprofile-use=", shape: S::Joined, category: C::Pgo },
    OptionSpec { name: "fprofile-use", shape: S::Flag, category: C::Pgo },
    OptionSpec { name: "fprofile-correction", shape: S::Flag, category: C::Pgo },
    OptionSpec { name: "fprofile-dir=", shape: S::Joined, category: C::Pgo },
    OptionSpec { name: "fauto-profile=", shape: S::Joined, category: C::Pgo },
    // Parallel runtimes.
    OptionSpec { name: "fopenmp", shape: S::Flag, category: C::Parallel },
    OptionSpec { name: "fopenacc", shape: S::Flag, category: C::Parallel },
    OptionSpec { name: "pthread", shape: S::Flag, category: C::Parallel },
    // Common codegen -f flags (representative subset; prefix rule absorbs
    // the rest).
    OptionSpec { name: "ffast-math", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-fast-math", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "funroll-loops", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ftree-vectorize", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-tree-vectorize", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fomit-frame-pointer", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fstack-protector-strong", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fPIC", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fpic", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fPIE", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fvisibility=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "fexceptions", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-exceptions", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "frtti", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-rtti", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ffunction-sections", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fdata-sections", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fsigned-char", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "funsigned-char", shape: S::Flag, category: C::Codegen },
    // Linker behaviour.
    OptionSpec { name: "static", shape: S::Flag, category: C::Linker },
    OptionSpec { name: "shared", shape: S::Flag, category: C::Linker },
    OptionSpec { name: "rdynamic", shape: S::Flag, category: C::Linker },
    OptionSpec { name: "nostdlib", shape: S::Flag, category: C::Linker },
    OptionSpec { name: "nodefaultlibs", shape: S::Flag, category: C::Linker },
    OptionSpec { name: "pie", shape: S::Flag, category: C::Linker },
    OptionSpec { name: "no-pie", shape: S::Flag, category: C::Linker },
    OptionSpec { name: "Wl,", shape: S::Joined, category: C::Linker },
    OptionSpec { name: "Wa,", shape: S::Joined, category: C::Other },
    OptionSpec { name: "Wp,", shape: S::Joined, category: C::Preprocessor },
    OptionSpec { name: "Xlinker", shape: S::Separate, category: C::Linker },
    OptionSpec { name: "Xassembler", shape: S::Separate, category: C::Other },
    OptionSpec { name: "Xpreprocessor", shape: S::Separate, category: C::Preprocessor },
    OptionSpec { name: "T", shape: S::Separate, category: C::Linker },
    // Language override.
    OptionSpec { name: "x", shape: S::JoinedOrSeparate, category: C::Other },
    // Optimization fine-tuning (-f family, real GCC 13 spellings).
    OptionSpec { name: "finline-functions", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-inline", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "finline-limit=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "fipa-pta", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fgcse", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fgcse-after-reload", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fivopts", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "floop-interchange", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "floop-unroll-and-jam", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fpeel-loops", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fpredictive-commoning", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fprefetch-loop-arrays", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "freciprocal-math", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "frename-registers", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fsched-pressure", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fschedule-insns", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fschedule-insns2", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fsplit-loops", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fstrict-aliasing", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-strict-aliasing", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ftree-loop-distribution", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ftree-loop-vectorize", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ftree-slp-vectorize", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ftree-partial-pre", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "funswitch-loops", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fvect-cost-model=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "fassociative-math", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ffinite-math-only", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-math-errno", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-signed-zeros", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-trapping-math", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "funsafe-math-optimizations", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fexcess-precision=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "ffp-contract=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "frounding-math", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fsignaling-nans", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fsingle-precision-constant", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fcx-limited-range", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "falign-functions=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "falign-loops=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "falign-jumps=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "fbranch-probabilities", shape: S::Flag, category: C::Pgo },
    OptionSpec { name: "fprofile-values", shape: S::Flag, category: C::Pgo },
    OptionSpec { name: "fprofile-reorder-functions", shape: S::Flag, category: C::Pgo },
    OptionSpec { name: "fprofile-partial-training", shape: S::Flag, category: C::Pgo },
    OptionSpec { name: "fprofile-update=", shape: S::Joined, category: C::Pgo },
    OptionSpec { name: "flto-partition=", shape: S::Joined, category: C::Lto },
    OptionSpec { name: "flto-compression-level=", shape: S::Joined, category: C::Lto },
    OptionSpec { name: "fwhole-program", shape: S::Flag, category: C::Lto },
    OptionSpec { name: "fdevirtualize-at-ltrans", shape: S::Flag, category: C::Lto },
    // Hardening / ABI / storage-layout -f flags.
    OptionSpec { name: "fstack-protector", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fstack-protector-all", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fstack-clash-protection", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fcf-protection", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fpie", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-plt", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fshort-enums", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fpack-struct", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fwrapv", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ftrapv", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fno-common", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fcommon", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fkeep-inline-functions", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "fvisibility-inlines-hidden", shape: S::Flag, category: C::Codegen },
    OptionSpec { name: "ftls-model=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "fsanitize=", shape: S::Joined, category: C::Codegen },
    OptionSpec { name: "fdiagnostics-color=", shape: S::Joined, category: C::Other },
    OptionSpec { name: "fmax-errors=", shape: S::Joined, category: C::Other },
    OptionSpec { name: "fpermissive", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fmodules-ts", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fcoroutines", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fchar8_t", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fstack-usage", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fverbose-asm", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fdump-tree-all", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fopt-info", shape: S::Flag, category: C::Other },
    OptionSpec { name: "fopt-info-vec=", shape: S::Joined, category: C::Other },
    OptionSpec { name: "frecord-gcc-switches", shape: S::Flag, category: C::Other },
    // Machine fine-tuning (-m family).
    OptionSpec { name: "msse2", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "msse3", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mssse3", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "msse4.1", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mavx", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mavx512vl", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mavx512bw", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mavx512dq", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mbmi2", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mf16c", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mprefer-vector-width=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "mcmodel=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "mtls-dialect=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "momit-leaf-frame-pointer", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mno-red-zone", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mbranch-protection=", shape: S::Joined, category: C::Machine },
    OptionSpec { name: "moutline-atomics", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mstrict-align", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mlittle-endian", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mbig-endian", shape: S::Flag, category: C::Machine },
    OptionSpec { name: "mtune-ctrl=", shape: S::Joined, category: C::Machine },
    // Warnings (-W family beyond -Wall/-Wextra).
    OptionSpec { name: "Wpedantic", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wshadow", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wconversion", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wsign-compare", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wunused-variable", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wuninitialized", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wformat=", shape: S::Joined, category: C::Warning },
    OptionSpec { name: "Werror=", shape: S::Joined, category: C::Warning },
    OptionSpec { name: "Wno-error", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wno-unused-result", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wcast-align", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wdouble-promotion", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wvla", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wpadded", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wrestrict", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wnull-dereference", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wstack-usage=", shape: S::Joined, category: C::Warning },
    OptionSpec { name: "Waggregate-return", shape: S::Flag, category: C::Warning },
    // Preprocessor extras.
    OptionSpec { name: "MG", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "MQ", shape: S::JoinedOrSeparate, category: C::Preprocessor },
    OptionSpec { name: "C", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "P", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "H", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "trigraphs", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "undef", shape: S::Flag, category: C::Preprocessor },
    OptionSpec { name: "imacros", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "iprefix", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "iwithprefix", shape: S::JoinedOrSeparate, category: C::IncludePath },
    OptionSpec { name: "nostdinc++", shape: S::Flag, category: C::IncludePath },
    // Diagnostics / misc flags.
    OptionSpec { name: "v", shape: S::Flag, category: C::Other },
    OptionSpec { name: "###", shape: S::Flag, category: C::Other },
    OptionSpec { name: "pipe", shape: S::Flag, category: C::Other },
    OptionSpec { name: "save-temps", shape: S::Flag, category: C::Other },
    OptionSpec { name: "w", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Werror", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wall", shape: S::Flag, category: C::Warning },
    OptionSpec { name: "Wextra", shape: S::Flag, category: C::Warning },
];

/// Prefix fallbacks for the long tail, mirroring GCC's own treatment of
/// unrecognized `-f`/`-m`/`-W` spellings as flags.
const PREFIX_FALLBACKS: &[(&str, OptionCategory)] = &[
    ("f", C::Codegen),
    ("m", C::Machine),
    ("W", C::Warning),
];

/// Look up an option token (without the leading dash). Returns the matched
/// spec and, for `Joined` shapes, the split point of the value.
pub fn lookup(token: &str) -> Option<(OptionSpec, Option<usize>)> {
    // Longest exact/prefix match from the table.
    let mut best: Option<(OptionSpec, Option<usize>)> = None;
    for spec in OPTION_TABLE {
        let hit = match spec.shape {
            OptionShape::Flag | OptionShape::Separate => {
                if token == spec.name {
                    Some(None)
                } else {
                    None
                }
            }
            OptionShape::Joined => {
                if let Some(stripped) = spec.name.strip_suffix('=') {
                    // `-march=native`: need the `=` present.
                    if token.starts_with(stripped)
                        && token.len() > stripped.len()
                        && token.as_bytes()[stripped.len()] == b'='
                    {
                        Some(Some(stripped.len() + 1))
                    } else {
                        None
                    }
                } else if token.starts_with(spec.name) {
                    Some(Some(spec.name.len()))
                } else {
                    None
                }
            }
            OptionShape::JoinedOrSeparate => {
                if token == spec.name {
                    Some(None) // value in next token
                } else if token.starts_with(spec.name) {
                    Some(Some(spec.name.len()))
                } else {
                    None
                }
            }
        };
        if let Some(split) = hit {
            let better = match &best {
                None => true,
                Some((b, _)) => spec.name.len() > b.name.len(),
            };
            if better {
                best = Some((*spec, split));
            }
        }
    }
    if best.is_some() {
        return best;
    }
    // Prefix fallbacks: whole token is a flag.
    for (prefix, category) in PREFIX_FALLBACKS {
        if token.starts_with(prefix) && token.len() > prefix.len() {
            return Some((
                OptionSpec {
                    name: "",
                    shape: OptionShape::Flag,
                    category: *category,
                },
                None,
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lookup() {
        let (spec, split) = lookup("c").unwrap();
        assert_eq!(spec.category, C::Mode);
        assert!(split.is_none());
    }

    #[test]
    fn joined_with_equals() {
        let (spec, split) = lookup("march=native").unwrap();
        assert_eq!(spec.category, C::Machine);
        assert_eq!(split, Some(6));
        assert_eq!(&"march=native"[6..], "native");
    }

    #[test]
    fn joined_without_value_missing() {
        // `-march` alone (no `=`) falls through to the `-m` prefix rule.
        let (spec, split) = lookup("march").unwrap();
        assert_eq!(spec.category, C::Machine);
        assert!(split.is_none());
    }

    #[test]
    fn joined_or_separate_both_forms() {
        let (spec, split) = lookup("I/usr/include").unwrap();
        assert_eq!(spec.category, C::IncludePath);
        assert_eq!(split, Some(1));
        let (spec2, split2) = lookup("I").unwrap();
        assert_eq!(spec2.category, C::IncludePath);
        assert!(split2.is_none());
    }

    #[test]
    fn longest_match_wins() {
        // `-MF x` must match MF (separate-ish), not `-M` flag.
        let (spec, _) = lookup("MF").unwrap();
        assert_eq!(spec.name, "MF");
        // `-Os` matches the level flag, not `-O` joined.
        let (spec2, split2) = lookup("Os").unwrap();
        assert_eq!(spec2.name, "Os");
        assert!(split2.is_none());
        // `-Wl,-rpath` matches the linker passthrough, not the W prefix.
        let (spec3, split3) = lookup("Wl,-rpath,/x").unwrap();
        assert_eq!(spec3.category, C::Linker);
        assert_eq!(split3, Some(3));
    }

    #[test]
    fn lto_and_pgo_families() {
        assert_eq!(lookup("flto").unwrap().0.category, C::Lto);
        assert_eq!(lookup("flto=auto").unwrap().0.category, C::Lto);
        assert_eq!(lookup("fprofile-generate").unwrap().0.category, C::Pgo);
        assert_eq!(lookup("fprofile-use=app.prof").unwrap().0.category, C::Pgo);
    }

    #[test]
    fn unknown_f_m_w_fall_back_to_flags() {
        assert_eq!(lookup("fstrict-aliasing").unwrap().0.category, C::Codegen);
        assert_eq!(lookup("mbranch-protection").unwrap().0.category, C::Machine);
        assert_eq!(lookup("Wshadow").unwrap().0.category, C::Warning);
    }

    #[test]
    fn expanded_table_coverage() {
        assert!(OPTION_TABLE.len() > 200, "{}", OPTION_TABLE.len());
        // Spot-check spellings across the new families.
        assert_eq!(lookup("funroll-loops").unwrap().0.category, C::Codegen);
        assert_eq!(lookup("fvect-cost-model=dynamic").unwrap().0.category, C::Codegen);
        assert_eq!(lookup("flto-partition=none").unwrap().0.category, C::Lto);
        assert_eq!(lookup("fprofile-update=atomic").unwrap().0.category, C::Pgo);
        assert_eq!(lookup("mprefer-vector-width=512").unwrap().0.category, C::Machine);
        assert_eq!(lookup("mbranch-protection=standard").unwrap().0.category, C::Machine);
        assert_eq!(lookup("Werror=format-security").unwrap().0.category, C::Warning);
        assert_eq!(lookup("Wstack-usage=4096").unwrap().0.category, C::Warning);
        assert_eq!(lookup("nostdinc++").unwrap().0.category, C::IncludePath);
        // `-Werror=` (joined) beats the `-Werror` flag when a value follows.
        let (spec, split) = lookup("Werror=all").unwrap();
        assert_eq!(spec.name, "Werror=");
        assert!(split.is_some());
    }

    #[test]
    fn isystem_joined_and_separate() {
        // GCC accepts both spellings.
        let (spec, split) = lookup("isystem/opt/include").unwrap();
        assert_eq!(spec.category, C::IncludePath);
        assert_eq!(split, Some(7));
        let (spec2, split2) = lookup("isystem").unwrap();
        assert_eq!(spec2.category, C::IncludePath);
        assert!(split2.is_none());
    }

    #[test]
    fn unknown_option_is_none() {
        assert!(lookup("zzz").is_none());
        assert!(lookup("qwhatever").is_none());
    }

    #[test]
    fn optimization_levels() {
        for lvl in ["O0", "O1", "O2", "O3", "Os", "Ofast", "Og"] {
            assert_eq!(lookup(lvl).unwrap().0.category, C::OptLevel, "{lvl}");
        }
    }
}
