//! The execution-time model.

use crate::libenv::LibEnv;
use crate::systems::SystemConfig;
use comt_pkg::LibDomain;
use comt_toolchain::artifact::{KernelParams, LinkedBinary, PgoMode};

/// Kernel parameter keys understood by the model (all optional, default 0):
///
/// | key | meaning |
/// |---|---|
/// | `flops` | total useful floating-point work |
/// | `bytes` | total memory traffic |
/// | `vec_frac` | fraction of app compute that vectorizes |
/// | `blas_frac` | fraction of compute inside BLAS/LAPACK |
/// | `math_frac` | fraction inside libm/libc |
/// | `fft_frac` | fraction inside the FFT library |
/// | `comm_msgs` | messages per full 16-node run |
/// | `comm_bytes` | bytes communicated per full 16-node run |
/// | `call_frac` | call-overhead fraction removable by LTO |
/// | `branch_frac` | branch/layout fraction addressable by PGO |
/// | `lto_resp` | workload response to LTO in [-1, 1] |
/// | `pgo_resp` | workload response to PGO in [-1, 1] |
/// | `tc_resp` | response to toolchain codegen quality in [-1, 1] |
pub const KERNEL_KEYS: &[&str] = &[
    "flops",
    "bytes",
    "vec_frac",
    "blas_frac",
    "math_frac",
    "fft_frac",
    "comm_msgs",
    "comm_bytes",
    "call_frac",
    "branch_frac",
    "lto_resp",
    "pgo_resp",
    "tc_resp",
];

/// Per-phase timing breakdown (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Application (non-library) compute.
    pub app_s: f64,
    /// Library compute (BLAS + libm + FFT).
    pub lib_s: f64,
    /// Memory-bound extra time beyond compute (roofline excess).
    pub mem_s: f64,
    /// Communication.
    pub comm_s: f64,
}

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    pub seconds: f64,
    pub breakdown: Breakdown,
    /// Present when the binary was PGO-instrumented: the collected profile.
    pub profile: Option<String>,
}

/// Overhead multiplier for `-fprofile-generate` instrumented binaries.
const INSTRUMENTATION_OVERHEAD: f64 = 1.22;
/// Baseline vector width the `flops` anchor assumes.
const BASE_VW: f64 = 2.0;
/// Fraction of nominal codegen-quality delta applied to library-side code
/// (libraries ship prebuilt; toolchain only affects app code).
const FAST_MATH_BONUS: f64 = 0.02;
/// Additional layout-optimization strength relative to compiler PGO (BOLT
/// recovers roughly a third again on top of PGO in published results).
const LAYOUT_OPT_STRENGTH: f64 = 0.35;

fn domain_of_lib(name: &str) -> Option<LibDomain> {
    match name {
        "openblas" | "blas" | "lapack" => Some(LibDomain::Blas),
        "m" | "c" => Some(LibDomain::StdC),
        "stdc++" => Some(LibDomain::StdCxx),
        "mpi" => Some(LibDomain::Mpi),
        "fftw3" => Some(LibDomain::Fft),
        "z" => Some(LibDomain::Compression),
        _ => None,
    }
}

/// Deterministic ±0.5 % perturbation from a seed string.
fn jitter(seed: &str) -> f64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in seed.bytes() {
        h ^= b as u64;
        h = h.rotate_left(13).wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    1.0 + (unit - 0.5) * 0.01
}

/// Simulate one run of `binary` on `system` across `nodes` nodes, with the
/// image's installed libraries described by `env`.
pub fn execute(
    binary: &LinkedBinary,
    env: &LibEnv,
    system: &SystemConfig,
    nodes: u32,
) -> RunResult {
    execute_with_deck(binary, &KernelParams::default(), env, system, nodes)
}

/// Like [`execute`], with an *input deck*: per-input kernel overrides laid
/// over the binary's compiled-in characteristics. This models what real
/// inputs do — the same binary runs different problem sizes, communication
/// volumes and hot paths depending on its input (the very input-dependence
/// that makes PGO "typical input" selection hard, §4.4).
pub fn execute_with_deck(
    binary: &LinkedBinary,
    deck: &KernelParams,
    env: &LibEnv,
    system: &SystemConfig,
    nodes: u32,
) -> RunResult {
    let mut merged = binary.kernel.clone();
    for (key, v) in &deck.0 {
        merged.0.insert(key.clone(), *v);
    }
    let k = &merged;
    let flops = k.get("flops");
    let bytes = k.get("bytes");
    let vec_frac = k.get("vec_frac").clamp(0.0, 1.0);
    let tc_resp = if k.0.contains_key("tc_resp") {
        k.get("tc_resp").clamp(-1.0, 1.0)
    } else {
        1.0
    };

    // Library fractions only apply when the corresponding library is
    // actually linked.
    let linked_domain = |d: LibDomain| {
        binary
            .needed_libs
            .iter()
            .any(|l| domain_of_lib(l) == Some(d))
    };
    let blas_frac = if linked_domain(LibDomain::Blas) {
        k.get("blas_frac").clamp(0.0, 1.0)
    } else {
        0.0
    };
    let math_frac = if linked_domain(LibDomain::StdC) {
        k.get("math_frac").clamp(0.0, 1.0)
    } else {
        0.0
    };
    let fft_frac = if linked_domain(LibDomain::Fft) {
        k.get("fft_frac").clamp(0.0, 1.0)
    } else {
        0.0
    };
    let lib_frac = (blas_frac + math_frac + fft_frac).min(0.95);
    let app_frac = 1.0 - lib_frac;

    // Aggregate compute rate.
    let agg_gflops = system.node_gflops * nodes as f64;

    // App-code speed: codegen quality × Amdahl vectorization speedup,
    // jointly modulated by the workload's toolchain response. A negative
    // response models code where the system toolchain's aggressive codegen
    // (including vectorization) backfires — the paper's HPCCG anomaly.
    let vw = binary.opt.vector_width.max(1) as f64;
    let vec_speedup = 1.0 / ((1.0 - vec_frac) + vec_frac * BASE_VW / vw);
    let nominal_gain = binary.opt.codegen_quality * vec_speedup;
    let effective_gain = (1.0 + (nominal_gain - 1.0) * tc_resp).max(0.1);
    let mut app_rate = agg_gflops * 1e9 * effective_gain;
    if binary.opt.fast_math {
        app_rate *= 1.0 + FAST_MATH_BONUS;
    }

    // LTO removes call overhead; PGO improves layout/branches; both signed
    // by the workload's response factor.
    let mut app_work = flops * app_frac;
    if binary.lto_applied {
        let effect = k.get("lto_resp").clamp(-1.0, 1.0) * k.get("call_frac").clamp(0.0, 0.5);
        app_work *= 1.0 - effect;
    }
    match binary.opt.pgo {
        PgoMode::Optimized => {
            let effect = k.get("pgo_resp").clamp(-1.0, 1.0) * k.get("branch_frac").clamp(0.0, 0.5);
            app_work *= 1.0 - effect;
        }
        PgoMode::Instrumented => {
            app_work *= INSTRUMENTATION_OVERHEAD;
        }
        PgoMode::None => {}
    }
    // BOLT-style post-link layout optimization: profile-driven basic-block
    // reordering recovers i-cache/i-TLB misses beyond compiler PGO. Only
    // workloads that respond positively to profile-driven layout benefit.
    if binary.layout_optimized {
        let effect =
            LAYOUT_OPT_STRENGTH * k.get("pgo_resp").clamp(0.0, 1.0) * k.get("branch_frac").clamp(0.0, 0.5);
        app_work *= 1.0 - effect;
    }
    let app_s = app_work / app_rate;

    // Library-side compute: installed library quality, per domain. The
    // vectorization of library kernels is the library's business (baked
    // into its quality), not the app compiler's.
    let lib_rate_base = agg_gflops * 1e9;
    let lib_s = flops * blas_frac / (lib_rate_base * env.quality(LibDomain::Blas))
        + flops * math_frac / (lib_rate_base * env.quality(LibDomain::StdC))
        + flops * fft_frac / (lib_rate_base * env.quality(LibDomain::Fft));

    // Roofline: memory traffic bounds total node-side time.
    let mem_floor = bytes / (system.mem_bw_gbs * 1e9 * nodes as f64);
    let cpu_s = app_s + lib_s;
    let node_s = cpu_s.max(mem_floor);
    let mem_s = (mem_floor - cpu_s).max(0.0);

    // Communication: only meaningful on multi-node runs; scaled so the
    // kernel parameters describe the full 16-node run.
    let comm_scale = if nodes <= 1 {
        0.0
    } else {
        (nodes as f64 - 1.0) / 15.0
    };
    let (lat_us, bw_gbs) = if env.mpi_native {
        let q = env.quality(LibDomain::Mpi).max(1.0);
        (system.hsn_latency_us / q, system.hsn_bw_gbs * q)
    } else {
        (system.eth_latency_us, system.eth_bw_gbs)
    };
    let comm_s = comm_scale
        * (k.get("comm_msgs") * lat_us * 1e-6 + k.get("comm_bytes") / (bw_gbs * 1e9));

    let seed = format!(
        "{}|{}|{}|{}|{}",
        binary.opt.toolchain, binary.opt.vector_width, system.name, nodes, flops
    );
    let seconds = (node_s + comm_s) * jitter(&seed);

    // Instrumented runs emit a profile listing the hot symbols.
    let profile = if binary.opt.pgo == PgoMode::Instrumented {
        let mut p = String::from("comt-profile 1\n");
        for (i, sym) in binary.defined.iter().take(8).enumerate() {
            p.push_str(&format!("hot {} {}\n", sym, 100 - i * 10));
        }
        p.push_str(&format!("flops {flops}\n"));
        Some(p)
    } else {
        None
    };

    // Observability: every simulated run reports into the global recorder
    // (counters for run totals, simulated wall time as a span so the bench
    // harness and CLI can summarize simulated vs real time together).
    let rec = comt_observe::global();
    rec.count("perfsim.runs", 1);
    if binary.opt.pgo == PgoMode::Instrumented {
        rec.count("perfsim.instrumented_runs", 1);
    }
    rec.record_span(
        "perfsim.simulated_wall",
        std::time::Duration::from_secs_f64(seconds.max(0.0)),
    );

    RunResult {
        seconds,
        breakdown: Breakdown {
            app_s,
            lib_s,
            mem_s,
            comm_s,
        },
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::x86_cluster;
    use comt_toolchain::artifact::{BinKind, KernelParams, OptProvenance, TargetInfo};

    fn bin(kernel: &[(&str, f64)]) -> LinkedBinary {
        let mut k = KernelParams::default();
        for (key, v) in kernel {
            k.0.insert(key.to_string(), *v);
        }
        LinkedBinary {
            kind: BinKind::Executable,
            defined: vec!["main".into(), "kernel_a".into()],
            externs: vec![],
            needed_libs: vec!["c".into(), "m".into(), "openblas".into(), "mpi".into(), "fftw3".into()],
            objects: vec![],
            target: Some(TargetInfo {
                isa: "x86_64".into(),
                march: "x86-64".into(),
            }),
            opt: OptProvenance::default(),
            lto_applied: false,
            layout_optimized: false,
            kernel: k,
        }
    }

    #[test]
    fn deterministic() {
        let b = bin(&[("flops", 1e13)]);
        let e = LibEnv::generic();
        let s = x86_cluster();
        assert_eq!(execute(&b, &e, &s, 1).seconds, execute(&b, &e, &s, 1).seconds);
    }

    #[test]
    fn flops_anchor_sanity() {
        // 3.33e13 flops on a 333 GF/s node ≈ 100 s at baseline.
        let b = bin(&[("flops", 3.33e13)]);
        let t = execute(&b, &LibEnv::generic(), &x86_cluster(), 1).seconds;
        assert!((90.0..110.0).contains(&t), "{t}");
    }

    #[test]
    fn strong_scaling_across_nodes() {
        let b = bin(&[("flops", 1e14)]);
        let e = LibEnv::generic();
        let s = x86_cluster();
        let t1 = execute(&b, &e, &s, 1).seconds;
        let t16 = execute(&b, &e, &s, 16).seconds;
        assert!(t16 < t1 / 12.0, "compute-bound scales ({t1} vs {t16})");
    }

    #[test]
    fn memory_bound_roofline() {
        let b = bin(&[("flops", 1e10), ("bytes", 1e13)]);
        let r = execute(&b, &LibEnv::generic(), &x86_cluster(), 1);
        assert!(r.breakdown.mem_s > 0.0);
        // ~1e13 bytes / 380 GB/s ≈ 26 s.
        assert!((20.0..35.0).contains(&r.seconds), "{}", r.seconds);
    }

    #[test]
    fn lto_response_sign_matters() {
        let mut pos = bin(&[("flops", 1e13), ("call_frac", 0.3), ("lto_resp", 1.0)]);
        pos.lto_applied = true;
        let mut neg = pos.clone();
        neg.kernel.0.insert("lto_resp".into(), -1.0);
        let base = bin(&[("flops", 1e13), ("call_frac", 0.3), ("lto_resp", 1.0)]);
        let e = LibEnv::generic();
        let s = x86_cluster();
        let t_base = execute(&base, &e, &s, 1).seconds;
        let t_pos = execute(&pos, &e, &s, 1).seconds;
        let t_neg = execute(&neg, &e, &s, 1).seconds;
        assert!(t_pos < t_base);
        assert!(t_neg > t_base);
    }

    #[test]
    fn pgo_lifecycle() {
        let mut instrumented = bin(&[("flops", 1e13), ("branch_frac", 0.2), ("pgo_resp", 0.8)]);
        instrumented.opt.pgo = PgoMode::Instrumented;
        let r = execute(&instrumented, &LibEnv::generic(), &x86_cluster(), 1);
        assert!(r.profile.is_some());
        assert!(r.profile.as_ref().unwrap().contains("hot main"));

        let base = bin(&[("flops", 1e13), ("branch_frac", 0.2), ("pgo_resp", 0.8)]);
        let mut optimized = base.clone();
        optimized.opt.pgo = PgoMode::Optimized;
        let e = LibEnv::generic();
        let s = x86_cluster();
        let t_instr = r.seconds;
        let t_base = execute(&base, &e, &s, 1).seconds;
        let t_opt = execute(&optimized, &e, &s, 1).seconds;
        assert!(t_instr > t_base, "instrumentation costs");
        assert!(t_opt < t_base, "pgo pays off");
        assert!(execute(&optimized, &e, &s, 1).profile.is_none());
    }

    #[test]
    fn unlinked_library_fraction_ignored() {
        let mut b = bin(&[("flops", 1e13), ("blas_frac", 0.8)]);
        b.needed_libs = vec!["c".into()]; // no BLAS linked
        let e = crate::LibEnv::vendor_x86_like();
        let s = x86_cluster();
        let with_blas = execute(&bin(&[("flops", 1e13), ("blas_frac", 0.8)]), &e, &s, 1);
        let without = execute(&b, &e, &s, 1);
        assert!(without.seconds > with_blas.seconds, "vendor BLAS can't help unlinked code");
    }

    #[test]
    fn negative_toolchain_response_degrades() {
        let mut b = bin(&[("flops", 1e13), ("tc_resp", -0.5)]);
        b.opt.codegen_quality = 1.3; // aggressive vendor compiler
        let base = {
            let mut x = bin(&[("flops", 1e13), ("tc_resp", -0.5)]);
            x.opt.codegen_quality = 1.0;
            x
        };
        let e = LibEnv::generic();
        let s = x86_cluster();
        assert!(execute(&b, &e, &s, 1).seconds > execute(&base, &e, &s, 1).seconds);
    }

    #[test]
    fn layout_optimization_stacks_on_pgo() {
        let base = bin(&[("flops", 1e13), ("branch_frac", 0.3), ("pgo_resp", 0.8)]);
        let mut pgo = base.clone();
        pgo.opt.pgo = PgoMode::Optimized;
        let mut bolt = pgo.clone();
        bolt.layout_optimized = true;
        let e = LibEnv::generic();
        let s = x86_cluster();
        let t_pgo = execute(&pgo, &e, &s, 1).seconds;
        let t_bolt = execute(&bolt, &e, &s, 1).seconds;
        assert!(t_bolt < t_pgo, "layout opt adds on top of PGO");
        // But not for layout-averse workloads.
        let averse = bin(&[("flops", 1e13), ("branch_frac", 0.3), ("pgo_resp", -0.8)]);
        let mut averse_bolt = averse.clone();
        averse_bolt.layout_optimized = true;
        let t_a = execute(&averse, &e, &s, 1).seconds;
        let t_ab = execute(&averse_bolt, &e, &s, 1).seconds;
        assert!((t_ab / t_a - 1.0).abs() < 0.001, "no effect when profile-averse");
    }

    #[test]
    fn comm_absent_on_single_node() {
        let b = bin(&[("flops", 1e12), ("comm_msgs", 1e6), ("comm_bytes", 1e11)]);
        let r1 = execute(&b, &LibEnv::generic(), &x86_cluster(), 1);
        assert_eq!(r1.breakdown.comm_s, 0.0);
        let r16 = execute(&b, &LibEnv::generic(), &x86_cluster(), 16);
        assert!(r16.breakdown.comm_s > 0.0);
    }

    #[test]
    fn jitter_small_and_deterministic() {
        let j = jitter("seed");
        assert!((0.995..=1.005).contains(&j));
        assert_eq!(j, jitter("seed"));
        assert_ne!(j, jitter("other"));
    }
}

#[cfg(test)]
mod deck_tests {
    use super::*;
    use crate::systems::x86_cluster;
    use comt_toolchain::artifact::{BinKind, KernelParams, LinkedBinary, OptProvenance};

    fn bin() -> LinkedBinary {
        let mut k = KernelParams::default();
        k.0.insert("flops".into(), 1e13);
        k.0.insert("vec_frac".into(), 0.5);
        LinkedBinary {
            kind: BinKind::Executable,
            defined: vec!["main".into()],
            externs: vec![],
            needed_libs: vec!["c".into()],
            objects: vec![],
            target: None,
            opt: OptProvenance::default(),
            lto_applied: false,
            layout_optimized: false,
            kernel: k,
        }
    }

    #[test]
    fn deck_overrides_magnitudes() {
        let b = bin();
        let e = LibEnv::generic();
        let s = x86_cluster();
        let base = execute(&b, &e, &s, 1).seconds;
        let mut deck = KernelParams::default();
        deck.0.insert("flops".into(), 2e13);
        let doubled = execute_with_deck(&b, &deck, &e, &s, 1).seconds;
        assert!((doubled / base - 2.0).abs() < 0.05, "{}", doubled / base);
    }

    #[test]
    fn empty_deck_matches_plain_execute() {
        let b = bin();
        let e = LibEnv::generic();
        let s = x86_cluster();
        assert_eq!(
            execute(&b, &e, &s, 4).seconds,
            execute_with_deck(&b, &KernelParams::default(), &e, &s, 4).seconds
        );
    }
}
