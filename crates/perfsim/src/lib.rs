//! Analytic performance model for simulated HPC binaries.
//!
//! The paper evaluates coMtainer on two physical clusters (Table 1). This
//! crate is the stand-in for those machines: a deterministic analytic model
//! that "executes" a [`comt_toolchain::LinkedBinary`] on a
//! [`SystemConfig`] and returns wall-clock seconds. The model is general —
//! every optimization's effect is computed from binary provenance and
//! workload characteristics, never looked up per scheme:
//!
//! * **compute**: total flops over an aggregate rate scaled by the
//!   toolchain's codegen quality (modulated by the workload's
//!   toolchain-response, which is how over-aggressive vendor compilers can
//!   *hurt*, as the paper observes for HPCCG) and by an Amdahl-style
//!   vectorization speedup from the effective `-march` vector width;
//! * **libraries**: the fractions of compute executed inside BLAS / libm /
//!   FFT run at the *installed library's* quality — replacing the generic
//!   stack with the vendor stack (`libo`) accelerates exactly these
//!   fractions;
//! * **memory**: a roofline bound (`max(cpu, bytes/bandwidth)`);
//! * **communication**: latency + bandwidth terms on the high-speed
//!   network when the linked MPI has native interconnect plugins, and on
//!   the slow fallback transport otherwise — the cause of the paper's
//!   LULESH anomaly at 16 nodes;
//! * **LTO / PGO**: gains proportional to the workload's call-overhead and
//!   branch-sensitivity fractions, signed by per-workload response factors
//!   (negative responses reproduce the paper's observed degradations);
//! * **instrumentation**: `-fprofile-generate` binaries pay a profiling
//!   overhead and emit a profile usable for the PGO feedback loop.
//!
//! Everything is deterministic: a small seeded perturbation (±0.5 %) stands
//! in for run-to-run variance without breaking reproducibility.

pub mod libenv;
pub mod model;
pub mod systems;

pub use libenv::{lib_env_from_image, LibEnv};
pub use model::{execute, execute_with_deck, Breakdown, RunResult, KERNEL_KEYS};
pub use systems::{arm_cluster, x86_cluster, SystemConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use comt_toolchain::artifact::{
        BinKind, KernelParams, LinkedBinary, OptProvenance, PgoMode, TargetInfo,
    };

    fn binary(kernel: &[(&str, f64)], quality: f64, vw: u32) -> LinkedBinary {
        let mut k = KernelParams::default();
        for (key, v) in kernel {
            k.0.insert(key.to_string(), *v);
        }
        LinkedBinary {
            kind: BinKind::Executable,
            defined: vec!["main".into()],
            externs: vec![],
            needed_libs: vec!["c".into(), "m".into(), "openblas".into(), "mpi".into()],
            objects: vec!["/src/main.c".into()],
            target: Some(TargetInfo {
                isa: "x86_64".into(),
                march: "x86-64".into(),
            }),
            opt: OptProvenance {
                toolchain: "gcc-13".into(),
                codegen_quality: quality,
                opt_level: "2".into(),
                vector_width: vw,
                fast_math: false,
                openmp: false,
                lto_ir: false,
                pgo: PgoMode::None,
            },
            lto_applied: false,
            layout_optimized: false,
            kernel: k,
        }
    }

    #[test]
    fn better_codegen_is_faster() {
        let sys = x86_cluster();
        let env = LibEnv::generic();
        let k = [("flops", 1e14), ("vec_frac", 0.5)];
        let slow = execute(&binary(&k, 1.0, 2), &env, &sys, 1);
        let fast = execute(&binary(&k, 1.2, 8), &env, &sys, 1);
        assert!(fast.seconds < slow.seconds);
    }

    #[test]
    fn vendor_libs_accelerate_blas_fraction() {
        let sys = x86_cluster();
        let k = [("flops", 1e14), ("blas_frac", 0.8)];
        let generic = execute(&binary(&k, 1.0, 2), &LibEnv::generic(), &sys, 1);
        let vendor = execute(&binary(&k, 1.0, 2), &LibEnv::vendor_x86_like(), &sys, 1);
        assert!(vendor.seconds < generic.seconds * 0.75);
    }

    #[test]
    fn native_mpi_cuts_comm_time() {
        let sys = x86_cluster();
        let k = [("flops", 1e13), ("comm_msgs", 5e5), ("comm_bytes", 2e10)];
        let generic = execute(&binary(&k, 1.0, 2), &LibEnv::generic(), &sys, 16);
        let vendor = execute(&binary(&k, 1.0, 2), &LibEnv::vendor_x86_like(), &sys, 16);
        assert!(vendor.breakdown.comm_s < generic.breakdown.comm_s / 4.0);
    }
}
