//! The library environment of an image: per-domain quality factors.
//!
//! coMtainer's `libo` optimization replaces generic libraries with the
//! system's optimized stack. The performance effect is determined by which
//! packages an image actually contains, so this module extracts a
//! [`LibEnv`] from an image filesystem: it parses the dpkg status database
//! and resolves each installed `(name, version)` back to the catalog
//! package carrying its [`comt_pkg::PerfTraits`].

use comt_pkg::{LibDomain, Repository};
use comt_vfs::Vfs;
use std::collections::BTreeMap;

/// Per-domain library quality for one image.
#[derive(Debug, Clone, PartialEq)]
pub struct LibEnv {
    qualities: BTreeMap<LibDomainKey, f64>,
    /// Whether the installed MPI can drive the high-speed interconnect.
    pub mpi_native: bool,
}

/// `LibDomain` lacks `Ord`; mirror it with a sortable key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LibDomainKey {
    StdC,
    StdCxx,
    Blas,
    Mpi,
    Compression,
    Fft,
}

fn key_of(d: LibDomain) -> Option<LibDomainKey> {
    match d {
        LibDomain::StdC => Some(LibDomainKey::StdC),
        LibDomain::StdCxx => Some(LibDomainKey::StdCxx),
        LibDomain::Blas => Some(LibDomainKey::Blas),
        LibDomain::Mpi => Some(LibDomainKey::Mpi),
        LibDomain::Compression => Some(LibDomainKey::Compression),
        LibDomain::Fft => Some(LibDomainKey::Fft),
        LibDomain::None => None,
    }
}

impl LibEnv {
    /// All-generic environment (quality 1.0 everywhere, no HSN plugins).
    pub fn generic() -> Self {
        LibEnv {
            qualities: BTreeMap::new(),
            mpi_native: false,
        }
    }

    /// A vendor-x86-like environment, for tests and model exploration.
    pub fn vendor_x86_like() -> Self {
        let mut qualities = BTreeMap::new();
        qualities.insert(LibDomainKey::StdC, 1.30);
        qualities.insert(LibDomainKey::StdCxx, 1.20);
        qualities.insert(LibDomainKey::Blas, 1.70);
        qualities.insert(LibDomainKey::Mpi, 1.6);
        qualities.insert(LibDomainKey::Fft, 1.65);
        LibEnv {
            qualities,
            mpi_native: true,
        }
    }

    /// Quality factor for a domain (1.0 when generic / unknown).
    pub fn quality(&self, domain: LibDomain) -> f64 {
        key_of(domain)
            .and_then(|k| self.qualities.get(&k).copied())
            .unwrap_or(1.0)
    }

    fn set(&mut self, domain: LibDomain, quality: f64) {
        if let Some(k) = key_of(domain) {
            let q = self.qualities.entry(k).or_insert(1.0);
            // Several packages may share a domain (BLAS + LAPACK); the
            // strongest installed implementation wins.
            if quality > *q {
                *q = quality;
            }
        }
    }
}

/// Extract the library environment from an image's filesystem by resolving
/// its dpkg records against the given repositories (checked in order; the
/// first repository knowing the exact `(name, version)` wins).
pub fn lib_env_from_image(fs: &Vfs, repos: &[&Repository]) -> LibEnv {
    let mut env = LibEnv::generic();
    let records = match comt_pkg::installed_packages(fs) {
        Ok(r) => r,
        Err(_) => return env,
    };
    for rec in records {
        for repo in repos {
            if let Some(pkg) = repo
                .versions(&rec.package)
                .iter()
                .find(|p| p.version == rec.version)
            {
                env.set(pkg.perf.domain, pkg.perf.quality);
                if pkg.perf.domain == LibDomain::Mpi && pkg.perf.native_interconnect {
                    env.mpi_native = true;
                }
                break;
            }
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use comt_pkg::catalog;

    fn image_with(repo: &Repository, names: &[&str]) -> Vfs {
        let deps: Vec<comt_pkg::Dependency> = names.iter().map(|n| n.parse().unwrap()).collect();
        let pkgs = comt_pkg::resolve_install(repo, &deps).unwrap();
        let mut fs = Vfs::new();
        comt_pkg::install_packages(&mut fs, &pkgs).unwrap();
        fs
    }

    #[test]
    fn generic_image_is_all_ones() {
        let repo = catalog::generic_repo("x86_64");
        let fs = image_with(&repo, &["libopenblas0", "mpich", "libc6"]);
        let env = lib_env_from_image(&fs, &[&repo]);
        assert_eq!(env.quality(LibDomain::Blas), 1.0);
        assert_eq!(env.quality(LibDomain::StdC), 1.0);
        assert!(!env.mpi_native);
    }

    #[test]
    fn vendor_image_carries_quality() {
        let repo = catalog::system_repo("x86_64");
        let fs = image_with(&repo, &["libopenblas0", "mpich", "libc6"]);
        let env = lib_env_from_image(&fs, &[&repo]);
        assert!(env.quality(LibDomain::Blas) > 1.5);
        assert!(env.quality(LibDomain::StdC) > 1.2);
        assert!(env.mpi_native);
    }

    #[test]
    fn unknown_packages_ignored() {
        let repo = catalog::generic_repo("x86_64");
        let mut fs = image_with(&repo, &["libc6"]);
        // A package no repo knows about.
        comt_pkg::install_packages(
            &mut fs,
            &[comt_pkg::Package::new("mystery", "9.9", "amd64")],
        )
        .unwrap();
        let env = lib_env_from_image(&fs, &[&repo]);
        assert_eq!(env.quality(LibDomain::Blas), 1.0);
    }

    #[test]
    fn image_without_dpkg_is_generic() {
        let repo = catalog::generic_repo("x86_64");
        let env = lib_env_from_image(&Vfs::new(), &[&repo]);
        assert_eq!(env, LibEnv::generic());
    }

    #[test]
    fn strongest_domain_package_wins() {
        let repo = catalog::system_repo("x86_64");
        // Both openblas (2.9) and lapack (2.9) map to Blas; installing the
        // generic lapack alongside vendor openblas must keep 2.9.
        let fs = image_with(&repo, &["libopenblas0", "liblapack3"]);
        let env = lib_env_from_image(&fs, &[&repo]);
        assert!(env.quality(LibDomain::Blas) >= 1.7);
    }
}
