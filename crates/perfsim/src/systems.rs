//! The two HPC systems of the paper's Table 1.

/// Configuration of one HPC cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Human name.
    pub name: String,
    /// ISA string (`x86_64` / `aarch64`).
    pub isa: String,
    /// CPU description (Table 1).
    pub cpu: String,
    /// RAM per node in GiB (Table 1).
    pub ram_gb: u32,
    /// Operating system (Table 1).
    pub os: String,
    /// Node count (Table 1).
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Clock in GHz.
    pub ghz: f64,
    /// Sustained scalar GFLOP/s per node at baseline codegen (the model's
    /// compute-rate anchor; vectorization and quality scale it).
    pub node_gflops: f64,
    /// Sustained memory bandwidth per node, GB/s.
    pub mem_bw_gbs: f64,
    /// High-speed interconnect: one-way latency (µs) and per-node
    /// bandwidth (GB/s). Usable only by MPI builds with vendor plugins.
    pub hsn_latency_us: f64,
    pub hsn_bw_gbs: f64,
    /// Fallback transport (TCP-over-management-net) used by generic MPI.
    pub eth_latency_us: f64,
    pub eth_bw_gbs: f64,
}

/// The x86-64 cluster: 2 × Intel Xeon Platinum 8358P @ 2.60 GHz, 512 GB,
/// Ubuntu 22.04, 16 nodes.
pub fn x86_cluster() -> SystemConfig {
    SystemConfig {
        name: "x86-64 cluster".into(),
        isa: "x86_64".into(),
        cpu: "2 x Intel Xeon Platinum 8358P @ 2.60GHz".into(),
        ram_gb: 512,
        os: "Ubuntu 22.04".into(),
        nodes: 16,
        cores_per_node: 64,
        ghz: 2.6,
        // 64 cores × 2.6 GHz × 2 (FMA) sustained scalar.
        node_gflops: 333.0,
        mem_bw_gbs: 380.0,
        hsn_latency_us: 1.5,
        hsn_bw_gbs: 12.5,
        eth_latency_us: 45.0,
        eth_bw_gbs: 1.2,
    }
}

/// The AArch64 cluster: Phytium FT-2000+/64 @ 2.2 GHz, 128 GB, Kylin Linux
/// Advanced Server V10, 16 nodes.
pub fn arm_cluster() -> SystemConfig {
    SystemConfig {
        name: "AArch64 cluster".into(),
        isa: "aarch64".into(),
        cpu: "1 x Phytium FT-2000+/64 @ 2.2GHz".into(),
        ram_gb: 128,
        os: "Kylin Linux Advanced Server V10".into(),
        nodes: 16,
        cores_per_node: 64,
        ghz: 2.2,
        node_gflops: 113.0,
        mem_bw_gbs: 150.0,
        hsn_latency_us: 2.0,
        hsn_bw_gbs: 10.0,
        eth_latency_us: 60.0,
        eth_bw_gbs: 1.0,
    }
}

/// The system for an ISA name.
pub fn system_for(isa: &str) -> SystemConfig {
    match isa {
        "aarch64" => arm_cluster(),
        _ => x86_cluster(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let x = x86_cluster();
        assert_eq!(x.nodes, 16);
        assert_eq!(x.ram_gb, 512);
        assert!(x.cpu.contains("8358P"));
        let a = arm_cluster();
        assert_eq!(a.nodes, 16);
        assert_eq!(a.ram_gb, 128);
        assert!(a.cpu.contains("FT-2000+"));
        assert!(a.os.contains("Kylin"));
    }

    #[test]
    fn x86_is_beefier() {
        let x = x86_cluster();
        let a = arm_cluster();
        assert!(x.node_gflops > a.node_gflops);
        assert!(x.mem_bw_gbs > a.mem_bw_gbs);
    }

    #[test]
    fn hsn_much_faster_than_fallback() {
        for s in [x86_cluster(), arm_cluster()] {
            assert!(s.hsn_bw_gbs > 8.0 * s.eth_bw_gbs);
            assert!(s.hsn_latency_us < s.eth_latency_us / 10.0);
        }
    }

    #[test]
    fn system_for_isa() {
        assert_eq!(system_for("aarch64").isa, "aarch64");
        assert_eq!(system_for("x86_64").isa, "x86_64");
    }
}
