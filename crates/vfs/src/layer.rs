//! OCI layer changesets: application and computation.
//!
//! A layer is an ordered list of tar entries; deletions are encoded as
//! *whiteout* files (`.wh.<name>`) and a directory can be reset with the
//! *opaque* marker (`.wh..wh..opq`), per the OCI image spec.

use crate::path::{normalize, parent};
use crate::vfs::{Node, NodeKind, Vfs, VfsError};
use bytes::Bytes;
use comt_tar::{Entry, EntryKind};

/// Prefix marking a whiteout entry.
pub const WHITEOUT_PREFIX: &str = ".wh.";
/// Basename marking an opaque directory.
pub const OPAQUE_MARKER: &str = ".wh..wh..opq";

/// If the (layer-relative) entry path is a plain whiteout, the absolute
/// path it deletes. Opaque markers return `None` — they reset a directory
/// rather than delete a named path.
pub fn whiteout_target(entry_path: &str) -> Option<String> {
    let abs = normalize(&format!("/{entry_path}"));
    let name = crate::path::file_name(&abs);
    if name == OPAQUE_MARKER {
        return None;
    }
    let victim = name.strip_prefix(WHITEOUT_PREFIX)?;
    Some(normalize(&format!("{}/{}", parent(&abs), victim)))
}

/// Apply a layer changeset to a filesystem in place.
pub fn apply_layer(fs: &mut Vfs, entries: &[Entry]) -> Result<(), VfsError> {
    for e in entries {
        let abs = normalize(&format!("/{}", e.path));
        let name = crate::path::file_name(&abs);

        if name == OPAQUE_MARKER {
            // Clear the directory's contents but keep the directory.
            let dir = parent(&abs);
            let children: Vec<String> = fs
                .walk_prefix(&dir)
                .iter()
                .map(|(k, _)| (*k).clone())
                .collect();
            for c in children {
                // Children may already be gone if an ancestor was removed.
                let _ = fs.remove(&c);
            }
            fs.mkdir_p(&dir)?;
            continue;
        }

        if name.starts_with(WHITEOUT_PREFIX) {
            if let Some(target) = whiteout_target(&e.path) {
                // Whiteout of a missing path is tolerated (tar streams may
                // whiteout files shadowed by earlier layers we never saw).
                let _ = fs.remove(&target);
            }
            continue;
        }

        let node = match &e.kind {
            // Tar payloads are `Bytes` too: the clone shares storage with
            // the archive entry instead of copying the file content.
            EntryKind::File(content) => Node {
                kind: NodeKind::File(content.clone()),
                mode: e.mode,
                uid: e.uid,
                gid: e.gid,
                mtime: e.mtime,
            },
            EntryKind::Dir => Node {
                kind: NodeKind::Dir,
                mode: e.mode,
                uid: e.uid,
                gid: e.gid,
                mtime: e.mtime,
            },
            EntryKind::Symlink(t) => Node {
                kind: NodeKind::Symlink(t.clone()),
                mode: e.mode,
                uid: e.uid,
                gid: e.gid,
                mtime: e.mtime,
            },
            EntryKind::Hardlink(t) => {
                // Materialize hardlinks as content copies: the simulated fs
                // has no inode identity, and layer semantics only require
                // content equivalence.
                let src = normalize(&format!("/{t}"));
                let content = fs.read(&src)?;
                Node {
                    kind: NodeKind::File(content),
                    mode: e.mode,
                    uid: e.uid,
                    gid: e.gid,
                    mtime: e.mtime,
                }
            }
        };
        fs.insert_node(&abs, node)?;
    }
    Ok(())
}

fn node_to_entry(path: &str, node: &Node) -> Entry {
    let rel = path.trim_start_matches('/').to_string();
    let kind = match &node.kind {
        // Shares the VFS node's storage — no per-file copy when lifting a
        // filesystem into a layer changeset.
        NodeKind::File(c) => EntryKind::File(c.clone()),
        NodeKind::Dir => EntryKind::Dir,
        NodeKind::Symlink(t) => EntryKind::Symlink(t.clone()),
    };
    Entry {
        path: rel,
        kind,
        mode: node.mode,
        uid: node.uid,
        gid: node.gid,
        mtime: node.mtime,
    }
}

/// Compute the changeset that transforms `base` into `upper`.
///
/// Produces adds/modifications in sorted path order (parents naturally come
/// first) and whiteouts for removals. Removal of a whole subtree emits a
/// single whiteout for the subtree root.
pub fn diff_layers(base: &Vfs, upper: &Vfs) -> Vec<Entry> {
    let mut entries = Vec::new();

    // Removals: in base but not in upper. Skip paths whose ancestor is
    // already whited out.
    let mut removed_roots: Vec<String> = Vec::new();
    for (path, _) in base.walk() {
        if !upper.exists(path) {
            let covered = removed_roots
                .iter()
                .any(|r| path.starts_with(&format!("{r}/")));
            if !covered {
                removed_roots.push(path.clone());
            }
        }
    }
    for root in &removed_roots {
        let dir = parent(root);
        let name = crate::path::file_name(root);
        let rel_dir = dir.trim_start_matches('/');
        let wh = if rel_dir.is_empty() {
            format!("{WHITEOUT_PREFIX}{name}")
        } else {
            format!("{rel_dir}/{WHITEOUT_PREFIX}{name}")
        };
        entries.push(Entry {
            path: wh,
            kind: EntryKind::File(Bytes::new()),
            mode: 0o644,
            uid: 0,
            gid: 0,
            mtime: 0,
        });
    }

    // Adds and modifications: in upper and different-or-missing in base.
    for (path, node) in upper.walk() {
        match base.lstat(path) {
            Some(old) if old == node => {}
            _ => entries.push(node_to_entry(path, node)),
        }
    }

    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with(files: &[(&str, &str)]) -> Vfs {
        let mut v = Vfs::new();
        for (p, c) in files {
            v.write_file_p(p, Bytes::from(c.as_bytes().to_vec()), 0o644)
                .unwrap();
        }
        v
    }

    #[test]
    fn diff_empty_when_identical() {
        let a = fs_with(&[("/a/b", "x")]);
        assert!(diff_layers(&a, &a.clone()).is_empty());
    }

    #[test]
    fn diff_add() {
        let a = fs_with(&[("/a/b", "x")]);
        let mut b = a.clone();
        b.write_file_p("/a/c", Bytes::from_static(b"y"), 0o644)
            .unwrap();
        let d = diff_layers(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "a/c");
    }

    #[test]
    fn diff_modify_content_and_mode() {
        let a = fs_with(&[("/f", "old")]);
        let mut b = a.clone();
        b.write_file("/f", Bytes::from_static(b"new"), 0o600).unwrap();
        let d = diff_layers(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].mode, 0o600);
    }

    #[test]
    fn diff_remove_emits_whiteout() {
        let a = fs_with(&[("/d/f", "x"), ("/keep", "k")]);
        let mut b = a.clone();
        b.remove("/d/f").unwrap();
        let d = diff_layers(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "d/.wh.f");
    }

    #[test]
    fn diff_subtree_removal_single_whiteout() {
        let a = fs_with(&[("/d/x/1", "1"), ("/d/x/2", "2")]);
        let mut b = a.clone();
        b.remove("/d").unwrap();
        let d = diff_layers(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, ".wh.d");
    }

    #[test]
    fn whiteout_target_resolution() {
        assert_eq!(whiteout_target("d/.wh.f"), Some("/d/f".to_string()));
        assert_eq!(whiteout_target(".wh.top"), Some("/top".to_string()));
        assert_eq!(whiteout_target("d/.wh..wh..opq"), None);
        assert_eq!(whiteout_target("d/plain"), None);
    }

    #[test]
    fn apply_whiteout_removes() {
        let mut fs = fs_with(&[("/d/f", "x")]);
        let wh = Entry::file("d/.wh.f", Vec::new(), 0o644);
        apply_layer(&mut fs, &[wh]).unwrap();
        assert!(!fs.exists("/d/f"));
        assert!(fs.exists("/d"));
    }

    #[test]
    fn apply_opaque_clears_dir() {
        let mut fs = fs_with(&[("/d/a", "1"), ("/d/b", "2"), ("/other", "o")]);
        let opq = Entry::file("d/.wh..wh..opq", Vec::new(), 0o644);
        let add = Entry::file("d/fresh", b"f".to_vec(), 0o644);
        apply_layer(&mut fs, &[opq, add]).unwrap();
        assert!(!fs.exists("/d/a"));
        assert!(!fs.exists("/d/b"));
        assert_eq!(fs.read_string("/d/fresh").unwrap(), "f");
        assert!(fs.exists("/other"));
    }

    #[test]
    fn apply_hardlink_copies_content() {
        let mut fs = fs_with(&[("/bin/tool", "ELF")]);
        let hl = Entry {
            path: "bin/tool2".into(),
            kind: EntryKind::Hardlink("bin/tool".into()),
            mode: 0o755,
            uid: 0,
            gid: 0,
            mtime: 0,
        };
        apply_layer(&mut fs, &[hl]).unwrap();
        assert_eq!(fs.read_string("/bin/tool2").unwrap(), "ELF");
    }

    #[test]
    fn apply_creates_missing_parents() {
        let mut fs = Vfs::new();
        let e = Entry::file("deep/nested/file", b"x".to_vec(), 0o644);
        apply_layer(&mut fs, &[e]).unwrap();
        assert!(fs.stat("/deep/nested").unwrap().is_dir());
    }

    #[test]
    fn roundtrip_diff_apply_with_symlinks_and_dirs() {
        let mut a = Vfs::new();
        a.mkdir_p("/usr/lib").unwrap();
        a.write_file("/usr/lib/libm.so.6", Bytes::from_static(b"M6"), 0o644)
            .unwrap();
        a.symlink("/usr/lib/libm.so", "libm.so.6").unwrap();

        let mut b = a.clone();
        b.remove("/usr/lib/libm.so").unwrap();
        b.write_file("/usr/lib/libm.so.6", Bytes::from_static(b"M7"), 0o644)
            .unwrap();
        b.symlink("/usr/lib/libm.so", "/usr/lib/libm.so.6").unwrap();
        b.mkdir_p("/var/cache").unwrap();

        let d = diff_layers(&a, &b);
        let mut rebuilt = a.clone();
        apply_layer(&mut rebuilt, &d).unwrap();
        assert_eq!(rebuilt, b);
    }
}
