//! Path normalization for the simulated filesystem.
//!
//! All paths inside the VFS are absolute, slash-separated, with no `.`/`..`
//! components and no trailing slash (except the root `/` itself).

/// Normalize a path to canonical absolute form.
///
/// Relative paths are interpreted against `/`. `..` that would escape the
/// root is clamped at the root, matching kernel behaviour.
pub fn normalize(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            c => parts.push(c),
        }
    }
    if parts.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", parts.join("/"))
    }
}

/// Join `rel` onto `base`; if `rel` is absolute it wins.
pub fn join(base: &str, rel: &str) -> String {
    if rel.starts_with('/') {
        normalize(rel)
    } else {
        normalize(&format!("{base}/{rel}"))
    }
}

/// Parent directory of a normalized path; the root's parent is the root.
pub fn parent(path: &str) -> String {
    let norm = normalize(path);
    if norm == "/" {
        return norm;
    }
    match norm.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => norm[..i].to_string(),
        None => "/".to_string(),
    }
}

/// Final component of a normalized path (empty for the root).
pub fn file_name(path: &str) -> String {
    let norm = normalize(path);
    if norm == "/" {
        return String::new();
    }
    norm.rsplit('/').next().unwrap_or("").to_string()
}

/// Split into `(parent, file_name)`.
pub fn split(path: &str) -> (String, String) {
    (parent(path), file_name(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basics() {
        assert_eq!(normalize("/usr//bin/"), "/usr/bin");
        assert_eq!(normalize("usr/bin"), "/usr/bin");
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize(""), "/");
    }

    #[test]
    fn normalize_dots() {
        assert_eq!(normalize("/a/./b"), "/a/b");
        assert_eq!(normalize("/a/b/../c"), "/a/c");
        assert_eq!(normalize("/../../x"), "/x");
        assert_eq!(normalize("/a/.."), "/");
    }

    #[test]
    fn join_relative_and_absolute() {
        assert_eq!(join("/work", "src/main.c"), "/work/src/main.c");
        assert_eq!(join("/work", "/etc/passwd"), "/etc/passwd");
        assert_eq!(join("/work", "../tmp"), "/tmp");
    }

    #[test]
    fn parent_and_name() {
        assert_eq!(parent("/usr/bin/gcc"), "/usr/bin");
        assert_eq!(parent("/usr"), "/");
        assert_eq!(parent("/"), "/");
        assert_eq!(file_name("/usr/bin/gcc"), "gcc");
        assert_eq!(file_name("/"), "");
    }

    #[test]
    fn split_pair() {
        assert_eq!(split("/a/b"), ("/a".to_string(), "b".to_string()));
    }
}
