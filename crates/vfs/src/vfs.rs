//! The filesystem tree and its operations.

use crate::path::{normalize, parent};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum symlink indirections before declaring a loop (Linux uses 40).
const MAX_SYMLINK_DEPTH: usize = 40;

/// What a path points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Regular file with content.
    File(Bytes),
    /// Directory (children are separate map entries).
    Dir,
    /// Symbolic link holding its literal target string.
    Symlink(String),
}

/// A filesystem node: kind plus POSIX metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub kind: NodeKind,
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub mtime: u64,
}

impl Node {
    pub fn file(content: Bytes, mode: u32) -> Self {
        Node {
            kind: NodeKind::File(content),
            mode,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    pub fn dir(mode: u32) -> Self {
        Node {
            kind: NodeKind::Dir,
            mode,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    pub fn symlink(target: impl Into<String>) -> Self {
        Node {
            kind: NodeKind::Symlink(target.into()),
            mode: 0o777,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }

    /// Payload size in bytes (files only).
    pub fn size(&self) -> u64 {
        match &self.kind {
            NodeKind::File(c) => c.len() as u64,
            _ => 0,
        }
    }

    pub fn is_dir(&self) -> bool {
        matches!(self.kind, NodeKind::Dir)
    }

    pub fn is_file(&self) -> bool {
        matches!(self.kind, NodeKind::File(_))
    }

    pub fn is_symlink(&self) -> bool {
        matches!(self.kind, NodeKind::Symlink(_))
    }
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    NotFound(String),
    NotADirectory(String),
    IsADirectory(String),
    AlreadyExists(String),
    SymlinkLoop(String),
    /// Parent directory missing when creating a node.
    NoParent(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            VfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            VfsError::SymlinkLoop(p) => write!(f, "too many levels of symbolic links: {p}"),
            VfsError::NoParent(p) => write!(f, "parent directory missing: {p}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// In-memory filesystem: a sorted map from normalized absolute path to node.
///
/// The root `/` is implicit and always a directory; it never appears in the
/// map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Vfs {
    nodes: BTreeMap<String, Node>,
}

impl Vfs {
    /// Empty filesystem (just the implicit root).
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Number of explicit nodes (files + dirs + symlinks, excluding `/`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the filesystem has no explicit nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total content bytes across all files.
    pub fn size_bytes(&self) -> u64 {
        self.nodes.values().map(Node::size).sum()
    }

    /// Node at `path` without following a trailing symlink (lstat).
    pub fn lstat(&self, path: &str) -> Option<&Node> {
        let p = normalize(path);
        if p == "/" {
            // Root is implicit; expose a static dir node.
            static ROOT: Node = Node {
                kind: NodeKind::Dir,
                mode: 0o755,
                uid: 0,
                gid: 0,
                mtime: 0,
            };
            return Some(&ROOT);
        }
        self.nodes.get(&p)
    }

    /// Whether anything exists at `path` (no symlink following).
    pub fn exists(&self, path: &str) -> bool {
        self.lstat(path).is_some()
    }

    /// Resolve symlinks in every component and return the final path.
    ///
    /// The final component is also resolved. Missing intermediate components
    /// produce `NotFound`.
    pub fn resolve(&self, path: &str) -> Result<String, VfsError> {
        self.resolve_inner(path, 0)
    }

    fn resolve_inner(&self, path: &str, depth: usize) -> Result<String, VfsError> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(VfsError::SymlinkLoop(path.to_string()));
        }
        let norm = normalize(path);
        if norm == "/" {
            return Ok(norm);
        }
        let mut cur = String::from("/");
        let comps: Vec<&str> = norm[1..].split('/').collect();
        for (i, comp) in comps.iter().enumerate() {
            let next = if cur == "/" {
                format!("/{comp}")
            } else {
                format!("{cur}/{comp}")
            };
            match self.nodes.get(&next) {
                Some(node) if node.is_symlink() => {
                    if let NodeKind::Symlink(target) = &node.kind {
                        let base = parent(&next);
                        let redirected = crate::path::join(&base, target);
                        let rest = comps[i + 1..].join("/");
                        let full = if rest.is_empty() {
                            redirected
                        } else {
                            format!("{redirected}/{rest}")
                        };
                        return self.resolve_inner(&full, depth + 1);
                    }
                    unreachable!()
                }
                Some(_) => cur = next,
                None => {
                    // Once a component is missing nothing further can be a
                    // symlink, so the remaining components resolve
                    // literally. Existence is the caller's concern (this
                    // also resolves creation targets).
                    let rest = comps[i + 1..].join("/");
                    return Ok(if rest.is_empty() {
                        next
                    } else {
                        format!("{next}/{rest}")
                    });
                }
            }
        }
        Ok(cur)
    }

    /// Node at `path`, following symlinks (stat).
    pub fn stat(&self, path: &str) -> Result<&Node, VfsError> {
        let resolved = self.resolve(path)?;
        self.lstat(&resolved)
            .ok_or(VfsError::NotFound(resolved))
    }

    /// Read a file's content, following symlinks.
    pub fn read(&self, path: &str) -> Result<Bytes, VfsError> {
        let node = self.stat(path)?;
        match &node.kind {
            NodeKind::File(c) => Ok(c.clone()),
            NodeKind::Dir => Err(VfsError::IsADirectory(normalize(path))),
            NodeKind::Symlink(_) => unreachable!("stat follows symlinks"),
        }
    }

    /// Read a file as UTF-8 text (lossy).
    pub fn read_string(&self, path: &str) -> Result<String, VfsError> {
        Ok(String::from_utf8_lossy(&self.read(path)?).into_owned())
    }

    /// Target of a symlink (readlink).
    pub fn readlink(&self, path: &str) -> Result<String, VfsError> {
        match self.lstat(path) {
            Some(Node {
                kind: NodeKind::Symlink(t),
                ..
            }) => Ok(t.clone()),
            Some(_) => Err(VfsError::NotADirectory(normalize(path))),
            None => Err(VfsError::NotFound(normalize(path))),
        }
    }

    fn check_parent(&self, norm: &str) -> Result<(), VfsError> {
        let par = parent(norm);
        if par == "/" {
            return Ok(());
        }
        match self.nodes.get(&par) {
            Some(n) if n.is_dir() => Ok(()),
            Some(_) => Err(VfsError::NotADirectory(par)),
            None => Err(VfsError::NoParent(par)),
        }
    }

    /// Create or overwrite a regular file. Parent must exist. Symlinks in
    /// the path are followed (writing "through" a symlink).
    pub fn write_file(&mut self, path: &str, content: Bytes, mode: u32) -> Result<(), VfsError> {
        let resolved = self.resolve(path)?;
        if let Some(existing) = self.nodes.get(&resolved) {
            if existing.is_dir() {
                return Err(VfsError::IsADirectory(resolved));
            }
        }
        self.check_parent(&resolved)?;
        self.nodes.insert(resolved, Node::file(content, mode));
        Ok(())
    }

    /// `write_file` creating missing parent directories (like `install -D`).
    pub fn write_file_p(&mut self, path: &str, content: Bytes, mode: u32) -> Result<(), VfsError> {
        let resolved = self.resolve(path)?;
        self.mkdir_p(&parent(&resolved))?;
        self.write_file(&resolved, content, mode)
    }

    /// Insert a raw node at a normalized path, creating parents. Used by
    /// layer application where tar entry order is not guaranteed.
    pub fn insert_node(&mut self, path: &str, node: Node) -> Result<(), VfsError> {
        let norm = normalize(path);
        if norm == "/" {
            return Ok(()); // root metadata is fixed
        }
        self.mkdir_p(&parent(&norm))?;
        // Replacing a directory wipes its subtree (tar overwrite semantics).
        if let Some(old) = self.nodes.get(&norm) {
            if old.is_dir() && !node.is_dir() {
                self.remove_subtree(&norm);
            }
        }
        self.nodes.insert(norm, node);
        Ok(())
    }

    /// Create a directory; parent must exist.
    pub fn mkdir(&mut self, path: &str, mode: u32) -> Result<(), VfsError> {
        let norm = normalize(path);
        if norm == "/" {
            return Ok(());
        }
        if let Some(n) = self.nodes.get(&norm) {
            return if n.is_dir() {
                Err(VfsError::AlreadyExists(norm))
            } else {
                Err(VfsError::NotADirectory(norm))
            };
        }
        self.check_parent(&norm)?;
        self.nodes.insert(norm, Node::dir(mode));
        Ok(())
    }

    /// Create a directory and all missing parents (idempotent).
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), VfsError> {
        let norm = normalize(path);
        if norm == "/" {
            return Ok(());
        }
        let mut cur = String::new();
        for comp in norm[1..].split('/') {
            cur.push('/');
            cur.push_str(comp);
            match self.nodes.get(&cur) {
                Some(n) if n.is_dir() => {}
                Some(n) if n.is_symlink() => {
                    // Follow the symlink for the remainder.
                    let resolved = self.resolve(&cur)?;
                    if resolved != cur {
                        let rest_start = cur.len();
                        let rest = &norm[rest_start..];
                        let full = format!("{resolved}{rest}");
                        return self.mkdir_p(&full);
                    }
                }
                Some(_) => return Err(VfsError::NotADirectory(cur)),
                None => {
                    self.nodes.insert(cur.clone(), Node::dir(0o755));
                }
            }
        }
        Ok(())
    }

    /// Create a symlink node. Parent must exist; path must not exist.
    pub fn symlink(&mut self, path: &str, target: &str) -> Result<(), VfsError> {
        let norm = normalize(path);
        if self.nodes.contains_key(&norm) {
            return Err(VfsError::AlreadyExists(norm));
        }
        self.check_parent(&norm)?;
        self.nodes.insert(norm, Node::symlink(target));
        Ok(())
    }

    fn remove_subtree(&mut self, norm: &str) {
        let prefix = format!("{norm}/");
        let doomed: Vec<String> = self
            .nodes
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            self.nodes.remove(&k);
        }
    }

    /// Remove a file, symlink, or directory (recursively).
    pub fn remove(&mut self, path: &str) -> Result<(), VfsError> {
        let norm = normalize(path);
        if self.nodes.remove(&norm).is_none() {
            return Err(VfsError::NotFound(norm));
        }
        self.remove_subtree(&norm);
        Ok(())
    }

    /// Rename/move a node (and its subtree) to a new path, with
    /// rename(2) semantics: an existing file/symlink target is replaced;
    /// an existing directory target is refused (`AlreadyExists`, standing
    /// in for ENOTEMPTY/EISDIR).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), VfsError> {
        let from = normalize(from);
        let to = normalize(to);
        let node = self
            .nodes
            .get(&from)
            .cloned()
            .ok_or_else(|| VfsError::NotFound(from.clone()))?;
        if from == to {
            return Ok(()); // rename(2): same path is a successful no-op
        }
        self.check_parent(&to)?;
        match self.nodes.get(&to) {
            Some(existing) if existing.is_dir() => {
                return Err(VfsError::AlreadyExists(to));
            }
            Some(_) => {
                self.nodes.remove(&to);
            }
            None => {}
        }
        // Move subtree first (keys change).
        let prefix = format!("{from}/");
        let moved: Vec<(String, Node)> = self
            .nodes
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, n)| (k.clone(), n.clone()))
            .collect();
        for (k, _) in &moved {
            self.nodes.remove(k);
        }
        self.nodes.remove(&from);
        self.nodes.insert(to.clone(), node);
        for (k, n) in moved {
            let suffix = &k[from.len()..];
            self.nodes.insert(format!("{to}{suffix}"), n);
        }
        Ok(())
    }

    /// Immediate children names of a directory, sorted.
    pub fn list_dir(&self, path: &str) -> Result<Vec<String>, VfsError> {
        let norm = self.resolve(path)?;
        if norm != "/" {
            match self.nodes.get(&norm) {
                Some(n) if n.is_dir() => {}
                Some(_) => return Err(VfsError::NotADirectory(norm)),
                None => return Err(VfsError::NotFound(norm)),
            }
        }
        let prefix = if norm == "/" {
            "/".to_string()
        } else {
            format!("{norm}/")
        };
        let mut out = Vec::new();
        for (k, _) in self
            .nodes
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
        {
            let rest = &k[prefix.len()..];
            if !rest.contains('/') {
                out.push(rest.to_string());
            }
        }
        Ok(out)
    }

    /// All (path, node) pairs in sorted order.
    pub fn walk(&self) -> impl Iterator<Item = (&String, &Node)> {
        self.nodes.iter()
    }

    /// All paths under a prefix directory (inclusive of nested), sorted.
    pub fn walk_prefix<'a>(&'a self, prefix: &str) -> Vec<(&'a String, &'a Node)> {
        let norm = normalize(prefix);
        let p = if norm == "/" {
            "/".to_string()
        } else {
            format!("{norm}/")
        };
        self.nodes
            .range(p.clone()..)
            .take_while(move |(k, _)| k.starts_with(&p))
            .collect()
    }

    /// Paths of all regular files whose name matches `pred`.
    pub fn find_files(&self, mut pred: impl FnMut(&str) -> bool) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(k, n)| n.is_file() && pred(k))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vfs {
        let mut v = Vfs::new();
        v.mkdir_p("/usr/bin").unwrap();
        v.write_file("/usr/bin/gcc", Bytes::from_static(b"GCC"), 0o755)
            .unwrap();
        v.symlink("/usr/bin/cc", "gcc").unwrap();
        v
    }

    #[test]
    fn write_and_read() {
        let v = sample();
        assert_eq!(v.read("/usr/bin/gcc").unwrap(), Bytes::from_static(b"GCC"));
    }

    #[test]
    fn read_through_symlink() {
        let v = sample();
        assert_eq!(v.read("/usr/bin/cc").unwrap(), Bytes::from_static(b"GCC"));
    }

    #[test]
    fn symlink_dir_traversal() {
        let mut v = sample();
        v.mkdir_p("/opt/toolchain/bin").unwrap();
        v.write_file("/opt/toolchain/bin/ld", Bytes::from_static(b"LD"), 0o755)
            .unwrap();
        v.symlink("/usr/tc", "/opt/toolchain").unwrap();
        assert_eq!(v.read("/usr/tc/bin/ld").unwrap(), Bytes::from_static(b"LD"));
    }

    #[test]
    fn relative_symlink_resolution() {
        let mut v = Vfs::new();
        v.mkdir_p("/a/b").unwrap();
        v.write_file("/a/real", Bytes::from_static(b"R"), 0o644)
            .unwrap();
        v.symlink("/a/b/link", "../real").unwrap();
        assert_eq!(v.read("/a/b/link").unwrap(), Bytes::from_static(b"R"));
    }

    #[test]
    fn symlink_loop_detected() {
        let mut v = Vfs::new();
        v.symlink("/x", "/y").unwrap();
        v.symlink("/y", "/x").unwrap();
        assert!(matches!(v.read("/x"), Err(VfsError::SymlinkLoop(_))));
    }

    #[test]
    fn write_requires_parent() {
        let mut v = Vfs::new();
        let err = v.write_file("/no/dir/file", Bytes::new(), 0o644);
        assert!(matches!(err, Err(VfsError::NoParent(_))));
        v.write_file_p("/no/dir/file", Bytes::new(), 0o644).unwrap();
        assert!(v.exists("/no/dir/file"));
    }

    #[test]
    fn mkdir_over_file_fails() {
        let mut v = Vfs::new();
        v.write_file("/f", Bytes::new(), 0o644).unwrap();
        assert!(matches!(v.mkdir("/f", 0o755), Err(VfsError::NotADirectory(_))));
    }

    #[test]
    fn mkdir_p_idempotent() {
        let mut v = Vfs::new();
        v.mkdir_p("/a/b/c").unwrap();
        v.mkdir_p("/a/b/c").unwrap();
        assert!(v.stat("/a/b/c").unwrap().is_dir());
    }

    #[test]
    fn remove_is_recursive() {
        let mut v = sample();
        v.remove("/usr").unwrap();
        assert!(!v.exists("/usr/bin/gcc"));
        assert!(!v.exists("/usr"));
        assert!(v.is_empty());
    }

    #[test]
    fn remove_missing_errors() {
        let mut v = Vfs::new();
        assert!(matches!(v.remove("/nope"), Err(VfsError::NotFound(_))));
    }

    #[test]
    fn rename_moves_subtree() {
        let mut v = sample();
        v.rename("/usr", "/opt").unwrap();
        assert!(v.exists("/opt/bin/gcc"));
        assert!(!v.exists("/usr"));
    }

    #[test]
    fn rename_replaces_file_refuses_dir() {
        let mut v = sample();
        v.write_file("/target", Bytes::from_static(b"old"), 0o644).unwrap();
        v.write_file("/source", Bytes::from_static(b"new"), 0o644).unwrap();
        v.rename("/source", "/target").unwrap();
        assert_eq!(v.read_string("/target").unwrap(), "new");
        // Renaming onto an existing directory is refused (no silent merge).
        v.mkdir_p("/destdir/child_dir").unwrap();
        assert!(matches!(
            v.rename("/usr", "/destdir"),
            Err(VfsError::AlreadyExists(_))
        ));
        assert!(v.exists("/destdir/child_dir"), "target untouched on refusal");
        assert!(v.exists("/usr/bin/gcc"), "source untouched on refusal");
        // rename-to-self is a successful no-op, even for directories.
        v.rename("/usr", "/usr").unwrap();
        assert!(v.exists("/usr/bin/gcc"));
    }

    #[test]
    fn list_dir_sorted_immediate() {
        let v = sample();
        assert_eq!(v.list_dir("/usr/bin").unwrap(), vec!["cc", "gcc"]);
        assert_eq!(v.list_dir("/").unwrap(), vec!["usr"]);
    }

    #[test]
    fn list_dir_on_file_fails() {
        let v = sample();
        assert!(matches!(
            v.list_dir("/usr/bin/gcc"),
            Err(VfsError::NotADirectory(_))
        ));
    }

    #[test]
    fn size_accounting() {
        let v = sample();
        assert_eq!(v.size_bytes(), 3);
        assert_eq!(v.len(), 4); // usr, usr/bin, gcc, cc
    }

    #[test]
    fn overwriting_dir_with_file_clears_subtree() {
        let mut v = sample();
        v.insert_node("/usr/bin", Node::file(Bytes::from_static(b"x"), 0o644))
            .unwrap();
        assert!(!v.exists("/usr/bin/gcc"));
        assert!(v.stat("/usr/bin").unwrap().is_file());
    }

    #[test]
    fn walk_prefix_scopes() {
        let v = sample();
        let under_usr = v.walk_prefix("/usr");
        assert_eq!(under_usr.len(), 3);
        let all = v.walk_prefix("/");
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn resolve_missing_components_resolve_literally() {
        let v = sample();
        assert_eq!(v.resolve("/usr/bin/new").unwrap(), "/usr/bin/new");
        // Missing intermediates resolve literally; existence is stat's job.
        assert_eq!(v.resolve("/usr/missing/new").unwrap(), "/usr/missing/new");
        assert!(matches!(
            v.stat("/usr/missing/new"),
            Err(VfsError::NotFound(_))
        ));
    }

    #[test]
    fn stat_root() {
        let v = Vfs::new();
        assert!(v.stat("/").unwrap().is_dir());
    }
}
