//! In-memory POSIX filesystem simulator with OCI layer semantics.
//!
//! The coMtainer toolset must "compute the final file system state after
//! applying all image layers" (paper §4.5). This crate provides that
//! simulator:
//!
//! * a normalized, absolute-path keyed tree of files / directories /
//!   symlinks with POSIX metadata,
//! * symlink resolution with loop detection,
//! * OCI layer-changeset **application** (whiteouts `.wh.<name>`, opaque
//!   directories `.wh..wh..opq`),
//! * layer-changeset **computation** (diff between two filesystem states),
//! * full-snapshot import/export to the `comt-tar` archive format.
//!
//! File contents are [`bytes::Bytes`], so cloning a whole rootfs (containers
//! fork base images constantly) is cheap.

mod layer;
mod path;
mod vfs;

pub use layer::{apply_layer, diff_layers, whiteout_target, OPAQUE_MARKER, WHITEOUT_PREFIX};
pub use path::{file_name, join, normalize, parent, split};
pub use vfs::{Node, NodeKind, Vfs, VfsError};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn end_to_end_layering() {
        // Base image.
        let mut base = Vfs::new();
        base.mkdir_p("/usr/bin").unwrap();
        base.write_file("/usr/bin/sh", Bytes::from_static(b"#!shell"), 0o755)
            .unwrap();
        base.write_file_p("/etc/os-release", Bytes::from_static(b"ubuntu"), 0o644)
            .unwrap();

        // Application layer on top.
        let mut app = base.clone();
        app.write_file("/usr/bin/app", Bytes::from_static(b"ELF"), 0o755)
            .unwrap();
        app.remove("/etc/os-release").unwrap();

        // The diff must reconstruct `app` from `base`.
        let changeset = diff_layers(&base, &app);
        let mut rebuilt = base.clone();
        apply_layer(&mut rebuilt, &changeset).unwrap();
        assert_eq!(rebuilt, app);
    }
}
