//! Property tests for the layer algebra: for arbitrary filesystem states A
//! and B, `apply(A, diff(A, B)) == B`, and snapshots round-trip through tar.

use bytes::Bytes;
use comt_vfs::{apply_layer, diff_layers, Vfs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write(String, Vec<u8>, u32),
    Mkdir(String),
    Remove(String),
    Symlink(String, String),
}

fn arb_path() -> impl Strategy<Value = String> {
    // Small component alphabet so collisions (and thus removes/overwrites)
    // actually happen.
    prop::collection::vec(prop_oneof!["a", "b", "c", "d"], 1..4)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_path(), prop::collection::vec(any::<u8>(), 0..64), 0u32..0o777)
            .prop_map(|(p, c, m)| Op::Write(p, c, m)),
        arb_path().prop_map(Op::Mkdir),
        arb_path().prop_map(Op::Remove),
        (arb_path(), prop_oneof!["a", "b/c", "/d"].prop_map(String::from))
            .prop_map(|(p, t)| Op::Symlink(p, t)),
    ]
}

fn build(ops: &[Op]) -> Vfs {
    let mut fs = Vfs::new();
    for op in ops {
        // Errors (removing a missing path, symlinking over a file, symlink
        // loops on write) are legal no-ops for this test.
        let _ = match op {
            Op::Write(p, c, m) => fs.write_file_p(p, Bytes::from(c.clone()), *m),
            Op::Mkdir(p) => fs.mkdir_p(p),
            Op::Remove(p) => fs.remove(p),
            Op::Symlink(p, t) => fs.symlink(p, t),
        };
    }
    fs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn apply_diff_reconstructs(
        ops_a in prop::collection::vec(arb_op(), 0..20),
        ops_b in prop::collection::vec(arb_op(), 0..20),
    ) {
        let a = build(&ops_a);
        let mut b = a.clone();
        for op in &ops_b {
            let _ = match op {
                Op::Write(p, c, m) => b.write_file_p(p, Bytes::from(c.clone()), *m),
                Op::Mkdir(p) => b.mkdir_p(p),
                Op::Remove(p) => b.remove(p),
                Op::Symlink(p, t) => b.symlink(p, t),
            };
        }
        let changeset = diff_layers(&a, &b);
        let mut rebuilt = a.clone();
        apply_layer(&mut rebuilt, &changeset).unwrap();
        prop_assert_eq!(rebuilt, b);
    }

    #[test]
    fn diff_of_identical_is_empty(ops in prop::collection::vec(arb_op(), 0..25)) {
        let a = build(&ops);
        prop_assert!(diff_layers(&a, &a.clone()).is_empty());
    }
}
