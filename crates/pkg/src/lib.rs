//! dpkg/apt-style package management simulation.
//!
//! coMtainer "relies on the package manager of the base image to analyze the
//! application software stack" (paper §4.6): the image model learns which
//! files belong to which package from the dpkg database inside the image,
//! and the system side substitutes generic packages with optimized
//! equivalents from the target system's repositories. This crate reproduces
//! the data model those steps need:
//!
//! * [`version`] — the Debian version-ordering algorithm (epoch, `~`, digit
//!   runs), required for candidate selection,
//! * [`dep`] — dependency expressions (`libfoo (>= 1.2), libbar | libbaz`),
//! * [`Package`] / [`Repository`] — package metadata, file payloads and the
//!   per-system repositories (generic distro, x86-64 vendor, AArch64 vendor),
//! * [`resolver`] — install-closure resolution with virtual packages,
//! * [`status`] — the `/var/lib/dpkg/status` + `info/<pkg>.list` database:
//!   installing packages into a [`comt_vfs::Vfs`] and parsing the database
//!   back out of an image.
//!
//! Optimized packages carry a [`PerfTraits`] record (library domain and a
//! quality factor) consumed by the performance model when a rebuilt image
//! links against them.

pub mod catalog;
pub mod dep;
pub mod package;
pub mod repo;
pub mod resolver;
pub mod rpm;
pub mod status;
pub mod version;

pub use dep::{DepError, Dependency, DependencyList, VersionConstraint};
pub use package::{LibDomain, Package, PackageFile, PerfTraits};
pub use repo::Repository;
pub use resolver::{resolve_install, ResolveError};
pub use status::{installed_packages, install_packages, owner_index, InstallError, StatusRecord};
pub use rpm::{is_rpm_image, rpm_evr_cmp, rpm_installed_packages, rpm_install_packages, rpm_owner_index, rpmvercmp, RpmRecord};
pub use version::{cmp_versions, Version};

#[cfg(test)]
mod tests {
    use super::*;
    use comt_vfs::Vfs;

    #[test]
    fn end_to_end_install_and_introspect() {
        let repo = catalog::generic_repo("x86_64");
        let names = resolve_install(&repo, &["gcc-13".parse::<Dependency>().unwrap()]).unwrap();
        assert!(names.iter().any(|p| p.name == "gcc-13"));
        assert!(names.iter().any(|p| p.name == "libc6"));

        let mut fs = Vfs::new();
        install_packages(&mut fs, &names).unwrap();

        // The dpkg database can be read back from the filesystem.
        let installed = installed_packages(&fs).unwrap();
        assert!(installed.iter().any(|r| r.package == "gcc-13"));

        // And the owner index maps files back to packages.
        let owners = owner_index(&fs).unwrap();
        let (_path, owner) = owners
            .iter()
            .find(|(p, _)| p.contains("gcc-13"))
            .expect("gcc files present");
        assert_eq!(owner, "gcc-13");
    }
}
