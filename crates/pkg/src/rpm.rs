//! RPM package-manager support.
//!
//! The paper's prototype "only implements parsing for dpkg/apt and supports
//! Debian-based distributions only. However, our approach is equally
//! applicable to other package managers, such as RPM" (§4.6). This module
//! makes that claim concrete:
//!
//! * [`rpmvercmp`] — RPM's version comparison algorithm (segment-wise
//!   alpha/numeric comparison, `~` pre-release, `^` post-release), which
//!   differs from Debian's in several observable ways,
//! * the RPM database at `/var/lib/rpm/Packages` (a simplified textual
//!   rendering of the header store) with per-package file lists,
//! * install/introspection entry points mirroring the dpkg ones, so the
//!   image model can classify files in RPM-based images.

use crate::package::Package;
use crate::status::InstallError;
use bytes::Bytes;
use comt_vfs::Vfs;
use std::cmp::Ordering;

const RPMDB_PATH: &str = "/var/lib/rpm/Packages";

/// One installed-package record parsed back from the RPM database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpmRecord {
    pub name: String,
    /// `[epoch:]version-release`.
    pub evr: String,
    pub arch: String,
    pub files: Vec<String>,
}

// ---- rpmvercmp -----------------------------------------------------------

/// Segment type in rpmvercmp.
#[derive(PartialEq)]
enum Seg {
    Num(String),
    Alpha(String),
    Tilde,
    Caret,
}

fn segments(s: &str) -> Vec<Seg> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c == '~' {
            out.push(Seg::Tilde);
            chars.next();
        } else if c == '^' {
            out.push(Seg::Caret);
            chars.next();
        } else if c.is_ascii_digit() {
            let mut seg = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() {
                    seg.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(Seg::Num(seg));
        } else if c.is_ascii_alphabetic() {
            let mut seg = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphabetic() {
                    seg.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(Seg::Alpha(seg));
        } else {
            // Separators are skipped (any run counts as one boundary).
            chars.next();
        }
    }
    out
}

/// RPM's `rpmvercmp`: compare two version strings.
///
/// Rules (matching rpm's implementation): versions split into numeric and
/// alphabetic segments at non-alphanumeric boundaries; numeric segments
/// compare as numbers and always beat alphabetic segments; `~` sorts
/// before everything including end-of-string (pre-release); `^` sorts
/// after end-of-string but before ordinary segments (post-release);
/// a longer version wins a tie.
pub fn rpmvercmp(a: &str, b: &str) -> Ordering {
    let sa = segments(a);
    let sb = segments(b);
    let mut i = 0;
    loop {
        match (sa.get(i), sb.get(i)) {
            (None, None) => return Ordering::Equal,
            // Tilde: less than end-of-string.
            (Some(Seg::Tilde), None) => return Ordering::Less,
            (None, Some(Seg::Tilde)) => return Ordering::Greater,
            // Caret: greater than end-of-string…
            (Some(Seg::Caret), None) => return Ordering::Greater,
            (None, Some(Seg::Caret)) => return Ordering::Less,
            // …but less than any normal segment.
            (Some(Seg::Caret), Some(Seg::Caret)) | (Some(Seg::Tilde), Some(Seg::Tilde)) => {}
            (Some(Seg::Tilde), Some(_)) => return Ordering::Less,
            (Some(_), Some(Seg::Tilde)) => return Ordering::Greater,
            (Some(Seg::Caret), Some(_)) => return Ordering::Less,
            (Some(_), Some(Seg::Caret)) => return Ordering::Greater,
            // Longer version wins once one side runs out.
            (Some(_), None) => return Ordering::Greater,
            (None, Some(_)) => return Ordering::Less,
            (Some(Seg::Num(x)), Some(Seg::Num(y))) => {
                let x = x.trim_start_matches('0');
                let y = y.trim_start_matches('0');
                match x.len().cmp(&y.len()).then_with(|| x.cmp(y)) {
                    Ordering::Equal => {}
                    ord => return ord,
                }
            }
            // Numeric beats alphabetic.
            (Some(Seg::Num(_)), Some(Seg::Alpha(_))) => return Ordering::Greater,
            (Some(Seg::Alpha(_)), Some(Seg::Num(_))) => return Ordering::Less,
            (Some(Seg::Alpha(x)), Some(Seg::Alpha(y))) => match x.cmp(y) {
                Ordering::Equal => {}
                ord => return ord,
            },
        }
        i += 1;
    }
}

/// Compare full `[epoch:]version-release` strings.
pub fn rpm_evr_cmp(a: &str, b: &str) -> Ordering {
    fn split(evr: &str) -> (u32, &str, &str) {
        let (epoch, rest) = match evr.find(':') {
            Some(i) if evr[..i].chars().all(|c| c.is_ascii_digit()) && i > 0 => {
                (evr[..i].parse().unwrap_or(0), &evr[i + 1..])
            }
            _ => (0, evr),
        };
        match rest.rfind('-') {
            Some(i) => (epoch, &rest[..i], &rest[i + 1..]),
            None => (epoch, rest, ""),
        }
    }
    let (ea, va, ra) = split(a);
    let (eb, vb, rb) = split(b);
    ea.cmp(&eb)
        .then_with(|| rpmvercmp(va, vb))
        .then_with(|| rpmvercmp(ra, rb))
}

// ---- the database --------------------------------------------------------

fn record_text(pkg: &Package) -> String {
    let mut s = String::new();
    s.push_str(&format!("Name        : {}\n", pkg.name));
    s.push_str(&format!("Version     : {}\n", pkg.version.upstream));
    s.push_str(&format!(
        "Release     : {}\n",
        if pkg.version.revision.is_empty() {
            "0"
        } else {
            &pkg.version.revision
        }
    ));
    if pkg.version.epoch != 0 {
        s.push_str(&format!("Epoch       : {}\n", pkg.version.epoch));
    }
    s.push_str(&format!("Architecture: {}\n", rpm_arch(&pkg.architecture)));
    if !pkg.description.is_empty() {
        s.push_str(&format!("Summary     : {}\n", pkg.description));
    }
    s.push_str("Files       :\n");
    for f in &pkg.files {
        s.push_str(&format!("  {}\n", f.path));
    }
    s
}

/// dpkg arch → rpm arch spelling.
fn rpm_arch(dpkg_arch: &str) -> &str {
    match dpkg_arch {
        "amd64" => "x86_64",
        "arm64" => "aarch64",
        other => other,
    }
}

/// Install packages into an RPM-based image filesystem: payload files plus
/// the `/var/lib/rpm/Packages` database. Reinstalling replaces the record
/// (rpm upgrade semantics), like the dpkg path.
pub fn rpm_install_packages(fs: &mut Vfs, packages: &[Package]) -> Result<(), InstallError> {
    let mut db = fs.read_string(RPMDB_PATH).unwrap_or_default();
    let names: std::collections::BTreeSet<&str> =
        packages.iter().map(|p| p.name.as_str()).collect();
    if !db.is_empty() {
        let kept: Vec<&str> = db
            .split("\n\n")
            .filter(|rec| {
                let name = rec
                    .lines()
                    .find_map(|l| l.strip_prefix("Name        :"))
                    .map(str::trim);
                !matches!(name, Some(n) if names.contains(n))
            })
            .filter(|r| !r.trim().is_empty())
            .collect();
        db = kept.join("\n\n");
        if !db.is_empty() && !db.ends_with('\n') {
            db.push('\n');
        }
    }
    for pkg in packages {
        for f in &pkg.files {
            fs.write_file_p(&f.path, f.content.clone(), f.mode)?;
        }
        if !db.is_empty() && !db.ends_with("\n\n") {
            db.push('\n');
        }
        db.push_str(&record_text(pkg));
    }
    fs.write_file_p(RPMDB_PATH, Bytes::from(db.into_bytes()), 0o644)?;
    Ok(())
}

/// Parse the installed-package records from an RPM-based image.
pub fn rpm_installed_packages(fs: &Vfs) -> Result<Vec<RpmRecord>, InstallError> {
    let raw = match fs.read_string(RPMDB_PATH) {
        Ok(r) => r,
        Err(_) => return Ok(Vec::new()),
    };
    let mut out = Vec::new();
    for rec in raw.split("\n\n").filter(|r| !r.trim().is_empty()) {
        fn colon_or_space(c: char) -> bool {
            c == ':' || c == ' '
        }
        let field = |key: &str| -> Option<String> {
            rec.lines()
                .find_map(|l| l.strip_prefix(key))
                .map(|v| v.trim_start_matches(colon_or_space).trim().to_string())
        };
        let name = field("Name        ")
            .ok_or_else(|| InstallError::CorruptStatus(format!("missing Name in {rec:?}")))?;
        let version = field("Version     ").unwrap_or_default();
        let release = field("Release     ").unwrap_or_default();
        let epoch = field("Epoch       ");
        let arch = field("Architecture").unwrap_or_default();
        let evr = match epoch {
            Some(e) => format!("{e}:{version}-{release}"),
            None => format!("{version}-{release}"),
        };
        let mut files = Vec::new();
        let mut in_files = false;
        for line in rec.lines() {
            if line.starts_with("Files") {
                in_files = true;
                continue;
            }
            if in_files {
                if let Some(f) = line.strip_prefix("  ") {
                    files.push(f.to_string());
                } else {
                    in_files = false;
                }
            }
        }
        out.push(RpmRecord {
            name,
            evr,
            arch,
            files,
        });
    }
    Ok(out)
}

/// File → owning-package index for an RPM-based image (mirror of the dpkg
/// [`crate::owner_index`]).
pub fn rpm_owner_index(fs: &Vfs) -> Result<Vec<(String, String)>, InstallError> {
    let mut out = Vec::new();
    for rec in rpm_installed_packages(fs)? {
        for f in rec.files {
            out.push((f, rec.name.clone()));
        }
    }
    Ok(out)
}

/// Whether an image filesystem uses RPM (vs dpkg).
pub fn is_rpm_image(fs: &Vfs) -> bool {
    fs.exists(RPMDB_PATH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageFile;

    fn v(a: &str, b: &str) -> Ordering {
        rpmvercmp(a, b)
    }

    // Vectors from rpm's own test suite (rpmvercmp.at).
    #[test]
    fn rpmvercmp_basics() {
        assert_eq!(v("1.0", "1.0"), Ordering::Equal);
        assert_eq!(v("1.0", "2.0"), Ordering::Less);
        assert_eq!(v("2.0.1", "2.0"), Ordering::Greater);
        assert_eq!(v("5.5p1", "5.5p2"), Ordering::Less);
        assert_eq!(v("10xyz", "10.1xyz"), Ordering::Less);
        assert_eq!(v("xyz10", "xyz10.1"), Ordering::Less);
    }

    #[test]
    fn rpmvercmp_numeric_beats_alpha() {
        assert_eq!(v("1.0.1", "1.0a"), Ordering::Greater);
        assert_eq!(v("a", "1"), Ordering::Less);
    }

    #[test]
    fn rpmvercmp_leading_zeros() {
        assert_eq!(v("1.05", "1.5"), Ordering::Equal);
        assert_eq!(v("1.010", "1.10"), Ordering::Equal);
        assert_eq!(v("1.2", "1.10"), Ordering::Less);
    }

    #[test]
    fn rpmvercmp_tilde() {
        assert_eq!(v("1.0~rc1", "1.0"), Ordering::Less);
        assert_eq!(v("1.0~rc1", "1.0~rc2"), Ordering::Less);
        assert_eq!(v("1.0~rc1~git123", "1.0~rc1"), Ordering::Less);
    }

    #[test]
    fn rpmvercmp_caret() {
        assert_eq!(v("1.0^", "1.0"), Ordering::Greater);
        assert_eq!(v("1.0^git1", "1.0"), Ordering::Greater);
        assert_eq!(v("1.0^git1", "1.01"), Ordering::Less);
        assert_eq!(v("1.0^20160101", "1.0.1"), Ordering::Less);
    }

    #[test]
    fn rpmvercmp_separators_collapse() {
        assert_eq!(v("1..0", "1.0"), Ordering::Equal);
        assert_eq!(v("1.0", "1-0"), Ordering::Equal);
    }

    #[test]
    fn rpmvercmp_differs_from_debian() {
        // Debian: "1.0a" < "1.0+" (letters before symbols);
        // RPM drops separators, so "1.0+" == "1.0" and "1.0a" > "1.0".
        assert_eq!(v("1.0a", "1.0+"), Ordering::Greater);
        // Longer wins in RPM; Debian compares char classes.
        assert_eq!(v("1.0.1", "1.0"), Ordering::Greater);
    }

    #[test]
    fn evr_with_epoch_and_release() {
        assert_eq!(rpm_evr_cmp("1:1.0-1", "2.0-1"), Ordering::Greater);
        assert_eq!(rpm_evr_cmp("1.0-1", "1.0-2"), Ordering::Less);
        assert_eq!(rpm_evr_cmp("1.0-1.el9", "1.0-1.el8"), Ordering::Greater);
    }

    fn sample_pkg() -> Package {
        Package::new("openblas", "0.3.26-2.el9", "amd64")
            .with_description("Optimized BLAS")
            .with_file(PackageFile::new(
                "/usr/lib64/libopenblas.so.0",
                Bytes::from_static(b"BLAS"),
                0o644,
            ))
    }

    #[test]
    fn rpmdb_roundtrip() {
        let mut fs = Vfs::new();
        rpm_install_packages(&mut fs, &[sample_pkg()]).unwrap();
        assert!(is_rpm_image(&fs));
        assert!(fs.exists("/usr/lib64/libopenblas.so.0"));
        let recs = rpm_installed_packages(&fs).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "openblas");
        assert_eq!(recs[0].evr, "0.3.26-2.el9");
        assert_eq!(recs[0].arch, "x86_64");
        assert_eq!(recs[0].files, vec!["/usr/lib64/libopenblas.so.0"]);
    }

    #[test]
    fn rpm_reinstall_replaces() {
        let mut fs = Vfs::new();
        rpm_install_packages(&mut fs, &[sample_pkg()]).unwrap();
        let upgraded = Package::new("openblas", "0.3.27-1.el9", "amd64").with_file(
            PackageFile::new("/usr/lib64/libopenblas.so.0", Bytes::from_static(b"NEW"), 0o644),
        );
        rpm_install_packages(&mut fs, &[upgraded]).unwrap();
        let recs = rpm_installed_packages(&fs).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].evr, "0.3.27-1.el9");
        assert_eq!(fs.read_string("/usr/lib64/libopenblas.so.0").unwrap(), "NEW");
    }

    #[test]
    fn rpm_owner_index_maps() {
        let mut fs = Vfs::new();
        rpm_install_packages(&mut fs, &[sample_pkg()]).unwrap();
        let idx = rpm_owner_index(&fs).unwrap();
        assert_eq!(
            idx,
            vec![("/usr/lib64/libopenblas.so.0".to_string(), "openblas".to_string())]
        );
    }

    #[test]
    fn non_rpm_image_is_empty() {
        let fs = Vfs::new();
        assert!(!is_rpm_image(&fs));
        assert!(rpm_installed_packages(&fs).unwrap().is_empty());
    }
}
