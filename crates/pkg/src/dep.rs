//! Dependency expressions: `libfoo (>= 1.2), libbar | libbaz (= 2.0)`.

use crate::version::{cmp_versions, Version};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A version constraint operator, Debian syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `<<` strictly earlier
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>>` strictly later
    Gt,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintOp::Lt => "<<",
            ConstraintOp::Le => "<=",
            ConstraintOp::Eq => "=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Gt => ">>",
        };
        write!(f, "{s}")
    }
}

/// `(op version)` part of a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionConstraint {
    pub op: ConstraintOp,
    pub version: Version,
}

impl VersionConstraint {
    /// Whether `candidate` satisfies this constraint.
    pub fn satisfied_by(&self, candidate: &Version) -> bool {
        let ord = cmp_versions(candidate, &self.version);
        match self.op {
            ConstraintOp::Lt => ord == Ordering::Less,
            ConstraintOp::Le => ord != Ordering::Greater,
            ConstraintOp::Eq => ord == Ordering::Equal,
            ConstraintOp::Ge => ord != Ordering::Less,
            ConstraintOp::Gt => ord == Ordering::Greater,
        }
    }
}

/// One dependency alternative: package name + optional version constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleDep {
    pub name: String,
    pub constraint: Option<VersionConstraint>,
}

impl SimpleDep {
    pub fn matches(&self, name: &str, version: &Version) -> bool {
        self.name == name
            && self
                .constraint
                .as_ref()
                .map(|c| c.satisfied_by(version))
                .unwrap_or(true)
    }
}

impl fmt::Display for SimpleDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(c) = &self.constraint {
            write!(f, " ({} {})", c.op, c.version)?;
        }
        Ok(())
    }
}

/// A dependency with alternatives: `a | b | c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependency {
    pub alternatives: Vec<SimpleDep>,
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.alternatives.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(" | "))
    }
}

/// A full dependency list: comma-separated [`Dependency`]s.
pub type DependencyList = Vec<Dependency>;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepError {
    Empty,
    BadConstraint(String),
    UnbalancedParens(String),
}

impl fmt::Display for DepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepError::Empty => write!(f, "empty dependency"),
            DepError::BadConstraint(s) => write!(f, "bad version constraint: {s}"),
            DepError::UnbalancedParens(s) => write!(f, "unbalanced parentheses in: {s}"),
        }
    }
}

impl std::error::Error for DepError {}

fn parse_simple(s: &str) -> Result<SimpleDep, DepError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(DepError::Empty);
    }
    match s.find('(') {
        None => {
            if s.contains(')') {
                return Err(DepError::UnbalancedParens(s.to_string()));
            }
            Ok(SimpleDep {
                name: s.to_string(),
                constraint: None,
            })
        }
        Some(open) => {
            let name = s[..open].trim().to_string();
            if name.is_empty() {
                return Err(DepError::Empty);
            }
            let close = s.rfind(')').ok_or_else(|| DepError::UnbalancedParens(s.into()))?;
            let inner = s[open + 1..close].trim();
            let (op, rest) = if let Some(r) = inner.strip_prefix(">=") {
                (ConstraintOp::Ge, r)
            } else if let Some(r) = inner.strip_prefix("<=") {
                (ConstraintOp::Le, r)
            } else if let Some(r) = inner.strip_prefix(">>") {
                (ConstraintOp::Gt, r)
            } else if let Some(r) = inner.strip_prefix("<<") {
                (ConstraintOp::Lt, r)
            } else if let Some(r) = inner.strip_prefix('=') {
                (ConstraintOp::Eq, r)
            } else {
                return Err(DepError::BadConstraint(inner.to_string()));
            };
            let vstr = rest.trim();
            if vstr.is_empty() {
                return Err(DepError::BadConstraint(inner.to_string()));
            }
            Ok(SimpleDep {
                name,
                constraint: Some(VersionConstraint {
                    op,
                    version: Version::new(vstr),
                }),
            })
        }
    }
}

impl FromStr for Dependency {
    type Err = DepError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let alternatives: Result<Vec<SimpleDep>, DepError> =
            s.split('|').map(parse_simple).collect();
        let alternatives = alternatives?;
        if alternatives.is_empty() {
            return Err(DepError::Empty);
        }
        Ok(Dependency { alternatives })
    }
}

/// Parse a comma-separated dependency list (the `Depends:` field).
pub fn parse_list(s: &str) -> Result<DependencyList, DepError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|d| d.parse()).collect()
}

/// Render a dependency list back to `Depends:` syntax.
pub fn format_list(deps: &[Dependency]) -> String {
    deps.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_name() {
        let d: Dependency = "libm".parse().unwrap();
        assert_eq!(d.alternatives.len(), 1);
        assert_eq!(d.alternatives[0].name, "libm");
        assert!(d.alternatives[0].constraint.is_none());
    }

    #[test]
    fn parse_with_constraint() {
        let d: Dependency = "libc6 (>= 2.38)".parse().unwrap();
        let c = d.alternatives[0].constraint.as_ref().unwrap();
        assert_eq!(c.op, ConstraintOp::Ge);
        assert_eq!(c.version.upstream, "2.38");
    }

    #[test]
    fn parse_alternatives() {
        let d: Dependency = "mpich | openmpi (>= 4.0)".parse().unwrap();
        assert_eq!(d.alternatives.len(), 2);
        assert_eq!(d.alternatives[0].name, "mpich");
        assert_eq!(d.alternatives[1].name, "openmpi");
        assert!(d.alternatives[1].constraint.is_some());
    }

    #[test]
    fn parse_full_list() {
        let l = parse_list("libc6 (>= 2.38), libstdc++6, zlib1g | zlib-ng").unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(format_list(&l), "libc6 (>= 2.38), libstdc++6, zlib1g | zlib-ng");
    }

    #[test]
    fn parse_empty_list_ok() {
        assert!(parse_list("").unwrap().is_empty());
        assert!(parse_list("  ").unwrap().is_empty());
    }

    #[test]
    fn parse_all_operators() {
        for (s, op) in [
            ("p (<< 1)", ConstraintOp::Lt),
            ("p (<= 1)", ConstraintOp::Le),
            ("p (= 1)", ConstraintOp::Eq),
            ("p (>= 1)", ConstraintOp::Ge),
            ("p (>> 1)", ConstraintOp::Gt),
        ] {
            let d: Dependency = s.parse().unwrap();
            assert_eq!(d.alternatives[0].constraint.as_ref().unwrap().op, op);
        }
    }

    #[test]
    fn constraint_satisfaction() {
        let d: Dependency = "p (>= 1.5)".parse().unwrap();
        let c = d.alternatives[0].constraint.as_ref().unwrap();
        assert!(c.satisfied_by(&Version::new("1.5")));
        assert!(c.satisfied_by(&Version::new("2.0")));
        assert!(!c.satisfied_by(&Version::new("1.4.9")));
    }

    #[test]
    fn strict_operators_exclude_equal() {
        let lt = VersionConstraint {
            op: ConstraintOp::Lt,
            version: Version::new("2.0"),
        };
        assert!(!lt.satisfied_by(&Version::new("2.0")));
        assert!(lt.satisfied_by(&Version::new("2.0~rc1")));
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Dependency>().is_err());
        assert!("p (~> 1)".parse::<Dependency>().is_err());
        assert!("p (>= )".parse::<Dependency>().is_err());
        assert!("p )".parse::<Dependency>().is_err());
        assert!("(>= 1)".parse::<Dependency>().is_err());
    }

    #[test]
    fn matches_by_name_and_version() {
        let d: Dependency = "libblas (>= 3)".parse().unwrap();
        assert!(d.alternatives[0].matches("libblas", &Version::new("3.11")));
        assert!(!d.alternatives[0].matches("libblas", &Version::new("2.9")));
        assert!(!d.alternatives[0].matches("liblapack", &Version::new("3.11")));
    }
}
