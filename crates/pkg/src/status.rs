//! The dpkg on-disk database: `/var/lib/dpkg/status` and
//! `/var/lib/dpkg/info/<pkg>.list`.
//!
//! coMtainer's image model parses this database *out of the final image* to
//! classify files by owning package (paper §4.5: "dpkg/apt data inside the
//! image are parsed further to get the dependency list needed by the image
//! model"). We therefore implement both directions: installing packages
//! writes the database into the [`Vfs`], and analysis parses it back.

use crate::dep;
use crate::package::Package;
use crate::version::Version;
use bytes::Bytes;
use comt_vfs::{Vfs, VfsError};
use std::collections::BTreeMap;
use std::fmt;

const STATUS_PATH: &str = "/var/lib/dpkg/status";
const INFO_DIR: &str = "/var/lib/dpkg/info";

/// One paragraph of the status file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusRecord {
    pub package: String,
    pub version: Version,
    pub architecture: String,
    pub depends: String,
    pub provides: String,
    pub description: String,
    pub essential: bool,
}

impl StatusRecord {
    /// Parse the `Depends:` field into structured form.
    pub fn depends_list(&self) -> Result<dep::DependencyList, dep::DepError> {
        dep::parse_list(&self.depends)
    }
}

/// Installation failure.
#[derive(Debug)]
pub enum InstallError {
    Fs(VfsError),
    /// The status database in an image is malformed.
    CorruptStatus(String),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Fs(e) => write!(f, "filesystem error: {e}"),
            InstallError::CorruptStatus(e) => write!(f, "corrupt dpkg status: {e}"),
        }
    }
}

impl std::error::Error for InstallError {}

impl From<VfsError> for InstallError {
    fn from(e: VfsError) -> Self {
        InstallError::Fs(e)
    }
}

fn status_paragraph(pkg: &Package) -> String {
    let mut s = String::new();
    s.push_str(&format!("Package: {}\n", pkg.name));
    s.push_str("Status: install ok installed\n");
    if pkg.essential {
        s.push_str("Essential: yes\n");
    }
    s.push_str(&format!("Architecture: {}\n", pkg.architecture));
    s.push_str(&format!("Version: {}\n", pkg.version));
    if !pkg.provides.is_empty() {
        s.push_str(&format!("Provides: {}\n", pkg.provides.join(", ")));
    }
    if !pkg.depends.is_empty() {
        s.push_str(&format!("Depends: {}\n", dep::format_list(&pkg.depends)));
    }
    if !pkg.description.is_empty() {
        s.push_str(&format!("Description: {}\n", pkg.description));
    }
    s
}

/// Install packages into a filesystem: write payload files, the `.list`
/// file-ownership records, and append to the status database. Installing a
/// package already present *replaces* its record and payload (dpkg upgrade
/// semantics) — this is how the redirect step swaps generic base libraries
/// for vendor builds.
pub fn install_packages(fs: &mut Vfs, packages: &[Package]) -> Result<(), InstallError> {
    fs.mkdir_p(INFO_DIR)?;
    let mut status = fs.read_string(STATUS_PATH).unwrap_or_default();
    // Drop records for packages being (re)installed.
    let names: std::collections::BTreeSet<&str> =
        packages.iter().map(|p| p.name.as_str()).collect();
    if !status.is_empty() {
        let kept: Vec<&str> = status
            .split("\n\n")
            .filter(|para| {
                let name = para
                    .lines()
                    .find_map(|l| l.strip_prefix("Package:"))
                    .map(str::trim);
                !matches!(name, Some(n) if names.contains(n))
            })
            .filter(|p| !p.trim().is_empty())
            .collect();
        status = kept.join("\n\n");
        if !status.is_empty() && !status.ends_with('\n') {
            status.push('\n');
        }
    }

    for pkg in packages {
        let mut list = String::new();
        for f in &pkg.files {
            fs.write_file_p(&f.path, f.content.clone(), f.mode)?;
            list.push_str(&f.path);
            list.push('\n');
        }
        fs.write_file_p(
            &format!("{INFO_DIR}/{}.list", pkg.name),
            Bytes::from(list.into_bytes()),
            0o644,
        )?;
        if !status.is_empty() && !status.ends_with("\n\n") {
            status.push('\n');
        }
        status.push_str(&status_paragraph(pkg));
    }

    fs.write_file_p(STATUS_PATH, Bytes::from(status.into_bytes()), 0o644)?;
    Ok(())
}

/// Parse the installed-package records from an image filesystem.
pub fn installed_packages(fs: &Vfs) -> Result<Vec<StatusRecord>, InstallError> {
    let raw = match fs.read_string(STATUS_PATH) {
        Ok(r) => r,
        Err(_) => return Ok(Vec::new()), // no dpkg database: not a Debian-ish image
    };
    let mut out = Vec::new();
    for para in raw.split("\n\n").filter(|p| !p.trim().is_empty()) {
        let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
        for line in para.lines() {
            if let Some((k, v)) = line.split_once(':') {
                fields.insert(k.trim(), v.trim());
            }
        }
        let package = fields
            .get("Package")
            .ok_or_else(|| InstallError::CorruptStatus(format!("missing Package in: {para:?}")))?
            .to_string();
        let version = fields
            .get("Version")
            .ok_or_else(|| InstallError::CorruptStatus(format!("missing Version for {package}")))?;
        out.push(StatusRecord {
            package,
            version: Version::new(version),
            architecture: fields.get("Architecture").unwrap_or(&"").to_string(),
            depends: fields.get("Depends").unwrap_or(&"").to_string(),
            provides: fields.get("Provides").unwrap_or(&"").to_string(),
            description: fields.get("Description").unwrap_or(&"").to_string(),
            essential: fields.get("Essential") == Some(&"yes"),
        });
    }
    Ok(out)
}

/// Build the file → owning-package index from the `.list` files in an image.
pub fn owner_index(fs: &Vfs) -> Result<Vec<(String, String)>, InstallError> {
    let mut out = Vec::new();
    let lists = fs.find_files(|p| p.starts_with(INFO_DIR) && p.ends_with(".list"));
    for list_path in lists {
        let pkg = comt_vfs::file_name(&list_path)
            .trim_end_matches(".list")
            .to_string();
        let content = fs.read_string(&list_path)?;
        for line in content.lines().filter(|l| !l.is_empty()) {
            out.push((line.to_string(), pkg.clone()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageFile;

    fn libfoo() -> Package {
        Package::new("libfoo", "1.2-3", "amd64")
            .with_depends("libc6 (>= 2.30)")
            .with_provides(&["libfoo-abi1"])
            .with_description("Example shared library")
            .with_file(PackageFile::new(
                "/usr/lib/libfoo.so.1",
                Bytes::from_static(b"FOO"),
                0o644,
            ))
    }

    #[test]
    fn install_writes_payload_and_db() {
        let mut fs = Vfs::new();
        install_packages(&mut fs, &[libfoo()]).unwrap();
        assert_eq!(fs.read_string("/usr/lib/libfoo.so.1").unwrap(), "FOO");
        assert!(fs.exists("/var/lib/dpkg/status"));
        assert!(fs.exists("/var/lib/dpkg/info/libfoo.list"));
    }

    #[test]
    fn status_roundtrip() {
        let mut fs = Vfs::new();
        install_packages(&mut fs, &[libfoo()]).unwrap();
        let recs = installed_packages(&fs).unwrap();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.package, "libfoo");
        assert_eq!(r.version.to_string(), "1.2-3");
        assert_eq!(r.architecture, "amd64");
        assert_eq!(r.provides, "libfoo-abi1");
        let deps = r.depends_list().unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].alternatives[0].name, "libc6");
    }

    #[test]
    fn incremental_installs_append() {
        let mut fs = Vfs::new();
        install_packages(&mut fs, &[libfoo()]).unwrap();
        install_packages(&mut fs, &[Package::new("bar", "2.0", "amd64").essential()]).unwrap();
        let recs = installed_packages(&fs).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().any(|r| r.package == "bar" && r.essential));
    }

    #[test]
    fn owner_index_maps_files() {
        let mut fs = Vfs::new();
        install_packages(&mut fs, &[libfoo()]).unwrap();
        let idx = owner_index(&fs).unwrap();
        assert!(idx.contains(&("/usr/lib/libfoo.so.1".to_string(), "libfoo".to_string())));
    }

    #[test]
    fn no_database_is_empty_not_error() {
        let fs = Vfs::new();
        assert!(installed_packages(&fs).unwrap().is_empty());
        assert!(owner_index(&fs).unwrap().is_empty());
    }

    #[test]
    fn corrupt_status_reported() {
        let mut fs = Vfs::new();
        fs.write_file_p(
            STATUS_PATH,
            Bytes::from_static(b"Version: 1.0\n"),
            0o644,
        )
        .unwrap();
        assert!(matches!(
            installed_packages(&fs),
            Err(InstallError::CorruptStatus(_))
        ));
    }
}
