//! Debian version comparison (deb-version(7)).
//!
//! A version is `[epoch:]upstream[-revision]`. Comparison walks alternating
//! non-digit / digit runs; in non-digit runs `~` sorts before everything
//! (including the empty string), letters sort before non-letters, and
//! otherwise byte order applies.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A parsed Debian version.
///
/// Equality follows the comparison algorithm (so `1.02 == 1.2`), keeping
/// `Eq` consistent with `Ord` as the trait contract requires.
#[derive(Debug, Clone)]
pub struct Version {
    pub epoch: u32,
    pub upstream: String,
    pub revision: String,
}

impl PartialEq for Version {
    fn eq(&self, other: &Self) -> bool {
        cmp_versions(self, other) == Ordering::Equal
    }
}

impl Eq for Version {}

impl Version {
    pub fn new(s: &str) -> Self {
        s.parse().expect("infallible")
    }
}

impl FromStr for Version {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (epoch, rest) = match s.find(':') {
            Some(i) if s[..i].chars().all(|c| c.is_ascii_digit()) && i > 0 => {
                (s[..i].parse().unwrap_or(0), &s[i + 1..])
            }
            _ => (0, s),
        };
        let (upstream, revision) = match rest.rfind('-') {
            Some(i) => (rest[..i].to_string(), rest[i + 1..].to_string()),
            None => (rest.to_string(), String::new()),
        };
        Ok(Version {
            epoch,
            upstream,
            revision,
        })
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.epoch != 0 {
            write!(f, "{}:", self.epoch)?;
        }
        write!(f, "{}", self.upstream)?;
        if !self.revision.is_empty() {
            write!(f, "-{}", self.revision)?;
        }
        Ok(())
    }
}

/// Order of a character inside a non-digit run: `~` < end-of-string <
/// letters < everything else (by byte value).
fn char_order(c: Option<u8>) -> i32 {
    match c {
        Some(b'~') => -1,
        None => 0,
        Some(c) if c.is_ascii_alphabetic() => c as i32,
        Some(c) => c as i32 + 256,
    }
}

/// Compare two version *parts* (upstream or revision strings).
fn cmp_part(a: &str, b: &str) -> Ordering {
    let a = a.as_bytes();
    let b = b.as_bytes();
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        // Non-digit run.
        while i < a.len() && !a[i].is_ascii_digit() || j < b.len() && !b[j].is_ascii_digit() {
            let ca = if i < a.len() && !a[i].is_ascii_digit() {
                Some(a[i])
            } else {
                None
            };
            let cb = if j < b.len() && !b[j].is_ascii_digit() {
                Some(b[j])
            } else {
                None
            };
            match char_order(ca).cmp(&char_order(cb)) {
                Ordering::Equal => {}
                ord => return ord,
            }
            if ca.is_some() {
                i += 1;
            }
            if cb.is_some() {
                j += 1;
            }
            if ca.is_none() && cb.is_none() {
                break;
            }
        }
        if i >= a.len() && j >= b.len() {
            return Ordering::Equal;
        }
        // Digit run: compare numerically (skip leading zeros).
        let di = i;
        while i < a.len() && a[i].is_ascii_digit() {
            i += 1;
        }
        let dj = j;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
        let na = std::str::from_utf8(&a[di..i]).unwrap().trim_start_matches('0');
        let nb = std::str::from_utf8(&b[dj..j]).unwrap().trim_start_matches('0');
        match na.len().cmp(&nb.len()).then_with(|| na.cmp(nb)) {
            Ordering::Equal => {}
            ord => return ord,
        }
        if i >= a.len() && j >= b.len() {
            return Ordering::Equal;
        }
    }
}

/// Full version comparison: epoch, then upstream, then revision.
pub fn cmp_versions(a: &Version, b: &Version) -> Ordering {
    a.epoch
        .cmp(&b.epoch)
        .then_with(|| cmp_part(&a.upstream, &b.upstream))
        .then_with(|| cmp_part(&a.revision, &b.revision))
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_versions(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::new(s)
    }

    #[test]
    fn parse_fields() {
        let x = v("2:1.2.3-4ubuntu5");
        assert_eq!(x.epoch, 2);
        assert_eq!(x.upstream, "1.2.3");
        assert_eq!(x.revision, "4ubuntu5");
        assert_eq!(x.to_string(), "2:1.2.3-4ubuntu5");
    }

    #[test]
    fn parse_no_epoch_no_revision() {
        let x = v("13.2.0");
        assert_eq!(x.epoch, 0);
        assert_eq!(x.revision, "");
        assert_eq!(x.to_string(), "13.2.0");
    }

    #[test]
    fn hyphen_in_upstream_splits_at_last() {
        let x = v("1.0-rc1-3");
        assert_eq!(x.upstream, "1.0-rc1");
        assert_eq!(x.revision, "3");
    }

    #[test]
    fn numeric_ordering() {
        assert!(v("1.9") < v("1.10"));
        assert!(v("1.02") == v("1.2"));
        assert!(v("10") > v("9"));
    }

    #[test]
    fn epoch_dominates() {
        assert!(v("1:0.1") > v("9.9"));
    }

    #[test]
    fn tilde_sorts_before_release() {
        assert!(v("1.0~rc1") < v("1.0"));
        assert!(v("1.0~rc1") < v("1.0~rc2"));
        assert!(v("1.0~~") < v("1.0~a"));
    }

    #[test]
    fn letters_before_symbols() {
        assert!(v("1.0a") < v("1.0+"));
        // Trailing letters sort after end-of-string (only `~` sorts before).
        assert!(v("1.0alpha") > v("1.0-1"));
    }

    #[test]
    fn revision_breaks_ties() {
        assert!(v("1.0-1") < v("1.0-2"));
        assert!(v("1.0-1ubuntu1") > v("1.0-1"));
    }

    #[test]
    fn classic_debian_policy_examples() {
        // From Debian policy / dpkg test suite.
        let ordered = [
            "~~", "~~a", "~", "", "a",
        ];
        for w in ordered.windows(2) {
            let a = v(&format!("1.0{}", w[0]));
            let b = v(&format!("1.0{}", w[1]));
            assert!(a < b, "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn total_order_transitivity_spotcheck() {
        let versions: Vec<Version> = ["1.0", "1.0~rc1", "1.0-1", "2:0.5", "1.0a", "1.0+dfsg"]
            .iter()
            .map(|s| v(s))
            .collect();
        let mut sorted = versions.clone();
        sorted.sort();
        // Sorting twice gives the same order (total order sanity).
        let mut again = sorted.clone();
        again.sort();
        assert_eq!(sorted, again);
    }
}
