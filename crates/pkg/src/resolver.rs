//! Install-closure resolution.
//!
//! Given a set of requested dependencies and a repository, compute the full
//! set of packages to install, following `Depends:` transitively, choosing
//! the first satisfiable alternative, and supporting virtual packages. The
//! result is returned in dependency order (dependencies before dependents)
//! so installation can proceed linearly.

use crate::dep::Dependency;
use crate::package::Package;
use crate::repo::Repository;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No candidate in the repository satisfies any alternative.
    Unsatisfiable {
        dependency: String,
        required_by: String,
    },
    /// Two resolved packages claim the same name at different versions.
    VersionConflict {
        package: String,
        first: String,
        second: String,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Unsatisfiable {
                dependency,
                required_by,
            } => write!(f, "unsatisfiable dependency {dependency} (required by {required_by})"),
            ResolveError::VersionConflict {
                package,
                first,
                second,
            } => write!(f, "version conflict on {package}: {first} vs {second}"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Resolve the install closure of `requested` against `repo`.
pub fn resolve_install(
    repo: &Repository,
    requested: &[Dependency],
) -> Result<Vec<Package>, ResolveError> {
    let mut chosen: BTreeMap<String, Package> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut visiting: BTreeSet<String> = BTreeSet::new();

    fn visit(
        repo: &Repository,
        dep: &Dependency,
        required_by: &str,
        chosen: &mut BTreeMap<String, Package>,
        order: &mut Vec<String>,
        visiting: &mut BTreeSet<String>,
    ) -> Result<(), ResolveError> {
        // Already satisfied by a chosen package?
        for alt in &dep.alternatives {
            if let Some(existing) = chosen
                .values()
                .find(|p| p.satisfies_name(&alt.name))
            {
                if alt.matches(&existing.name, &existing.version)
                    || existing.provides.iter().any(|v| v == &alt.name)
                {
                    return Ok(());
                }
                // Same name but constraint violated → conflict.
                if existing.name == alt.name {
                    if let Some(c) = &alt.constraint {
                        return Err(ResolveError::VersionConflict {
                            package: alt.name.clone(),
                            first: existing.version.to_string(),
                            second: format!("{} {}", c.op, c.version),
                        });
                    }
                }
            }
        }
        // Pick the first alternative with a candidate.
        let candidate = dep
            .alternatives
            .iter()
            .find_map(|alt| repo.candidate(alt))
            .ok_or_else(|| ResolveError::Unsatisfiable {
                dependency: dep.to_string(),
                required_by: required_by.to_string(),
            })?
            .clone();

        if visiting.contains(&candidate.name) {
            // Dependency cycle (dpkg tolerates these); the package is
            // already being processed, so just let the cycle close.
            return Ok(());
        }
        visiting.insert(candidate.name.clone());
        for d in candidate.depends.clone() {
            visit(repo, &d, &candidate.name, chosen, order, visiting)?;
        }
        visiting.remove(&candidate.name);

        if !chosen.contains_key(&candidate.name) {
            order.push(candidate.name.clone());
            chosen.insert(candidate.name.clone(), candidate);
        }
        Ok(())
    }

    for dep in requested {
        visit(repo, dep, "(user request)", &mut chosen, &mut order, &mut visiting)?;
    }

    Ok(order
        .into_iter()
        .map(|n| chosen.remove(&n).expect("ordered name chosen"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(s: &str) -> Dependency {
        s.parse().unwrap()
    }

    fn repo() -> Repository {
        let mut r = Repository::new("t");
        r.add(Package::new("libc6", "2.39-1", "amd64"));
        r.add(Package::new("libstdc++6", "13.2-1", "amd64").with_depends("libc6 (>= 2.30)"));
        r.add(
            Package::new("gcc-13", "13.2-1", "amd64")
                .with_depends("libc6 (>= 2.30), binutils"),
        );
        r.add(Package::new("binutils", "2.42-1", "amd64").with_depends("libc6"));
        r.add(
            Package::new("mpich", "4.1-2", "amd64")
                .with_depends("libc6")
                .with_provides(&["mpi"]),
        );
        r.add(
            Package::new("openmpi", "4.1.6-1", "amd64")
                .with_depends("libc6")
                .with_provides(&["mpi"]),
        );
        r
    }

    #[test]
    fn closure_is_dependency_ordered() {
        let got = resolve_install(&repo(), &[dep("gcc-13")]).unwrap();
        let names: Vec<&str> = got.iter().map(|p| p.name.as_str()).collect();
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("libc6") < pos("binutils"));
        assert!(pos("binutils") < pos("gcc-13"));
    }

    #[test]
    fn no_duplicates() {
        let got = resolve_install(&repo(), &[dep("gcc-13"), dep("libstdc++6")]).unwrap();
        let mut names: Vec<&str> = got.iter().map(|p| p.name.as_str()).collect();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        // libc6 appears exactly once despite being required 3 times.
        assert_eq!(got.iter().filter(|p| p.name == "libc6").count(), 1);
    }

    #[test]
    fn virtual_package_resolved() {
        let got = resolve_install(&repo(), &[dep("mpi")]).unwrap();
        assert!(got.iter().any(|p| p.provides.contains(&"mpi".to_string())));
    }

    #[test]
    fn alternative_fallback() {
        let got = resolve_install(&repo(), &[dep("nonexistent | gcc-13")]).unwrap();
        assert!(got.iter().any(|p| p.name == "gcc-13"));
    }

    #[test]
    fn virtual_already_satisfied_not_duplicated() {
        let got = resolve_install(&repo(), &[dep("mpich"), dep("mpi")]).unwrap();
        // mpich provides mpi; openmpi must not be pulled.
        assert!(got.iter().any(|p| p.name == "mpich"));
        assert!(!got.iter().any(|p| p.name == "openmpi"));
    }

    #[test]
    fn unsatisfiable_reports_chain() {
        let err = resolve_install(&repo(), &[dep("no-such-pkg")]).unwrap_err();
        match err {
            ResolveError::Unsatisfiable {
                dependency,
                required_by,
            } => {
                assert_eq!(dependency, "no-such-pkg");
                assert_eq!(required_by, "(user request)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsatisfiable_transitive() {
        let mut r = repo();
        r.add(Package::new("broken", "1.0", "amd64").with_depends("ghost-lib"));
        let err = resolve_install(&r, &[dep("broken")]).unwrap_err();
        assert!(matches!(err, ResolveError::Unsatisfiable { required_by, .. } if required_by == "broken"));
    }

    #[test]
    fn version_conflict_detected() {
        let mut r = repo();
        r.add(Package::new("appA", "1.0", "amd64").with_depends("libc6 (>= 2.30)"));
        r.add(Package::new("appB", "1.0", "amd64").with_depends("libc6 (<< 2.0)"));
        let err = resolve_install(&r, &[dep("appA"), dep("appB")]).unwrap_err();
        // libc6 2.39 chosen for appA violates appB's << 2.0.
        assert!(matches!(err, ResolveError::VersionConflict { .. }));
    }

    #[test]
    fn dependency_cycle_tolerated() {
        let mut r = Repository::new("cyc");
        r.add(Package::new("a", "1.0", "amd64").with_depends("b"));
        r.add(Package::new("b", "1.0", "amd64").with_depends("a"));
        let got = resolve_install(&r, &[dep("a")]).unwrap();
        assert_eq!(got.len(), 2);
    }
}
