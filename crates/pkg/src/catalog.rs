//! The simulated package ecosystems.
//!
//! Three repositories exist per the paper's setting:
//!
//! * the **generic distro** repository (`nebula`, Ubuntu-24.04-like): default
//!   toolchain and libraries every user-side image builds against,
//! * the **x86-64 vendor** repository: the target HPC system's software
//!   stack (optimized BLAS/math/FFT, vendor MPI with high-speed-network
//!   plugins, vendor compiler packages),
//! * the **AArch64 vendor** repository: same idea for the Phytium-like
//!   system.
//!
//! Vendor packages reuse the distro package *names* at higher versions with
//! a vendor revision (`-1vendor1`), so merging a vendor repository over the
//! distro one makes the resolver naturally prefer the optimized stack —
//! exactly the package-replacement optimization of paper §4.4.
//!
//! Package payload sizes are calibrated (at `scale = 1.0`) so that base +
//! runtime stacks land near the paper's Table 3 image sizes: ~170 MiB
//! (x86-64) and ~95 MiB (AArch64). Tests use [`MINI_SCALE`] to keep
//! fixtures fast.

use crate::package::{LibDomain, Package, PackageFile, PerfTraits};
use crate::repo::Repository;
use bytes::Bytes;

/// Scale factor for fast test fixtures (payloads shrunk 256×).
pub const MINI_SCALE: f64 = 1.0 / 256.0;

/// Map an ISA name to the dpkg architecture string.
pub fn dpkg_arch(isa: &str) -> &'static str {
    match isa {
        "x86_64" => "amd64",
        "aarch64" => "arm64",
        _ => "all",
    }
}

/// Payload size multiplier per ISA: the paper observes "x86-64 has a more
/// bloated software stack" (Table 3: 170 vs 95 MiB images).
fn arch_factor(isa: &str) -> f64 {
    match isa {
        "aarch64" => 0.55,
        _ => 1.0,
    }
}

/// Deterministic pseudo-random bytes for package payloads (xorshift64*
/// seeded from the seed string), so image digests are reproducible.
pub fn synth_bytes(seed: &str, len: usize) -> Bytes {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed.bytes() {
        state ^= b as u64;
        state = state.wrapping_mul(0x1000_0000_01b3);
    }
    if state == 0 {
        state = 0x9e37_79b9_7f4a_7c15;
    }
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(len);
    Bytes::from(out)
}

/// Payload size in bytes for a package file.
fn sized(kib: f64, isa: &str, scale: f64) -> usize {
    ((kib * 1024.0 * arch_factor(isa) * scale) as usize).max(16)
}

struct PkgSpec {
    name: &'static str,
    version: &'static str,
    kib: f64,
    depends: &'static str,
    provides: &'static [&'static str],
    description: &'static str,
    perf: PerfTraits,
    essential: bool,
    /// Install paths; payload is split evenly across them.
    paths: &'static [&'static str],
}

impl PkgSpec {
    fn build(&self, isa: &str, scale: f64) -> Package {
        let total = sized(self.kib, isa, scale);
        let per_file = (total / self.paths.len().max(1)).max(16);
        let mut p = Package::new(self.name, self.version, dpkg_arch(isa))
            .with_depends(self.depends)
            .with_provides(self.provides)
            .with_description(self.description)
            .with_perf(self.perf);
        if self.essential {
            p = p.essential();
        }
        for path in self.paths {
            let seed = format!("{}:{}:{}:{}", self.name, self.version, isa, path);
            p = p.with_file(PackageFile::new(
                path.to_string(),
                synth_bytes(&seed, per_file),
                if path.contains("/bin/") { 0o755 } else { 0o644 },
            ));
        }
        p
    }
}

const NEUTRAL: PerfTraits = PerfTraits {
    domain: LibDomain::None,
    quality: 1.0,
    native_interconnect: false,
};

const fn lib(domain: LibDomain, quality: f64, native_interconnect: bool) -> PerfTraits {
    PerfTraits {
        domain,
        quality,
        native_interconnect,
    }
}

/// Packages pre-installed in the distro base image (the `dist` stage base).
/// Sizes sum to ≈ 150 MiB on x86-64 at scale 1.0.
fn base_specs() -> Vec<PkgSpec> {
    vec![
        PkgSpec { name: "base-files", version: "13ubuntu10", kib: 400.0, depends: "", provides: &[], description: "Debian base system files", perf: NEUTRAL, essential: true, paths: &["/etc/debian_version", "/usr/share/base-files/motd"] },
        PkgSpec { name: "libc6", version: "2.39-0ubuntu8", kib: 13_300.0, depends: "", provides: &["libc.so.6", "libm.so.6"], description: "GNU C Library: shared libraries", perf: lib(LibDomain::StdC, 1.0, false), essential: true, paths: &["/usr/lib/libc.so.6", "/usr/lib/libm.so.6", "/usr/lib/ld-linux.so.2"] },
        PkgSpec { name: "libgcc-s1", version: "14-20240412-0ubuntu1", kib: 950.0, depends: "libc6", provides: &[], description: "GCC support library", perf: NEUTRAL, essential: true, paths: &["/usr/lib/libgcc_s.so.1"] },
        PkgSpec { name: "libstdc++6", version: "14-20240412-0ubuntu1", kib: 2_850.0, depends: "libc6, libgcc-s1", provides: &["libstdc++.so.6"], description: "GNU Standard C++ Library v3", perf: lib(LibDomain::StdCxx, 1.0, false), essential: true, paths: &["/usr/lib/libstdc++.so.6"] },
        PkgSpec { name: "bash", version: "5.2.21-2ubuntu4", kib: 7_200.0, depends: "libc6", provides: &["sh"], description: "GNU Bourne Again SHell", perf: NEUTRAL, essential: true, paths: &["/usr/bin/bash", "/usr/bin/sh"] },
        PkgSpec { name: "coreutils", version: "9.4-3ubuntu6", kib: 18_500.0, depends: "libc6", provides: &[], description: "GNU core utilities", perf: NEUTRAL, essential: true, paths: &["/usr/bin/cp", "/usr/bin/ls", "/usr/bin/install", "/usr/bin/mkdir", "/usr/bin/cat"] },
        PkgSpec { name: "dpkg", version: "1.22.6ubuntu6", kib: 6_900.0, depends: "libc6", provides: &[], description: "Debian package management system", perf: NEUTRAL, essential: true, paths: &["/usr/bin/dpkg", "/usr/bin/dpkg-query"] },
        PkgSpec { name: "apt", version: "2.7.14", kib: 4_500.0, depends: "libc6, libstdc++6", provides: &[], description: "commandline package manager", perf: NEUTRAL, essential: true, paths: &["/usr/bin/apt", "/usr/bin/apt-get"] },
        PkgSpec { name: "perl-base", version: "5.38.2-3.2", kib: 39_000.0, depends: "libc6", provides: &[], description: "minimal Perl system", perf: NEUTRAL, essential: true, paths: &["/usr/bin/perl", "/usr/lib/perl-base/libperl.so"] },
        PkgSpec { name: "zlib1g", version: "1:1.3.dfsg-3.1ubuntu2", kib: 420.0, depends: "libc6", provides: &["libz.so.1"], description: "compression library - runtime", perf: lib(LibDomain::Compression, 1.0, false), essential: true, paths: &["/usr/lib/libz.so.1"] },
        PkgSpec { name: "libssl3", version: "3.0.13-0ubuntu3", kib: 6_800.0, depends: "libc6", provides: &[], description: "Secure Sockets Layer toolkit", perf: NEUTRAL, essential: true, paths: &["/usr/lib/libssl.so.3", "/usr/lib/libcrypto.so.3"] },
        PkgSpec { name: "tzdata", version: "2024a-2ubuntu1", kib: 11_900.0, depends: "", provides: &[], description: "time zone and daylight-saving time data", perf: NEUTRAL, essential: true, paths: &["/usr/share/zoneinfo/zone.tab", "/usr/share/zoneinfo/UTC"] },
        PkgSpec { name: "util-linux", version: "2.39.3-9ubuntu6", kib: 12_100.0, depends: "libc6", provides: &[], description: "miscellaneous system utilities", perf: NEUTRAL, essential: true, paths: &["/usr/bin/mount", "/usr/bin/lsblk", "/usr/bin/setsid"] },
        PkgSpec { name: "grep", version: "3.11-4", kib: 1_200.0, depends: "libc6", provides: &[], description: "GNU grep", perf: NEUTRAL, essential: true, paths: &["/usr/bin/grep"] },
        PkgSpec { name: "sed", version: "4.9-2", kib: 980.0, depends: "libc6", provides: &[], description: "GNU stream editor", perf: NEUTRAL, essential: true, paths: &["/usr/bin/sed"] },
        PkgSpec { name: "tar", version: "1.35+dfsg-3", kib: 2_800.0, depends: "libc6", provides: &[], description: "GNU version of the tar archiving utility", perf: NEUTRAL, essential: true, paths: &["/usr/bin/tar"] },
        PkgSpec { name: "gzip", version: "1.12-1ubuntu3", kib: 750.0, depends: "libc6", provides: &[], description: "GNU compression utilities", perf: NEUTRAL, essential: true, paths: &["/usr/bin/gzip"] },
        PkgSpec { name: "findutils", version: "4.9.0-5", kib: 1_900.0, depends: "libc6", provides: &[], description: "utilities for finding files", perf: NEUTRAL, essential: true, paths: &["/usr/bin/find", "/usr/bin/xargs"] },
        PkgSpec { name: "libsystemd0", version: "255.4-1ubuntu8", kib: 2_100.0, depends: "libc6", provides: &[], description: "systemd utility library", perf: NEUTRAL, essential: true, paths: &["/usr/lib/libsystemd.so.0"] },
        PkgSpec { name: "ca-certificates", version: "20240203", kib: 1_400.0, depends: "", provides: &[], description: "Common CA certificates", perf: NEUTRAL, essential: true, paths: &["/etc/ssl/certs/ca-certificates.crt"] },
        PkgSpec { name: "ncurses-base", version: "6.4+20240113-1ubuntu2", kib: 6_700.0, depends: "", provides: &[], description: "basic terminal type definitions", perf: NEUTRAL, essential: true, paths: &["/usr/share/terminfo/x/xterm", "/usr/lib/libncursesw.so.6"] },
        PkgSpec { name: "libpcre2-8-0", version: "10.42-4ubuntu2", kib: 1_600.0, depends: "libc6", provides: &[], description: "Perl 5 Compatible Regular Expression Library", perf: NEUTRAL, essential: true, paths: &["/usr/lib/libpcre2-8.so.0"] },
        PkgSpec { name: "locales", version: "2.39-0ubuntu8", kib: 17_800.0, depends: "libc6", provides: &[], description: "GNU C Library: National Language (locale) data", perf: NEUTRAL, essential: true, paths: &["/usr/lib/locale/locale-archive", "/usr/share/i18n/SUPPORTED"] },
        PkgSpec { name: "libgmp10", version: "2:6.3.0+dfsg-2ubuntu6", kib: 1_500.0, depends: "libc6", provides: &[], description: "Multiprecision arithmetic library", perf: NEUTRAL, essential: true, paths: &["/usr/lib/libgmp.so.10"] },
    ]
}

/// Development packages (build-stage only: toolchain + headers).
fn dev_specs() -> Vec<PkgSpec> {
    vec![
        PkgSpec { name: "binutils", version: "2.42-4ubuntu2", kib: 19_800.0, depends: "libc6", provides: &[], description: "GNU assembler, linker and binary utilities", perf: NEUTRAL, essential: false, paths: &["/usr/bin/ld", "/usr/bin/as", "/usr/bin/ar", "/usr/bin/ranlib", "/usr/bin/objcopy"] },
        PkgSpec { name: "cpp-13", version: "13.2.0-23ubuntu4", kib: 11_500.0, depends: "libc6", provides: &[], description: "GNU C preprocessor", perf: NEUTRAL, essential: false, paths: &["/usr/bin/cpp-13", "/usr/libexec/gcc/cc1"] },
        PkgSpec { name: "gcc-13", version: "13.2.0-23ubuntu4", kib: 52_000.0, depends: "libc6, binutils, cpp-13", provides: &["gcc", "cc"], description: "GNU C compiler", perf: NEUTRAL, essential: false, paths: &["/usr/bin/gcc-13", "/usr/bin/gcc", "/usr/bin/cc", "/usr/libexec/gcc/collect2"] },
        PkgSpec { name: "g++-13", version: "13.2.0-23ubuntu4", kib: 15_000.0, depends: "gcc-13, libstdc++-13-dev", provides: &["g++", "c++"], description: "GNU C++ compiler", perf: NEUTRAL, essential: false, paths: &["/usr/bin/g++-13", "/usr/bin/g++", "/usr/bin/c++"] },
        PkgSpec { name: "gfortran-13", version: "13.2.0-23ubuntu4", kib: 14_200.0, depends: "gcc-13", provides: &["gfortran", "fortran-compiler"], description: "GNU Fortran compiler", perf: NEUTRAL, essential: false, paths: &["/usr/bin/gfortran-13", "/usr/bin/gfortran"] },
        PkgSpec { name: "make", version: "4.3-4.1", kib: 1_300.0, depends: "libc6", provides: &[], description: "utility for directing compilation", perf: NEUTRAL, essential: false, paths: &["/usr/bin/make"] },
        PkgSpec { name: "libc6-dev", version: "2.39-0ubuntu8", kib: 9_800.0, depends: "libc6", provides: &[], description: "GNU C Library: development files", perf: NEUTRAL, essential: false, paths: &["/usr/include/stdio.h", "/usr/include/stdlib.h", "/usr/include/math.h", "/usr/lib/libc.a", "/usr/lib/libm.a", "/usr/lib/crt1.o"] },
        PkgSpec { name: "libstdc++-13-dev", version: "13.2.0-23ubuntu4", kib: 16_900.0, depends: "libstdc++6, libc6-dev", provides: &[], description: "GNU Standard C++ Library: development files", perf: NEUTRAL, essential: false, paths: &["/usr/include/c++/13/vector", "/usr/include/c++/13/iostream", "/usr/lib/libstdc++.a"] },
        PkgSpec { name: "pkg-config", version: "1.8.1-2", kib: 300.0, depends: "libc6", provides: &[], description: "manage compile and link flags for libraries", perf: NEUTRAL, essential: false, paths: &["/usr/bin/pkg-config"] },
        PkgSpec { name: "cmake", version: "3.28.3-1", kib: 32_000.0, depends: "libc6, libstdc++6", provides: &[], description: "cross-platform, open-source make system", perf: NEUTRAL, essential: false, paths: &["/usr/bin/cmake", "/usr/bin/ctest", "/usr/share/cmake-3.28/Modules/CMakeLists.txt"] },
    ]
}

/// Generic runtime/HPC libraries (quality 1.0: the user-side defaults whose
/// replacement by vendor stacks is the `libo` optimization of Figure 3).
fn hpc_specs() -> Vec<PkgSpec> {
    vec![
        PkgSpec { name: "libgomp1", version: "14-20240412-0ubuntu1", kib: 350.0, depends: "libc6", provides: &["libgomp.so.1"], description: "GCC OpenMP (GOMP) support library", perf: NEUTRAL, essential: false, paths: &["/usr/lib/libgomp.so.1"] },
        PkgSpec { name: "libopenblas0", version: "0.3.26+ds-1", kib: 11_700.0, depends: "libc6, libgfortran5", provides: &["libblas.so.3", "liblapack.so.3", "blas-implementation"], description: "Optimized BLAS (generic kernels)", perf: lib(LibDomain::Blas, 1.0, false), essential: false, paths: &["/usr/lib/libopenblas.so.0"] },
        PkgSpec { name: "libgfortran5", version: "14-20240412-0ubuntu1", kib: 1_700.0, depends: "libc6", provides: &[], description: "Runtime library for GNU Fortran applications", perf: NEUTRAL, essential: false, paths: &["/usr/lib/libgfortran.so.5"] },
        PkgSpec { name: "mpich", version: "4.2.0-5build1", kib: 8_400.0, depends: "libc6, libgfortran5", provides: &["mpi", "libmpi.so.12", "mpi-dev"], description: "Implementation of the MPI Message Passing Interface standard", perf: lib(LibDomain::Mpi, 1.0, false), essential: false, paths: &["/usr/bin/mpicc", "/usr/bin/mpicxx", "/usr/bin/mpirun", "/usr/lib/libmpi.so.12"] },
        PkgSpec { name: "libfftw3-double3", version: "3.3.10-1ubuntu3", kib: 4_900.0, depends: "libc6", provides: &["libfftw3.so.3", "fftw-implementation"], description: "Library for computing Fast Fourier Transforms", perf: lib(LibDomain::Fft, 1.0, false), essential: false, paths: &["/usr/lib/libfftw3.so.3"] },
        PkgSpec { name: "liblapack3", version: "3.12.0-3build1", kib: 7_300.0, depends: "libc6, libgfortran5", provides: &["lapack-implementation"], description: "Library of linear algebra routines", perf: lib(LibDomain::Blas, 1.0, false), essential: false, paths: &["/usr/lib/liblapack.so.3"] },
    ]
}

/// Vendor stack for the x86-64 system (Intel-Xeon-like: mature vendor
/// libraries, large BLAS/math gains, high-speed-network MPI).
fn vendor_x86_specs() -> Vec<PkgSpec> {
    vec![
        PkgSpec { name: "libc6", version: "2.39-0ubuntu8vendor1", kib: 14_100.0, depends: "", provides: &["libc.so.6", "libm.so.6"], description: "Vendor-tuned C/math library (AVX-512 kernels)", perf: lib(LibDomain::StdC, 1.30, false), essential: false, paths: &["/usr/lib/libc.so.6", "/usr/lib/libm.so.6", "/usr/lib/ld-linux.so.2"] },
        PkgSpec { name: "libstdc++6", version: "14-20240412-0ubuntu1vendor1", kib: 3_000.0, depends: "libc6", provides: &["libstdc++.so.6"], description: "Vendor-tuned C++ runtime", perf: lib(LibDomain::StdCxx, 1.20, false), essential: false, paths: &["/usr/lib/libstdc++.so.6"] },
        PkgSpec { name: "libopenblas0", version: "0.3.26+ds-1vendor1", kib: 24_000.0, depends: "libc6", provides: &["libblas.so.3", "liblapack.so.3", "blas-implementation"], description: "Vendor math kernel library (MKL-like)", perf: lib(LibDomain::Blas, 1.70, false), essential: false, paths: &["/usr/lib/libopenblas.so.0"] },
        PkgSpec { name: "liblapack3", version: "3.12.0-3vendor1", kib: 9_000.0, depends: "libc6", provides: &["lapack-implementation"], description: "Vendor LAPACK", perf: lib(LibDomain::Blas, 1.70, false), essential: false, paths: &["/usr/lib/liblapack.so.3"] },
        PkgSpec { name: "mpich", version: "4.2.0-5vendor1", kib: 15_500.0, depends: "libc6", provides: &["mpi", "libmpi.so.12", "mpi-dev"], description: "Vendor MPI with high-speed-network (HSN) plugins", perf: lib(LibDomain::Mpi, 1.6, true), essential: false, paths: &["/usr/bin/mpicc", "/usr/bin/mpicxx", "/usr/bin/mpirun", "/usr/lib/libmpi.so.12", "/usr/lib/libhsn-plugin.so"] },
        PkgSpec { name: "libfftw3-double3", version: "3.3.10-1vendor1", kib: 6_200.0, depends: "libc6", provides: &["libfftw3.so.3", "fftw-implementation"], description: "Vendor FFT with AVX-512 codelets", perf: lib(LibDomain::Fft, 1.65, false), essential: false, paths: &["/usr/lib/libfftw3.so.3"] },
        PkgSpec { name: "libgomp1", version: "14-20240412vendor1", kib: 400.0, depends: "libc6", provides: &["libgomp.so.1"], description: "Vendor OpenMP runtime", perf: NEUTRAL, essential: false, paths: &["/usr/lib/libgomp.so.1"] },
    ]
}

/// Vendor stack for the AArch64 system (Phytium FT-2000+-like: younger
/// ecosystem, smaller but still decisive gains; interconnect plugin is the
/// big one).
fn vendor_arm_specs() -> Vec<PkgSpec> {
    vec![
        PkgSpec { name: "libc6", version: "2.39-0ubuntu8vendor1", kib: 13_000.0, depends: "", provides: &["libc.so.6", "libm.so.6"], description: "Vendor-tuned C/math library (NEON/SVE kernels)", perf: lib(LibDomain::StdC, 1.45, false), essential: false, paths: &["/usr/lib/libc.so.6", "/usr/lib/libm.so.6", "/usr/lib/ld-linux-aarch64.so.1"] },
        PkgSpec { name: "libstdc++6", version: "14-20240412-0ubuntu1vendor1", kib: 2_900.0, depends: "libc6", provides: &["libstdc++.so.6"], description: "Vendor-tuned C++ runtime", perf: lib(LibDomain::StdCxx, 1.3, false), essential: false, paths: &["/usr/lib/libstdc++.so.6"] },
        PkgSpec { name: "libopenblas0", version: "0.3.26+ds-1vendor1", kib: 18_000.0, depends: "libc6", provides: &["libblas.so.3", "liblapack.so.3", "blas-implementation"], description: "Vendor BLAS tuned for FT-2000+", perf: lib(LibDomain::Blas, 1.6, false), essential: false, paths: &["/usr/lib/libopenblas.so.0"] },
        PkgSpec { name: "liblapack3", version: "3.12.0-3vendor1", kib: 8_000.0, depends: "libc6", provides: &["lapack-implementation"], description: "Vendor LAPACK", perf: lib(LibDomain::Blas, 1.6, false), essential: false, paths: &["/usr/lib/liblapack.so.3"] },
        PkgSpec { name: "mpich", version: "4.2.0-5vendor1", kib: 14_000.0, depends: "libc6", provides: &["mpi", "libmpi.so.12", "mpi-dev"], description: "Vendor MPI with proprietary interconnect plugins", perf: lib(LibDomain::Mpi, 1.8, true), essential: false, paths: &["/usr/bin/mpicc", "/usr/bin/mpicxx", "/usr/bin/mpirun", "/usr/lib/libmpi.so.12", "/usr/lib/libglex-plugin.so"] },
        PkgSpec { name: "libfftw3-double3", version: "3.3.10-1vendor1", kib: 5_500.0, depends: "libc6", provides: &["libfftw3.so.3", "fftw-implementation"], description: "Vendor FFT with NEON codelets", perf: lib(LibDomain::Fft, 1.5, false), essential: false, paths: &["/usr/lib/libfftw3.so.3"] },
        PkgSpec { name: "libgomp1", version: "14-20240412vendor1", kib: 380.0, depends: "libc6", provides: &["libgomp.so.1"], description: "Vendor OpenMP runtime", perf: NEUTRAL, essential: false, paths: &["/usr/lib/libgomp.so.1"] },
    ]
}

fn build_repo(name: &str, specs: &[Vec<PkgSpec>], isa: &str, scale: f64) -> Repository {
    let mut r = Repository::new(name);
    for group in specs {
        for s in group {
            r.add(s.build(isa, scale));
        }
    }
    r
}

/// The generic distro repository for an ISA at test scale.
pub fn generic_repo(isa: &str) -> Repository {
    generic_repo_scaled(isa, MINI_SCALE)
}

/// The generic distro repository at an explicit payload scale.
pub fn generic_repo_scaled(isa: &str, scale: f64) -> Repository {
    build_repo(
        "nebula-generic",
        &[base_specs(), dev_specs(), hpc_specs()],
        isa,
        scale,
    )
}

/// The vendor repository for a target system at an explicit payload scale.
/// `isa` must be `x86_64` or `aarch64`.
pub fn vendor_repo_scaled(isa: &str, scale: f64) -> Repository {
    let specs = match isa {
        "aarch64" => vendor_arm_specs(),
        _ => vendor_x86_specs(),
    };
    build_repo(&format!("{isa}-vendor"), &[specs], isa, scale)
}

/// The vendor repository at test scale.
pub fn vendor_repo(isa: &str) -> Repository {
    vendor_repo_scaled(isa, MINI_SCALE)
}

/// Combined system-side repository: distro overlaid with the vendor stack,
/// so resolution prefers vendor builds (same names, newer versions).
pub fn system_repo_scaled(isa: &str, scale: f64) -> Repository {
    let mut r = generic_repo_scaled(isa, scale);
    r.merge(&vendor_repo_scaled(isa, scale));
    r.name = format!("{isa}-system");
    r
}

/// Combined system-side repository at test scale.
pub fn system_repo(isa: &str) -> Repository {
    system_repo_scaled(isa, MINI_SCALE)
}

/// Names of the packages pre-installed in distro base images.
pub fn base_package_names() -> Vec<&'static str> {
    base_specs().iter().map(|s| s.name).collect()
}

/// Names of the development packages added in `Env` (build-stage) images.
pub fn dev_package_names() -> Vec<&'static str> {
    dev_specs().iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::Dependency;
    use crate::resolver::resolve_install;

    #[test]
    fn synth_bytes_deterministic_and_sized() {
        let a = synth_bytes("seed", 1000);
        let b = synth_bytes("seed", 1000);
        let c = synth_bytes("other", 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn repos_have_expected_shape() {
        let g = generic_repo("x86_64");
        assert!(g.len() > 30);
        assert!(g.latest("gcc-13").is_some());
        assert!(g.latest("libopenblas0").is_some());
        let v = vendor_repo("x86_64");
        assert!(v.latest("mpich").unwrap().perf.native_interconnect);
    }

    #[test]
    fn system_repo_prefers_vendor_versions() {
        let s = system_repo("x86_64");
        let blas = s.latest("libopenblas0").unwrap();
        assert!(blas.version.to_string().contains("vendor"));
        assert!(blas.perf.quality > 1.5);
        // Generic version still available for constraint-pinned requests.
        assert_eq!(s.versions("libopenblas0").len(), 2);
    }

    #[test]
    fn vendor_arm_differs_from_x86() {
        let x = vendor_repo("x86_64").latest("libopenblas0").unwrap().perf.quality;
        let a = vendor_repo("aarch64").latest("libopenblas0").unwrap().perf.quality;
        assert!(x > a, "x86 vendor BLAS more mature ({x} vs {a})");
    }

    #[test]
    fn base_stack_resolves_and_sizes_scale() {
        let g = generic_repo_scaled("x86_64", 1.0);
        let deps: Vec<Dependency> = base_package_names()
            .iter()
            .map(|n| n.parse().unwrap())
            .collect();
        let pkgs = resolve_install(&g, &deps).unwrap();
        let total: u64 = pkgs.iter().map(|p| p.installed_size()).sum();
        let mib = total as f64 / (1024.0 * 1024.0);
        // Calibration target: base stack ≈ 135-160 MiB on x86-64.
        assert!((120.0..180.0).contains(&mib), "x86 base stack {mib:.1} MiB");

        let ga = generic_repo_scaled("aarch64", 1.0);
        let pkgs_a = resolve_install(&ga, &deps).unwrap();
        let total_a: u64 = pkgs_a.iter().map(|p| p.installed_size()).sum();
        assert!(total_a < total, "aarch64 stack smaller than x86");
    }

    #[test]
    fn dpkg_arch_mapping() {
        assert_eq!(dpkg_arch("x86_64"), "amd64");
        assert_eq!(dpkg_arch("aarch64"), "arm64");
        assert_eq!(dpkg_arch("riscv"), "all");
    }

    #[test]
    fn mini_scale_payloads_are_small() {
        let g = generic_repo("x86_64");
        let gcc = g.latest("gcc-13").unwrap();
        assert!(gcc.installed_size() < 1024 * 1024);
    }

    #[test]
    fn dev_stack_resolves_on_top_of_base() {
        let g = generic_repo("aarch64");
        let deps: Vec<Dependency> = dev_package_names()
            .iter()
            .map(|n| n.parse().unwrap())
            .collect();
        let pkgs = resolve_install(&g, &deps).unwrap();
        assert!(pkgs.iter().any(|p| p.name == "g++-13"));
        assert!(pkgs.iter().any(|p| p.name == "binutils"));
    }
}
