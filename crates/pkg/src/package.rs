//! Package metadata and payload model.

use crate::dep::DependencyList;
use crate::version::Version;
use bytes::Bytes;

/// Which performance-relevant library domain a package implements.
///
/// The performance model uses this to decide which part of a workload's
/// runtime a package-replacement optimization affects (e.g. swapping the
/// generic BLAS for a vendor BLAS accelerates the BLAS-bound fraction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibDomain {
    /// C standard library / math library.
    StdC,
    /// C++ standard library.
    StdCxx,
    /// Dense linear algebra (BLAS/LAPACK).
    Blas,
    /// MPI communication library.
    Mpi,
    /// Compression (zlib-style).
    Compression,
    /// FFT library.
    Fft,
    /// Not performance-relevant (toolchain, data, misc).
    None,
}

/// Performance traits of a package, consumed by `comt-perfsim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfTraits {
    /// Domain the package accelerates.
    pub domain: LibDomain,
    /// Relative speed of this implementation vs the generic baseline
    /// (1.0 = generic; vendor-optimized packages are > 1).
    pub quality: f64,
    /// For MPI packages: whether the implementation can drive the system's
    /// high-speed interconnect (vendor plugins). Generic MPI falls back to
    /// the slow transport, the root cause of the paper's LULESH anomaly.
    pub native_interconnect: bool,
}

impl Default for PerfTraits {
    fn default() -> Self {
        PerfTraits {
            domain: LibDomain::None,
            quality: 1.0,
            native_interconnect: false,
        }
    }
}

/// One file installed by a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageFile {
    /// Absolute install path.
    pub path: String,
    /// File content (synthesized deterministically by the catalog).
    pub content: Bytes,
    /// POSIX mode bits.
    pub mode: u32,
}

impl PackageFile {
    pub fn new(path: impl Into<String>, content: impl Into<Bytes>, mode: u32) -> Self {
        PackageFile {
            path: path.into(),
            content: content.into(),
            mode,
        }
    }
}

/// A package: metadata plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    pub name: String,
    pub version: Version,
    /// dpkg architecture string (`amd64`, `arm64`, `all`).
    pub architecture: String,
    pub depends: DependencyList,
    /// Virtual package names this package provides.
    pub provides: Vec<String>,
    pub description: String,
    pub files: Vec<PackageFile>,
    /// Performance traits for the simulator.
    pub perf: PerfTraits,
    /// Whether this package is part of the minimal base system (pre-installed
    /// in base images, `Priority: essential` in dpkg terms).
    pub essential: bool,
}

impl Package {
    /// Builder-style constructor with empty payload.
    pub fn new(name: &str, version: &str, architecture: &str) -> Self {
        Package {
            name: name.to_string(),
            version: Version::new(version),
            architecture: architecture.to_string(),
            depends: Vec::new(),
            provides: Vec::new(),
            description: String::new(),
            files: Vec::new(),
            perf: PerfTraits::default(),
            essential: false,
        }
    }

    pub fn with_depends(mut self, deps: &str) -> Self {
        self.depends = crate::dep::parse_list(deps).expect("valid depends in catalog");
        self
    }

    pub fn with_provides(mut self, provides: &[&str]) -> Self {
        self.provides = provides.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_description(mut self, d: &str) -> Self {
        self.description = d.to_string();
        self
    }

    pub fn with_file(mut self, f: PackageFile) -> Self {
        self.files.push(f);
        self
    }

    pub fn with_perf(mut self, perf: PerfTraits) -> Self {
        self.perf = perf;
        self
    }

    pub fn essential(mut self) -> Self {
        self.essential = true;
        self
    }

    /// Total payload bytes.
    pub fn installed_size(&self) -> u64 {
        self.files.iter().map(|f| f.content.len() as u64).sum()
    }

    /// Whether this package satisfies the named (possibly virtual) package.
    pub fn satisfies_name(&self, name: &str) -> bool {
        self.name == name || self.provides.iter().any(|p| p == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let p = Package::new("libblas3", "3.12.0-1", "amd64")
            .with_depends("libc6 (>= 2.38)")
            .with_provides(&["libblas.so.3"])
            .with_description("Basic Linear Algebra Subroutines")
            .with_file(PackageFile::new(
                "/usr/lib/libblas.so.3",
                Bytes::from_static(b"BLAS"),
                0o644,
            ))
            .with_perf(PerfTraits {
                domain: LibDomain::Blas,
                quality: 1.0,
                native_interconnect: false,
            });
        assert_eq!(p.installed_size(), 4);
        assert!(p.satisfies_name("libblas3"));
        assert!(p.satisfies_name("libblas.so.3"));
        assert!(!p.satisfies_name("liblapack3"));
        assert_eq!(p.depends.len(), 1);
    }

    #[test]
    fn default_perf_is_neutral() {
        let p = Package::new("coreutils", "9.4-1", "amd64");
        assert_eq!(p.perf.domain, LibDomain::None);
        assert_eq!(p.perf.quality, 1.0);
        assert!(!p.perf.native_interconnect);
        assert!(!p.essential);
    }
}
