//! Package repositories: indexed collections of packages.

use crate::dep::SimpleDep;
use crate::package::Package;
use std::collections::BTreeMap;

/// A repository: packages indexed by name, multiple versions per name, plus
/// a virtual-package (provides) index.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    /// Human name, e.g. `ubuntu24-generic` or `x86-vendor`.
    pub name: String,
    by_name: BTreeMap<String, Vec<Package>>,
    /// virtual name → concrete provider names.
    provides: BTreeMap<String, Vec<String>>,
}

impl Repository {
    pub fn new(name: &str) -> Self {
        Repository {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Add a package (versions kept sorted, newest last).
    pub fn add(&mut self, pkg: Package) {
        for v in &pkg.provides {
            let entry = self.provides.entry(v.clone()).or_default();
            if !entry.contains(&pkg.name) {
                entry.push(pkg.name.clone());
            }
        }
        let versions = self.by_name.entry(pkg.name.clone()).or_default();
        versions.push(pkg);
        versions.sort_by(|a, b| a.version.cmp(&b.version));
    }

    /// Merge all packages from another repository (overlay, e.g. vendor repo
    /// on top of the distro repo). Later-added versions win ties.
    pub fn merge(&mut self, other: &Repository) {
        for pkgs in other.by_name.values() {
            for p in pkgs {
                self.add(p.clone());
            }
        }
    }

    /// Number of distinct package names.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// All package names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect()
    }

    /// Newest version of a concrete package name.
    pub fn latest(&self, name: &str) -> Option<&Package> {
        self.by_name.get(name).and_then(|v| v.last())
    }

    /// All versions of a name, oldest → newest.
    pub fn versions(&self, name: &str) -> &[Package] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Best candidate for a dependency alternative: the newest version of
    /// the named package satisfying the constraint, falling back to virtual
    /// providers (newest of the first provider name).
    pub fn candidate(&self, dep: &SimpleDep) -> Option<&Package> {
        if let Some(versions) = self.by_name.get(&dep.name) {
            if let Some(best) = versions
                .iter()
                .rev()
                .find(|p| dep.matches(&p.name, &p.version))
            {
                return Some(best);
            }
        }
        // Virtual packages: constraints on virtual names are unsatisfiable
        // by policy (providers have unrelated versions), so only
        // unconstrained deps match.
        if dep.constraint.is_none() {
            if let Some(providers) = self.provides.get(&dep.name) {
                for provider in providers {
                    if let Some(p) = self.latest(provider) {
                        return Some(p);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::Dependency;

    fn repo() -> Repository {
        let mut r = Repository::new("test");
        r.add(Package::new("libfoo", "1.0-1", "amd64"));
        r.add(Package::new("libfoo", "2.0-1", "amd64"));
        r.add(Package::new("mpich", "4.1-2", "amd64").with_provides(&["mpi"]));
        r
    }

    fn dep(s: &str) -> SimpleDep {
        s.parse::<Dependency>().unwrap().alternatives[0].clone()
    }

    #[test]
    fn latest_picks_newest() {
        let r = repo();
        assert_eq!(r.latest("libfoo").unwrap().version.upstream, "2.0");
    }

    #[test]
    fn candidate_respects_constraint() {
        let r = repo();
        assert_eq!(
            r.candidate(&dep("libfoo (<< 2.0)")).unwrap().version.upstream,
            "1.0"
        );
        assert_eq!(
            r.candidate(&dep("libfoo (>= 1.5)")).unwrap().version.upstream,
            "2.0"
        );
        assert!(r.candidate(&dep("libfoo (>> 9.0)")).is_none());
    }

    #[test]
    fn candidate_via_provides() {
        let r = repo();
        assert_eq!(r.candidate(&dep("mpi")).unwrap().name, "mpich");
        // Constrained virtual deps don't match.
        assert!(r.candidate(&dep("mpi (>= 1)")).is_none());
    }

    #[test]
    fn merge_overlays() {
        let mut base = repo();
        let mut vendor = Repository::new("vendor");
        vendor.add(Package::new("libfoo", "2.0-1vendor1", "amd64"));
        base.merge(&vendor);
        assert_eq!(
            base.latest("libfoo").unwrap().version.to_string(),
            "2.0-1vendor1"
        );
        assert_eq!(base.versions("libfoo").len(), 3);
    }

    #[test]
    fn names_sorted() {
        let r = repo();
        assert_eq!(r.names(), vec!["libfoo", "mpich"]);
        assert_eq!(r.len(), 2);
    }
}
