//! Content-defined chunking for sub-layer dedupe.
//!
//! Layer blobs are split at content-defined boundaries found by a gear
//! rolling hash, so an edit in the middle of a tar moves at most a bounded
//! neighborhood of boundaries (locality) while everything before and after
//! re-aligns to the same chunks. A [`ChunkMap`] records the ordered chunk
//! spans of one blob and travels as a normal content-addressed blob under
//! [`MEDIA_TYPE_CHUNKMAP`]; a client that already holds related blobs builds
//! a [`ChunkIndex`] over them and a [`DeltaPlan`] that names exactly which
//! byte ranges it still needs from the wire.
//!
//! Everything here is pure integer arithmetic over fixed tables — no RNG, no
//! floats, no platform-dependent behavior — so the same bytes chunk the same
//! way on every host, which is what makes chunk digests a cross-machine
//! dedupe currency.

use comt_digest::Digest;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Media type of a serialized [`ChunkMap`] blob.
pub const MEDIA_TYPE_CHUNKMAP: &str = "application/vnd.comt.chunkmap.v1+json";

/// Schema version emitted and accepted by this implementation.
pub const CHUNKMAP_VERSION: u32 = 1;

/// Index-descriptor annotation naming the layer blob a chunkmap describes.
pub const ANNOTATION_CHUNKMAP_LAYER: &str = "org.comtainer.chunkmap.layer";

// ---------------------------------------------------------------------------
// Gear table
// ---------------------------------------------------------------------------

/// splitmix64 step — const-evaluable, so the gear table is baked into the
/// binary and identical on every platform.
const fn splitmix64(state: u64) -> (u64, u64) {
    let state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (state, z ^ (z >> 31))
}

const GEAR_SEED: u64 = 0x636f_4d74_6169_6e65; // "coMtaine"

const fn build_gear() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state = GEAR_SEED;
    let mut i = 0;
    while i < 256 {
        let (next, value) = splitmix64(state);
        state = next;
        table[i] = value;
        i += 1;
    }
    table
}

/// 256-entry mixing table for the gear hash, derived from a fixed seed.
pub const GEAR: [u64; 256] = build_gear();

// ---------------------------------------------------------------------------
// Parameters
// ---------------------------------------------------------------------------

/// Chunking bounds. `avg_bits` sets the cut-point density: a boundary is
/// declared where the low `avg_bits` bits of the rolling hash are zero, so
/// the expected chunk size is roughly `min + 2^avg_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkParams {
    /// No chunk (except the final one) is smaller than this.
    pub min: u32,
    /// Boundary mask width; expected chunk size ≈ `min + 2^avg_bits`.
    pub avg_bits: u32,
    /// Hard upper bound; a cut is forced at this length.
    pub max: u32,
}

impl Default for ChunkParams {
    fn default() -> Self {
        ChunkParams {
            min: 4 * 1024,
            avg_bits: 14, // ~16 KiB beyond min
            max: 64 * 1024,
        }
    }
}

impl ChunkParams {
    pub fn validate(&self) -> Result<(), ChunkError> {
        if self.min == 0 || self.max < self.min || self.avg_bits == 0 || self.avg_bits > 30 {
            return Err(ChunkError::BadParams(*self));
        }
        Ok(())
    }

    fn mask(&self) -> u64 {
        (1u64 << self.avg_bits) - 1
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub enum ChunkError {
    BadParams(ChunkParams),
    BadJson(String),
    /// Structural invariant broken: version/media-type mismatch, spans not
    /// contiguous from zero, span larger than `max`, digest unparseable.
    Malformed(String),
    /// The map is structurally fine but disagrees with the actual bytes.
    Mismatch(String),
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::BadParams(p) => write!(f, "invalid chunk params: {p:?}"),
            ChunkError::BadJson(e) => write!(f, "chunkmap is not valid JSON: {e}"),
            ChunkError::Malformed(e) => write!(f, "malformed chunkmap: {e}"),
            ChunkError::Mismatch(e) => write!(f, "chunkmap disagrees with blob: {e}"),
        }
    }
}

impl std::error::Error for ChunkError {}

// ---------------------------------------------------------------------------
// Boundary finder
// ---------------------------------------------------------------------------

/// Split `data` into contiguous half-open spans at content-defined
/// boundaries. Deterministic, single pass, no allocation beyond the output.
///
/// The rolling hash restarts at each chunk start, so a boundary depends only
/// on the bytes of its own chunk — an edit can invalidate the chunk it lands
/// in (and, through the moved start position, a bounded run after it), but
/// never chunks that end before it.
pub fn chunk_spans(data: &[u8], params: ChunkParams) -> Vec<(usize, usize)> {
    debug_assert!(params.validate().is_ok());
    let (min, max) = (params.min as usize, params.max as usize);
    let mask = params.mask();
    let mut spans = Vec::with_capacity(data.len() / (min + (1usize << params.avg_bits)) + 1);
    let mut start = 0usize;
    while start < data.len() {
        let remaining = data.len() - start;
        let end = if remaining <= min {
            data.len()
        } else {
            let limit = remaining.min(max);
            let mut h: u64 = 0;
            let mut cut = limit;
            // Hash the whole chunk prefix, but only test from `min` on.
            for (i, &b) in data[start..start + limit].iter().enumerate() {
                h = (h << 1).wrapping_add(GEAR[b as usize]);
                if i + 1 >= min && (h & mask) == 0 {
                    cut = i + 1;
                    break;
                }
            }
            start + cut
        };
        spans.push((start, end));
        start = end;
    }
    spans
}

// ---------------------------------------------------------------------------
// Chunk manifest
// ---------------------------------------------------------------------------

/// One chunk: a byte span of the layer blob plus its content digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkEntry {
    pub offset: u64,
    pub size: u32,
    /// `sha256:<hex>` string form (kept as string for spec fidelity).
    pub digest: String,
}

impl ChunkEntry {
    pub fn parsed_digest(&self) -> Result<Digest, ChunkError> {
        self.digest
            .parse()
            .map_err(|_| ChunkError::Malformed(format!("bad chunk digest {:?}", self.digest)))
    }

    /// Half-open byte range of this chunk within the blob.
    pub fn span(&self) -> (u64, u64) {
        (self.offset, self.offset + self.size as u64)
    }
}

/// The chunk manifest of one blob: ordered chunk digests + offsets, plus the
/// identity of the blob they reassemble into. Serialized as
/// [`MEDIA_TYPE_CHUNKMAP`] JSON and stored as a normal content-addressed
/// blob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkMap {
    #[serde(rename = "schemaVersion")]
    pub schema_version: u32,
    #[serde(rename = "mediaType")]
    pub media_type: String,
    /// Digest of the (uncompressed-on-the-wire) layer blob the chunks span.
    #[serde(rename = "blobDigest")]
    pub blob_digest: String,
    #[serde(rename = "blobSize")]
    pub blob_size: u64,
    pub params: ChunkParams,
    pub chunks: Vec<ChunkEntry>,
}

impl ChunkMap {
    /// Chunk `data` and record every span's digest.
    pub fn build(data: &[u8], params: ChunkParams) -> Result<ChunkMap, ChunkError> {
        params.validate()?;
        let chunks = chunk_spans(data, params)
            .into_iter()
            .map(|(s, e)| ChunkEntry {
                offset: s as u64,
                size: (e - s) as u32,
                digest: Digest::of(&data[s..e]).to_oci_string(),
            })
            .collect();
        Ok(ChunkMap {
            schema_version: CHUNKMAP_VERSION,
            media_type: MEDIA_TYPE_CHUNKMAP.to_string(),
            blob_digest: Digest::of(data).to_oci_string(),
            blob_size: data.len() as u64,
            params,
            chunks,
        })
    }

    pub fn parsed_blob_digest(&self) -> Result<Digest, ChunkError> {
        self.blob_digest
            .parse()
            .map_err(|_| ChunkError::Malformed(format!("bad blob digest {:?}", self.blob_digest)))
    }

    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("chunkmap serialization is infallible")
            .into_bytes()
    }

    /// Parse and structurally validate a chunkmap blob. Guarantees: known
    /// version and media type, valid params, spans contiguous from zero
    /// covering exactly `blob_size`, every span within `max`, every digest
    /// parseable. Does NOT compare against blob bytes — see
    /// [`ChunkMap::verify_layer`].
    pub fn from_json(bytes: &[u8]) -> Result<ChunkMap, ChunkError> {
        let text =
            std::str::from_utf8(bytes).map_err(|e| ChunkError::BadJson(e.to_string()))?;
        let map: ChunkMap =
            serde_json::from_str(text).map_err(|e| ChunkError::BadJson(e.to_string()))?;
        map.validate_structure()?;
        Ok(map)
    }

    pub fn validate_structure(&self) -> Result<(), ChunkError> {
        if self.schema_version != CHUNKMAP_VERSION {
            return Err(ChunkError::Malformed(format!(
                "unsupported schemaVersion {}",
                self.schema_version
            )));
        }
        if self.media_type != MEDIA_TYPE_CHUNKMAP {
            return Err(ChunkError::Malformed(format!(
                "unexpected mediaType {:?}",
                self.media_type
            )));
        }
        self.params.validate()?;
        self.parsed_blob_digest()?;
        let mut expect = 0u64;
        for (i, c) in self.chunks.iter().enumerate() {
            if c.offset != expect {
                return Err(ChunkError::Malformed(format!(
                    "chunk {i} starts at {} but previous ended at {expect}",
                    c.offset
                )));
            }
            if c.size == 0 || c.size > self.params.max {
                return Err(ChunkError::Malformed(format!(
                    "chunk {i} has size {} outside (0, {}]",
                    c.size, self.params.max
                )));
            }
            c.parsed_digest()?;
            expect += c.size as u64;
        }
        if expect != self.blob_size {
            return Err(ChunkError::Malformed(format!(
                "chunks cover {expect} bytes but blobSize is {}",
                self.blob_size
            )));
        }
        Ok(())
    }

    /// Deep check: the map must describe exactly these bytes — whole-blob
    /// digest, length, and every per-chunk digest.
    pub fn verify_layer(&self, data: &[u8]) -> Result<(), ChunkError> {
        self.validate_structure()?;
        if data.len() as u64 != self.blob_size {
            return Err(ChunkError::Mismatch(format!(
                "blob is {} bytes, map says {}",
                data.len(),
                self.blob_size
            )));
        }
        if Digest::of(data) != self.parsed_blob_digest()? {
            return Err(ChunkError::Mismatch("blob digest mismatch".to_string()));
        }
        for (i, c) in self.chunks.iter().enumerate() {
            let (s, e) = c.span();
            if Digest::of(&data[s as usize..e as usize]) != c.parsed_digest()? {
                return Err(ChunkError::Mismatch(format!("chunk {i} digest mismatch")));
            }
        }
        Ok(())
    }

    /// Total bytes across all chunks (== `blob_size` for a valid map).
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.size as u64).sum()
    }
}

// ---------------------------------------------------------------------------
// Local chunk index
// ---------------------------------------------------------------------------

/// Where a chunk's bytes can be found locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSource {
    /// Digest of the local blob holding the bytes.
    pub blob: Digest,
    pub offset: u64,
    pub size: u32,
}

/// Chunk digest → local location, built by chunking blobs a client already
/// holds. Rebuilt on demand — never persisted — so it can't go stale.
#[derive(Debug, Default)]
pub struct ChunkIndex {
    by_digest: HashMap<Digest, ChunkSource>,
    blobs: usize,
}

impl ChunkIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Chunk one local blob and index every span. First writer wins on
    /// digest collisions across blobs (the bytes are identical anyway).
    pub fn add_blob(&mut self, blob: Digest, data: &[u8], params: ChunkParams) {
        for (s, e) in chunk_spans(data, params) {
            let d = Digest::of(&data[s..e]);
            self.by_digest.entry(d).or_insert(ChunkSource {
                blob,
                offset: s as u64,
                size: (e - s) as u32,
            });
        }
        self.blobs += 1;
    }

    pub fn lookup(&self, digest: &Digest) -> Option<&ChunkSource> {
        self.by_digest.get(digest)
    }

    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }

    /// Number of blobs indexed so far.
    pub fn blob_count(&self) -> usize {
        self.blobs
    }
}

// ---------------------------------------------------------------------------
// Delta plan
// ---------------------------------------------------------------------------

/// A coalesced wire fetch: one half-open byte range of the remote blob,
/// covering the chunk indices `chunks.0 .. chunks.1` of the map (missing
/// chunks plus any small locally-known gaps that were cheaper to re-fetch
/// than to split the request over).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePlan {
    pub start: u64,
    pub end: u64,
    /// Half-open range of chunk indices this byte range spans.
    pub chunks: (usize, usize),
}

impl RangePlan {
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// The outcome of diffing a remote [`ChunkMap`] against a local
/// [`ChunkIndex`]: which chunks are already on disk and which byte ranges
/// must travel.
#[derive(Debug, Clone)]
pub struct DeltaPlan {
    /// Per chunk of the map: the local source, or `None` if it must be
    /// fetched.
    pub sources: Vec<Option<ChunkSource>>,
    /// Coalesced wire ranges covering every missing chunk, in blob order.
    pub ranges: Vec<RangePlan>,
    /// Bytes satisfied locally (not counting gap chunks re-fetched inside a
    /// coalesced range).
    pub bytes_local: u64,
    /// Bytes that must travel — the sum of all range lengths.
    pub bytes_fetched: u64,
}

impl DeltaPlan {
    pub fn chunks_hit(&self) -> usize {
        self.sources.iter().filter(|s| s.is_some()).count()
    }

    pub fn chunks_missing(&self) -> usize {
        self.sources.len() - self.chunks_hit()
    }
}

/// Default coalescing slack: a locally-present run shorter than this, caught
/// between two missing chunks, is re-fetched as part of one Range request
/// instead of splitting it in two. Request overhead beats a few KiB of
/// redundant payload.
pub const DEFAULT_COALESCE_GAP: u64 = 8 * 1024;

/// Diff `map` against `index`, coalescing missing chunks whose separation is
/// at most `coalesce_gap` bytes into single wire ranges.
pub fn plan_delta(map: &ChunkMap, index: &ChunkIndex, coalesce_gap: u64) -> DeltaPlan {
    let sources: Vec<Option<ChunkSource>> = map
        .chunks
        .iter()
        .map(|c| {
            let d = c.parsed_digest().ok()?;
            index
                .lookup(&d)
                .filter(|src| src.size == c.size)
                .copied()
        })
        .collect();

    let mut ranges: Vec<RangePlan> = Vec::new();
    for (i, (chunk, src)) in map.chunks.iter().zip(&sources).enumerate() {
        if src.is_some() {
            continue;
        }
        let (s, e) = chunk.span();
        match ranges.last_mut() {
            Some(last) if s.saturating_sub(last.end) <= coalesce_gap => {
                last.end = e;
                last.chunks.1 = i + 1;
            }
            _ => ranges.push(RangePlan {
                start: s,
                end: e,
                chunks: (i, i + 1),
            }),
        }
    }

    let bytes_fetched: u64 = ranges.iter().map(RangePlan::len).sum();
    let bytes_local = map.blob_size.saturating_sub(bytes_fetched);
    DeltaPlan {
        sources,
        ranges,
        bytes_local,
        bytes_fetched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random filler (xorshift64*), matching the bench
    /// harness idiom.
    fn filler(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed | 1;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.extend_from_slice(&state.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
        }
        out.truncate(len);
        out
    }

    const P: ChunkParams = ChunkParams {
        min: 1024,
        avg_bits: 12,
        max: 16 * 1024,
    };

    #[test]
    fn gear_table_is_stable() {
        // Golden values: the table must never change across platforms or
        // refactors — chunk digests are a cross-machine dedupe currency.
        assert_eq!(GEAR[0], {
            let (_, v) = splitmix64(GEAR_SEED);
            v
        });
        let mix = GEAR.iter().fold(0u64, |a, &v| a.rotate_left(7) ^ v);
        assert_eq!(mix, 0xfb72_175b_623d_2485, "gear table changed");
    }

    #[test]
    fn spans_cover_exactly() {
        let data = filler(300_000, 7);
        let spans = chunk_spans(&data, P);
        assert_eq!(spans.first().unwrap().0, 0);
        assert_eq!(spans.last().unwrap().1, data.len());
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn spans_respect_bounds() {
        let data = filler(500_000, 11);
        let spans = chunk_spans(&data, P);
        for (i, (s, e)) in spans.iter().enumerate() {
            let len = e - s;
            assert!(len <= P.max as usize);
            if i + 1 < spans.len() {
                assert!(len >= P.min as usize, "chunk {i} is {len} < min");
            }
        }
        // Sanity: cut density is in the right ballpark, not all max-forced.
        let avg = data.len() / spans.len();
        assert!(avg < P.max as usize, "every cut was max-forced");
    }

    #[test]
    fn tiny_and_empty_inputs() {
        assert!(chunk_spans(&[], P).is_empty());
        assert_eq!(chunk_spans(&[1, 2, 3], P), vec![(0, 3)]);
        let exactly_min = filler(P.min as usize, 3);
        assert_eq!(chunk_spans(&exactly_min, P), vec![(0, P.min as usize)]);
    }

    #[test]
    fn chunkmap_roundtrip_and_verify() {
        let data = filler(200_000, 5);
        let map = ChunkMap::build(&data, P).unwrap();
        assert_eq!(map.total_bytes(), data.len() as u64);
        let json = map.to_json();
        let back = ChunkMap::from_json(&json).unwrap();
        assert_eq!(back, map);
        back.verify_layer(&data).unwrap();

        let mut poisoned = data.clone();
        poisoned[100_000] ^= 0x40;
        assert!(matches!(
            back.verify_layer(&poisoned),
            Err(ChunkError::Mismatch(_))
        ));
    }

    #[test]
    fn from_json_rejects_gaps() {
        let data = filler(50_000, 9);
        let mut map = ChunkMap::build(&data, P).unwrap();
        map.chunks.remove(1);
        let err = ChunkMap::from_json(&map.to_json()).unwrap_err();
        assert!(matches!(err, ChunkError::Malformed(_)), "{err}");
    }

    #[test]
    fn delta_plan_finds_shared_chunks() {
        let v1 = filler(400_000, 21);
        let mut v2 = v1.clone();
        // One "object changed": flip a 2 KiB region in the middle.
        for b in &mut v2[200_000..202_048] {
            *b = !*b;
        }
        let map = ChunkMap::build(&v2, P).unwrap();
        let mut index = ChunkIndex::new();
        index.add_blob(Digest::of(&v1), &v1, P);
        let plan = plan_delta(&map, &index, DEFAULT_COALESCE_GAP);
        assert!(plan.chunks_hit() > 0);
        assert!(plan.bytes_fetched < v2.len() as u64 / 4, "edit re-fetched too much");
        assert_eq!(plan.bytes_fetched + plan.bytes_local, v2.len() as u64);
        // Ranges are ordered, disjoint, and cover every missing chunk.
        for w in plan.ranges.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        for (i, src) in plan.sources.iter().enumerate() {
            if src.is_none() {
                let (s, e) = map.chunks[i].span();
                assert!(
                    plan.ranges.iter().any(|r| r.start <= s && e <= r.end),
                    "missing chunk {i} not covered by any range"
                );
            }
        }
    }

    #[test]
    fn delta_plan_empty_index_fetches_everything() {
        let data = filler(100_000, 2);
        let map = ChunkMap::build(&data, P).unwrap();
        let plan = plan_delta(&map, &ChunkIndex::new(), DEFAULT_COALESCE_GAP);
        assert_eq!(plan.chunks_hit(), 0);
        assert_eq!(plan.bytes_fetched, data.len() as u64);
        // Fully coalesced: adjacent missing chunks merge into one range.
        assert_eq!(plan.ranges.len(), 1);
    }

    #[test]
    fn identical_blob_fetches_nothing() {
        let data = filler(100_000, 2);
        let map = ChunkMap::build(&data, P).unwrap();
        let mut index = ChunkIndex::new();
        index.add_blob(Digest::of(&data), &data, P);
        let plan = plan_delta(&map, &index, DEFAULT_COALESCE_GAP);
        assert_eq!(plan.chunks_missing(), 0);
        assert_eq!(plan.bytes_fetched, 0);
        assert!(plan.ranges.is_empty());
    }
}
