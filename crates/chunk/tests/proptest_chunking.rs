//! Property tests for content-defined chunking: determinism, bound
//! enforcement, coverage, and — the property the whole delta-pull design
//! rests on — boundary locality: an edit in the middle of a blob only moves
//! chunk boundaries in a bounded neighborhood around the edit.

use comt_chunk::{chunk_spans, plan_delta, ChunkIndex, ChunkMap, ChunkParams, DEFAULT_COALESCE_GAP};
use comt_digest::Digest;
use proptest::prelude::*;

const P: ChunkParams = ChunkParams {
    min: 2 * 1024,
    avg_bits: 13,
    max: 32 * 1024,
};

/// Deterministic pseudo-random content (xorshift64*): compressible enough to
/// look like real layer bytes, random enough that cut points are dense.
fn content(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
    }
    out.truncate(len);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunking is a pure function of the bytes: repeated runs and runs over
    /// a reconstructed copy agree exactly.
    #[test]
    fn chunking_is_deterministic(seed in 1u64..10_000, len in 10_000usize..400_000) {
        let data = content(len, seed);
        let a = chunk_spans(&data, P);
        let b = chunk_spans(&data.clone(), P);
        prop_assert_eq!(&a, &b);
        // And so are the chunk digests recorded in the map.
        let m1 = ChunkMap::build(&data, P).unwrap();
        let m2 = ChunkMap::from_json(&m1.to_json()).unwrap();
        prop_assert_eq!(m1, m2);
    }

    /// Spans are contiguous from 0 to len, within [min, max] except the tail.
    #[test]
    fn spans_are_well_formed(seed in 1u64..10_000, len in 0usize..300_000) {
        let data = content(len, seed);
        let spans = chunk_spans(&data, P);
        let mut expect = 0usize;
        for (i, (s, e)) in spans.iter().enumerate() {
            prop_assert_eq!(*s, expect);
            let chunk = e - s;
            prop_assert!(chunk <= P.max as usize);
            if i + 1 < spans.len() {
                prop_assert!(chunk >= P.min as usize);
            }
            expect = *e;
        }
        prop_assert_eq!(expect, len);
    }

    /// Locality: an edit (flip / insert / delete of a few bytes) leaves every
    /// boundary strictly before the edit unchanged, and boundaries
    /// re-synchronize within a bounded neighborhood after it.
    #[test]
    fn edits_move_boundaries_only_locally(
        seed in 1u64..10_000,
        edit_at_frac in 0.2f64..0.5,
        edit_len in 1usize..48,
        kind in 0u8..3,
    ) {
        let len = 2 * 1024 * 1024;
        let base = content(len, seed);
        let edit_at = (len as f64 * edit_at_frac) as usize;
        let patch = content(edit_len, seed ^ 0xdead_beef);
        let (edited, shift): (Vec<u8>, i64) = match kind {
            0 => {
                // Flip in place.
                let mut v = base.clone();
                for (i, b) in patch.iter().enumerate() {
                    v[edit_at + i] ^= b | 1;
                }
                (v, 0)
            }
            1 => {
                // Insert.
                let mut v = base[..edit_at].to_vec();
                v.extend_from_slice(&patch);
                v.extend_from_slice(&base[edit_at..]);
                (v, edit_len as i64)
            }
            _ => {
                // Delete.
                let mut v = base[..edit_at].to_vec();
                v.extend_from_slice(&base[edit_at + edit_len..]);
                (v, -(edit_len as i64))
            }
        };

        let b1: Vec<usize> = chunk_spans(&base, P).iter().map(|s| s.1).collect();
        let b2: Vec<usize> = chunk_spans(&edited, P).iter().map(|s| s.1).collect();

        // Prefix: boundaries that end strictly before the edit are identical
        // (chunking is left-to-right and each chunk's hash restarts at its
        // own start).
        let pre1: Vec<usize> = b1.iter().copied().filter(|&b| b <= edit_at).collect();
        let pre2: Vec<usize> = b2.iter().copied().filter(|&b| b <= edit_at).collect();
        prop_assert_eq!(pre1, pre2);

        // Suffix: beyond a resync window, boundaries are the same positions
        // shifted by the length delta. The window is generous (16×max =
        // 512 KiB of a 2 MiB blob) so the test never flakes on a slow
        // resync, while still proving the damage is bounded — the whole
        // second half of the blob keeps its boundaries.
        let cutoff = edit_at + edit_len + 16 * P.max as usize;
        prop_assert!(cutoff < len - 64 * 1024, "edit too close to the end");
        let tail1: Vec<i64> = b1.iter().map(|&b| b as i64 + shift).filter(|&b| b > cutoff as i64).collect();
        let tail2: Vec<i64> = b2.iter().map(|&b| b as i64).filter(|&b| b > cutoff as i64).collect();
        prop_assert_eq!(tail1, tail2);
    }

    /// The delta plan after a small edit re-fetches a bounded neighborhood,
    /// and applying it (copy local chunks, "fetch" missing ranges from the
    /// new blob) reassembles the edited blob bit-identically.
    #[test]
    fn delta_reassembly_is_bit_identical(
        seed in 1u64..10_000,
        edit_at_frac in 0.1f64..0.9,
    ) {
        let len = 256 * 1024;
        let v1 = content(len, seed);
        let mut v2 = v1.clone();
        let edit_at = (len as f64 * edit_at_frac) as usize;
        let span = (edit_at + 512).min(len);
        for b in &mut v2[edit_at..span] {
            *b = b.wrapping_add(1);
        }

        let map = ChunkMap::build(&v2, P).unwrap();
        let mut index = ChunkIndex::new();
        index.add_blob(Digest::of(&v1), &v1, P);
        let plan = plan_delta(&map, &index, DEFAULT_COALESCE_GAP);

        // Reassemble: local chunks from v1, ranges from "the wire" (v2).
        let mut out = vec![0u8; len];
        for (entry, src) in map.chunks.iter().zip(&plan.sources) {
            if let Some(src) = src {
                let (s, e) = entry.span();
                let (ls, le) = (src.offset as usize, (src.offset + src.size as u64) as usize);
                out[s as usize..e as usize].copy_from_slice(&v1[ls..le]);
            }
        }
        for r in &plan.ranges {
            out[r.start as usize..r.end as usize]
                .copy_from_slice(&v2[r.start as usize..r.end as usize]);
        }
        prop_assert_eq!(Digest::of(&out), Digest::of(&v2));
        map.verify_layer(&out).unwrap();

        // Bounded damage: a ~512-byte edit must not force re-fetching more
        // than the resync neighborhood.
        prop_assert!(
            plan.bytes_fetched as usize <= 512 + 20 * P.max as usize,
            "fetched {} bytes for a 512-byte edit",
            plan.bytes_fetched
        );
    }
}
