//! Zero-dependency observability primitives for the coMtainer engine.
//!
//! The rebuild engine, the step scheduler and the performance simulator all
//! want to answer the same questions — how long did each stage take, how
//! many steps ran, how many cache probes hit — without dragging a tracing
//! framework into a hermetic workspace. [`Recorder`] collects two kinds of
//! events:
//!
//! * **counters** — monotonically increasing named tallies
//!   ([`Recorder::count`]), e.g. `cache.hit` or `sched.steps`;
//! * **spans** — named wall-clock intervals ([`Recorder::span`]) recorded
//!   on guard drop, aggregated per name (total time + activations).
//!
//! A [`Report`] snapshot renders everything as a stable, alphabetically
//! sorted human-readable table (see [`Report::render`]) which the `comt`
//! CLI prints under `--stats` and the bench harness embeds in ablation
//! output. Recording is cheap (one mutex lock per event) and recorders are
//! `Sync`, so scheduler worker threads share one by reference.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Aggregated timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of times a span with this name was closed.
    pub count: u64,
    /// Total wall time across all activations.
    pub total: Duration,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStats>,
}

/// Collects counters and spans from one engine run (or globally, via
/// [`global`]). Thread-safe; share by reference across workers.
#[derive(Debug, Default)]
pub struct Recorder {
    state: Mutex<State>,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the named counter (creating it at zero first).
    pub fn count(&self, name: &str, n: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *st.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Open a named span; the returned guard records elapsed wall time into
    /// this recorder when dropped.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// Record an externally measured interval under a span name. Used when
    /// the duration is simulated rather than wall-clock (perfsim).
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = st.spans.entry(name.to_string()).or_default();
        s.count += 1;
        s.total += elapsed;
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot everything recorded so far.
    pub fn report(&self) -> Report {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        Report {
            counters: st.counters.clone(),
            spans: st.spans.clone(),
        }
    }

    /// Drop all recorded events (mainly for the global recorder in tests).
    pub fn reset(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.counters.clear();
        st.spans.clear();
    }
}

/// RAII guard returned by [`Recorder::span`].
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: String,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.record_span(&self.name, self.started.elapsed());
    }
}

/// An immutable snapshot of a [`Recorder`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub counters: BTreeMap<String, u64>,
    pub spans: BTreeMap<String, SpanStats>,
}

impl Report {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty()
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn span(&self, name: &str) -> SpanStats {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Merge another report into this one (summing counters and spans).
    pub fn absorb(&mut self, other: &Report) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.spans {
            let s = self.spans.entry(k.clone()).or_default();
            s.count += v.count;
            s.total += v.total;
        }
    }

    /// Render as an aligned human-readable table, sorted by name.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no events recorded)");
        }
        let width = self
            .counters
            .keys()
            .chain(self.spans.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<width$}  {v}")?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "spans:")?;
            for (name, s) in &self.spans {
                writeln!(
                    f,
                    "  {name:<width$}  {:>10}  x{}",
                    fmt_duration(s.total),
                    s.count
                )?;
            }
        }
        Ok(())
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The process-wide recorder. Components without an engine context (e.g.
/// the performance simulator) record here; callers snapshot via
/// `global().report()`.
pub fn global() -> &'static Recorder {
    static GLOBAL: std::sync::OnceLock<Recorder> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Recorder::new();
        r.count("cache.hit", 2);
        r.count("cache.hit", 3);
        r.count("cache.miss", 1);
        assert_eq!(r.counter("cache.hit"), 5);
        assert_eq!(r.counter("cache.miss"), 1);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn spans_record_on_drop() {
        let r = Recorder::new();
        {
            let _g = r.span("stage.rebuild");
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let _g = r.span("stage.rebuild");
        }
        let rep = r.report();
        let s = rep.span("stage.rebuild");
        assert_eq!(s.count, 2);
        assert!(s.total >= Duration::from_millis(1));
    }

    #[test]
    fn report_renders_sorted_table() {
        let r = Recorder::new();
        r.count("b.second", 7);
        r.count("a.first", 1);
        r.record_span("z.span", Duration::from_micros(1500));
        let text = r.report().render();
        let a = text.find("a.first").unwrap();
        let b = text.find("b.second").unwrap();
        assert!(a < b, "counters must be sorted:\n{text}");
        assert!(text.contains("1.5 ms"), "{text}");
        assert!(text.contains("x1"), "{text}");
    }

    #[test]
    fn absorb_merges() {
        let r1 = Recorder::new();
        r1.count("n", 1);
        r1.record_span("s", Duration::from_nanos(10));
        let r2 = Recorder::new();
        r2.count("n", 2);
        r2.record_span("s", Duration::from_nanos(5));
        let mut rep = r1.report();
        rep.absorb(&r2.report());
        assert_eq!(rep.counter("n"), 3);
        assert_eq!(rep.span("s").count, 2);
        assert_eq!(rep.span("s").total, Duration::from_nanos(15));
    }

    #[test]
    fn shared_across_threads() {
        let r = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        r.count("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("hits"), 400);
    }
}
