//! Zero-dependency observability primitives for the coMtainer engine.
//!
//! The rebuild engine, the step scheduler and the performance simulator all
//! want to answer the same questions — how long did each stage take, how
//! many steps ran, how many cache probes hit — without dragging a tracing
//! framework into a hermetic workspace. [`Recorder`] collects two kinds of
//! events:
//!
//! * **counters** — monotonically increasing named tallies
//!   ([`Recorder::count`]), e.g. `cache.hit` or `sched.steps`;
//! * **spans** — named wall-clock intervals ([`Recorder::span`]) recorded
//!   on guard drop, aggregated per name (total time + activations).
//!
//! A [`Report`] snapshot renders everything as a stable, alphabetically
//! sorted human-readable table (see [`Report::render`]) which the `comt`
//! CLI prints under `--stats` and the bench harness embeds in ablation
//! output. Recorders are `Sync`, so scheduler and codec worker threads
//! share one by reference; internally events land in per-thread *shards*
//! (selected by thread id, merged at snapshot time), so hot counters bumped
//! from many workers don't serialize on one mutex.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shard count: enough to spread codec/scheduler worker threads without
/// noticeably slowing the merge at snapshot time.
const SHARDS: usize = 8;

/// Per-shard, per-name cap on retained value samples. Past the cap new
/// samples overwrite a rotating slot, so memory stays bounded while the
/// retained set keeps drawing from the whole stream.
const VALUE_SAMPLE_CAP: usize = 2048;

/// Aggregated timing for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of times a span with this name was closed.
    pub count: u64,
    /// Total wall time across all activations.
    pub total: Duration,
}

/// Sampled distribution of a recorded value (latencies, sizes). Samples
/// are kept raw so a [`Report`] can answer arbitrary quantiles; the vector
/// is bounded by [`VALUE_SAMPLE_CAP`] per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueStats {
    /// Number of values ever recorded (may exceed `samples.len()`).
    pub count: u64,
    /// Retained samples, sorted ascending in a [`Report`] snapshot.
    pub samples: Vec<u64>,
}

impl ValueStats {
    /// Quantile over the retained samples (`q` in `0.0..=1.0`); zero when
    /// nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let idx = ((self.samples.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.samples[idx]
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn max(&self) -> u64 {
        self.samples.last().copied().unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStats>,
    values: BTreeMap<String, ValueStats>,
}

/// Collects counters and spans from one engine run (or globally, via
/// [`global`]). Thread-safe; share by reference across workers.
///
/// Events are accumulated into [`SHARDS`] independently locked states; a
/// recording thread only ever touches the shard its thread id hashes to,
/// so concurrent workers bumping hot counters (`flate.bytes_in`, scheduler
/// step tallies) don't contend. Reads ([`counter`](Recorder::counter),
/// [`report`](Recorder::report)) merge all shards into one snapshot.
#[derive(Debug)]
pub struct Recorder {
    shards: [Mutex<State>; SHARDS],
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            shards: std::array::from_fn(|_| Mutex::new(State::default())),
        }
    }
}

/// Shard index for the calling thread (computed once per thread).
fn shard_index() -> usize {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static IDX: usize = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish() as usize % SHARDS
        };
    }
    IDX.with(|i| *i)
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    fn my_shard(&self) -> &Mutex<State> {
        &self.shards[shard_index()]
    }

    /// Add `n` to the named counter (creating it at zero first).
    pub fn count(&self, name: &str, n: u64) {
        let mut st = self.my_shard().lock().unwrap_or_else(|e| e.into_inner());
        *st.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Open a named span; the returned guard records elapsed wall time into
    /// this recorder when dropped.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// Record one observation of a named value distribution — request
    /// latencies in microseconds, transfer sizes in bytes; the name carries
    /// the unit by convention (`….latency_us`, `….bytes`). Reports expose
    /// p50/p99/max over the retained samples.
    pub fn record_value(&self, name: &str, value: u64) {
        let mut st = self.my_shard().lock().unwrap_or_else(|e| e.into_inner());
        let v = st.values.entry(name.to_string()).or_default();
        v.count += 1;
        if v.samples.len() < VALUE_SAMPLE_CAP {
            v.samples.push(value);
        } else {
            // Rotating overwrite keeps the buffer bounded while still
            // admitting late samples.
            let slot = (v.count as usize) % VALUE_SAMPLE_CAP;
            v.samples[slot] = value;
        }
    }

    /// Record an externally measured interval under a span name. Used when
    /// the duration is simulated rather than wall-clock (perfsim).
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        let mut st = self.my_shard().lock().unwrap_or_else(|e| e.into_inner());
        let s = st.spans.entry(name.to_string()).or_default();
        s.count += 1;
        s.total += elapsed;
    }

    /// Current value of a counter (zero if never touched), summed across
    /// all shards.
    pub fn counter(&self, name: &str) -> u64 {
        self.shards
            .iter()
            .map(|sh| {
                sh.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .counters
                    .get(name)
                    .copied()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Snapshot everything recorded so far (all shards merged).
    pub fn report(&self) -> Report {
        let mut report = Report::default();
        for sh in &self.shards {
            let st = sh.lock().unwrap_or_else(|e| e.into_inner());
            for (k, v) in &st.counters {
                *report.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &st.spans {
                let s = report.spans.entry(k.clone()).or_default();
                s.count += v.count;
                s.total += v.total;
            }
            for (k, v) in &st.values {
                let s = report.values.entry(k.clone()).or_default();
                s.count += v.count;
                s.samples.extend_from_slice(&v.samples);
            }
        }
        for v in report.values.values_mut() {
            v.samples.sort_unstable();
        }
        report
    }

    /// Drop all recorded events (mainly for the global recorder in tests).
    pub fn reset(&self) {
        for sh in &self.shards {
            let mut st = sh.lock().unwrap_or_else(|e| e.into_inner());
            st.counters.clear();
            st.spans.clear();
            st.values.clear();
        }
    }
}

/// RAII guard returned by [`Recorder::span`].
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: String,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.record_span(&self.name, self.started.elapsed());
    }
}

/// An immutable snapshot of a [`Recorder`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub counters: BTreeMap<String, u64>,
    pub spans: BTreeMap<String, SpanStats>,
    pub values: BTreeMap<String, ValueStats>,
}

impl Report {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty() && self.values.is_empty()
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn span(&self, name: &str) -> SpanStats {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Distribution snapshot for a name recorded via
    /// [`Recorder::record_value`] (empty stats if never touched).
    pub fn value(&self, name: &str) -> ValueStats {
        self.values.get(name).cloned().unwrap_or_default()
    }

    /// Merge another report into this one (summing counters and spans,
    /// pooling value samples).
    pub fn absorb(&mut self, other: &Report) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.spans {
            let s = self.spans.entry(k.clone()).or_default();
            s.count += v.count;
            s.total += v.total;
        }
        for (k, v) in &other.values {
            let s = self.values.entry(k.clone()).or_default();
            s.count += v.count;
            s.samples.extend_from_slice(&v.samples);
            s.samples.sort_unstable();
        }
    }

    /// Render as an aligned human-readable table, sorted by name.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Serialize to a stable JSON document so a report can cross a process
    /// or wire boundary (buildd streams per-job reports back to remote
    /// submitters). Span totals travel as integer nanoseconds; value
    /// distributions travel with their retained samples so quantiles
    /// survive the round trip.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"spans\":{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{}}}",
                s.count,
                s.total.as_nanos().min(u128::from(u64::MAX)) as u64
            ));
        }
        out.push_str("},\"values\":{");
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push_str(&format!(":{{\"count\":{},\"samples\":[", v.count));
            for (j, s) in v.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parse a document produced by [`Report::to_json`]. The parser accepts
    /// exactly that shape (three string-keyed maps of integers / fixed
    /// objects) and rejects anything else — it is a wire decoder, not a
    /// general JSON library, which keeps this crate dependency-free.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let mut p = JsonCursor::new(text);
        let mut report = Report::default();
        p.expect('{')?;
        let mut first_section = true;
        loop {
            if p.peek() == Some('}') {
                p.next_ch();
                break;
            }
            if !first_section {
                p.expect(',')?;
            }
            first_section = false;
            let section = p.string()?;
            if !matches!(section.as_str(), "counters" | "spans" | "values") {
                return Err(format!("unexpected report section {section:?}"));
            }
            p.expect(':')?;
            p.expect('{')?;
            let mut first = true;
            loop {
                if p.peek() == Some('}') {
                    p.next_ch();
                    break;
                }
                if !first {
                    p.expect(',')?;
                }
                first = false;
                let name = p.string()?;
                p.expect(':')?;
                match section.as_str() {
                    "counters" => {
                        report.counters.insert(name, p.integer()?);
                    }
                    "spans" => {
                        let fields = p.flat_object()?;
                        report.spans.insert(
                            name,
                            SpanStats {
                                count: take_field(&fields, "count")?,
                                total: Duration::from_nanos(take_field(&fields, "total_ns")?),
                            },
                        );
                    }
                    "values" => {
                        p.expect('{')?;
                        let mut count = 0u64;
                        let mut samples = Vec::new();
                        let mut first_field = true;
                        loop {
                            if p.peek() == Some('}') {
                                p.next_ch();
                                break;
                            }
                            if !first_field {
                                p.expect(',')?;
                            }
                            first_field = false;
                            let field = p.string()?;
                            p.expect(':')?;
                            match field.as_str() {
                                "count" => count = p.integer()?,
                                "samples" => samples = p.int_array()?,
                                other => return Err(format!("unexpected value field {other:?}")),
                            }
                        }
                        report.values.insert(name, ValueStats { count, samples });
                    }
                    _ => unreachable!("section validated above"),
                }
            }
        }
        p.end()?;
        Ok(report)
    }
}

fn take_field(fields: &[(String, u64)], name: &str) -> Result<u64, String> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing field {name:?}"))
}

/// Append `s` to `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal cursor over the [`Report::to_json`] wire shape.
struct JsonCursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> JsonCursor<'a> {
    fn new(text: &'a str) -> Self {
        JsonCursor {
            chars: text.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.chars.next();
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.peek().copied()
    }

    fn next_ch(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.next()
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next_ch() {
            Some(c) if c == want => Ok(()),
            got => Err(format!("expected {want:?}, found {got:?}")),
        }
    }

    fn end(&mut self) -> Result<(), String> {
        match self.peek() {
            None => Ok(()),
            Some(c) => Err(format!("trailing input at {c:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + d.to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn integer(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let mut digits = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
            digits.push(self.chars.next().unwrap());
        }
        if digits.is_empty() {
            return Err("expected integer".into());
        }
        digits.parse().map_err(|e| format!("bad integer: {e}"))
    }

    /// An object whose values are all plain integers.
    fn flat_object(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        let mut first = true;
        loop {
            if self.peek() == Some('}') {
                self.next_ch();
                return Ok(out);
            }
            if !first {
                self.expect(',')?;
            }
            first = false;
            let key = self.string()?;
            self.expect(':')?;
            out.push((key, self.integer()?));
        }
    }

    fn int_array(&mut self) -> Result<Vec<u64>, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        let mut first = true;
        loop {
            if self.peek() == Some(']') {
                self.next_ch();
                return Ok(out);
            }
            if !first {
                self.expect(',')?;
            }
            first = false;
            out.push(self.integer()?);
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no events recorded)");
        }
        let width = self
            .counters
            .keys()
            .chain(self.spans.keys())
            .chain(self.values.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<width$}  {v}")?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "spans:")?;
            for (name, s) in &self.spans {
                writeln!(
                    f,
                    "  {name:<width$}  {:>10}  x{}",
                    fmt_duration(s.total),
                    s.count
                )?;
            }
        }
        if !self.values.is_empty() {
            writeln!(f, "values:")?;
            for (name, v) in &self.values {
                writeln!(
                    f,
                    "  {name:<width$}  n={} p50={} p99={} max={}",
                    v.count,
                    v.p50(),
                    v.p99(),
                    v.max()
                )?;
            }
        }
        Ok(())
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The process-wide recorder. Components without an engine context (e.g.
/// the performance simulator) record here; callers snapshot via
/// `global().report()`.
pub fn global() -> &'static Recorder {
    static GLOBAL: std::sync::OnceLock<Recorder> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Recorder::new();
        r.count("cache.hit", 2);
        r.count("cache.hit", 3);
        r.count("cache.miss", 1);
        assert_eq!(r.counter("cache.hit"), 5);
        assert_eq!(r.counter("cache.miss"), 1);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn spans_record_on_drop() {
        let r = Recorder::new();
        {
            let _g = r.span("stage.rebuild");
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let _g = r.span("stage.rebuild");
        }
        let rep = r.report();
        let s = rep.span("stage.rebuild");
        assert_eq!(s.count, 2);
        assert!(s.total >= Duration::from_millis(1));
    }

    #[test]
    fn report_renders_sorted_table() {
        let r = Recorder::new();
        r.count("b.second", 7);
        r.count("a.first", 1);
        r.record_span("z.span", Duration::from_micros(1500));
        let text = r.report().render();
        let a = text.find("a.first").unwrap();
        let b = text.find("b.second").unwrap();
        assert!(a < b, "counters must be sorted:\n{text}");
        assert!(text.contains("1.5 ms"), "{text}");
        assert!(text.contains("x1"), "{text}");
    }

    #[test]
    fn absorb_merges() {
        let r1 = Recorder::new();
        r1.count("n", 1);
        r1.record_span("s", Duration::from_nanos(10));
        let r2 = Recorder::new();
        r2.count("n", 2);
        r2.record_span("s", Duration::from_nanos(5));
        let mut rep = r1.report();
        rep.absorb(&r2.report());
        assert_eq!(rep.counter("n"), 3);
        assert_eq!(rep.span("s").count, 2);
        assert_eq!(rep.span("s").total, Duration::from_nanos(15));
    }

    #[test]
    fn shared_across_threads() {
        let r = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        r.count("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("hits"), 400);
    }

    #[test]
    fn values_report_quantiles() {
        let r = Recorder::new();
        for v in 1..=100u64 {
            r.record_value("dist.server.latency_us", v);
        }
        let rep = r.report();
        let v = rep.value("dist.server.latency_us");
        assert_eq!(v.count, 100);
        // Nearest-rank on 100 samples: the median index rounds to 50.
        assert_eq!(v.p50(), 51);
        assert_eq!(v.p99(), 99);
        assert_eq!(v.max(), 100);
        assert_eq!(rep.value("absent").count, 0);
        assert_eq!(rep.value("absent").p99(), 0);
        let text = rep.render();
        assert!(text.contains("values:"), "{text}");
        assert!(text.contains("p99=99"), "{text}");
    }

    #[test]
    fn values_cap_is_bounded_but_count_exact() {
        let r = Recorder::new();
        // All from one thread → one shard → cap applies.
        for v in 0..(VALUE_SAMPLE_CAP as u64 * 3) {
            r.record_value("big", v);
        }
        let rep = r.report();
        let v = rep.value("big");
        assert_eq!(v.count, VALUE_SAMPLE_CAP as u64 * 3);
        assert_eq!(v.samples.len(), VALUE_SAMPLE_CAP);
        // Samples stay sorted and in range.
        assert!(v.samples.windows(2).all(|w| w[0] <= w[1]));
        assert!(v.max() < VALUE_SAMPLE_CAP as u64 * 3);
    }

    #[test]
    fn absorb_pools_value_samples() {
        let r1 = Recorder::new();
        r1.record_value("lat", 10);
        let r2 = Recorder::new();
        r2.record_value("lat", 30);
        let mut rep = r1.report();
        rep.absorb(&r2.report());
        let v = rep.value("lat");
        assert_eq!(v.count, 2);
        assert_eq!(v.samples, vec![10, 30]);
    }

    #[test]
    fn report_json_round_trips() {
        let r = Recorder::new();
        r.count("cache.hit", 7);
        r.count("weird \"name\"\n", 1);
        r.record_span("stage.replay", Duration::from_nanos(1_234_567));
        r.record_value("job.latency_us", 10);
        r.record_value("job.latency_us", 30);
        let rep = r.report();
        let json = rep.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, rep);
        // Rendering the decoded report matches the original byte-for-byte,
        // which is exactly what a remote `--stats` consumer relies on.
        assert_eq!(back.render(), rep.render());
    }

    #[test]
    fn report_json_empty_and_malformed() {
        let empty = Report::default();
        let back = Report::from_json(&empty.to_json()).unwrap();
        assert!(back.is_empty());
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{\"counters\":{").is_err());
        assert!(Report::from_json("{\"bogus\":{}}").is_err());
        assert!(Report::from_json("{\"counters\":{}} trailing").is_err());
    }

    #[test]
    fn sharded_events_merge_into_one_report() {
        // More threads than shards: counters, spans and the rendered table
        // must still aggregate as if there were a single state.
        let r = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..(SHARDS * 3) {
                s.spawn(|| {
                    r.count("flate.bytes_in", 10);
                    r.record_span("codec.encode", Duration::from_micros(5));
                });
            }
        });
        let rep = r.report();
        assert_eq!(rep.counter("flate.bytes_in"), (SHARDS as u64 * 3) * 10);
        assert_eq!(rep.span("codec.encode").count, SHARDS as u64 * 3);
        let text = rep.render();
        assert!(text.contains("flate.bytes_in"), "{text}");
        r.reset();
        assert!(r.report().is_empty());
    }
}
