//! CRC-32 (IEEE 802.3 polynomial, reflected), as gzip uses.

/// Build the 256-entry lookup table at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"payload");
        let b = crc32(b"paylobd");
        assert_ne!(a, b);
    }
}
