//! CRC-32 (IEEE 802.3 polynomial, reflected), as gzip uses.

/// Build the 256-entry lookup table at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- crc32_combine (zlib's GF(2) matrix trick) ---------------------------
//
// CRC-32 is linear over GF(2): appending `len2` zero bytes to a message
// multiplies its CRC register by a fixed matrix. So the CRC of `A ‖ B` can
// be computed from crc(A), crc(B) and |B| alone — which is what lets each
// compression worker hash only its own block and the trailer still carry
// the whole-stream CRC.

/// Multiply a GF(2) 32×32 matrix by a vector.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Square a GF(2) 32×32 matrix.
fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// CRC-32 of the concatenation `A ‖ B`, given `crc1 = crc32(A)`,
/// `crc2 = crc32(B)` and `len2 = B.len()`.
pub fn crc32_combine(crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    // Operator for one zero bit: the reflected polynomial shift.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    let mut even = [0u32; 32];
    // even = operator for two zero bits, odd = for four, alternating.
    gf2_matrix_square(&mut even, &odd);
    gf2_matrix_square(&mut odd, &even);

    let mut crc1 = crc1;
    loop {
        // Apply len2 zero *bytes* to crc1, one bit of len2 at a time.
        gf2_matrix_square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"payload");
        let b = crc32(b"paylobd");
        assert_ne!(a, b);
    }

    #[test]
    fn combine_matches_concatenation() {
        let a = b"123456789";
        let b = b"The quick brown fox jumps over the lazy dog";
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(
            crc32_combine(crc32(a), crc32(b), b.len() as u64),
            crc32(&joined)
        );
    }

    #[test]
    fn combine_identities() {
        let c = crc32(b"block");
        // Appending nothing is the identity.
        assert_eq!(crc32_combine(c, crc32(b""), 0), c);
        // Prepending nothing yields the second CRC.
        assert_eq!(crc32_combine(crc32(b""), c, 5), c);
    }

    #[test]
    fn combine_folds_many_blocks() {
        // Fold block CRCs exactly as the parallel gzip trailer does.
        let data: Vec<u8> = (0u32..100_000).map(|i| (i % 251) as u8).collect();
        let mut combined = 0u32;
        for chunk in data.chunks(7777) {
            combined = crc32_combine(combined, crc32(chunk), chunk.len() as u64);
        }
        assert_eq!(combined, crc32(&data));
    }
}
