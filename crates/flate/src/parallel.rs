//! Block-parallel gzip, pigz-style.
//!
//! The input is split into fixed-size blocks; each block is compressed
//! independently (the LZ77 window resets at block boundaries) into a
//! *fragment*: a run of non-final DEFLATE blocks ending byte-aligned via a
//! sync-flush (an empty stored block, RFC 1951 §3.2.4 — exactly what
//! `Z_SYNC_FLUSH` emits). Fragments concatenate into one conformant DEFLATE
//! stream, terminated by a single final empty stored block. The gzip
//! trailer CRC is assembled from per-block CRCs with [`crc32_combine`], so
//! no thread ever needs to see the whole input.
//!
//! **Determinism.** A fragment is a pure function of its block's bytes, and
//! fragments are assembled in block order — so the output is bit-identical
//! for *any* worker count (1, 2, N). Blob digests and the `+coMre`
//! bit-reproducibility guarantee depend on this property; it is
//! property-tested in `tests/parallel_codec.rs`.

use crate::bits::BitWriter;
use crate::crc32::{crc32, crc32_combine};
use crate::lz77;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default compression block size. 128 KiB amortizes the per-block
/// sync-flush overhead (≤ 9 bytes) to < 0.01 % while keeping enough blocks
/// in flight to saturate a worker pool on layer-sized inputs.
pub const DEFAULT_BLOCK_SIZE: usize = 128 * 1024;

/// Worker count matching the host (at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Sync-flush marker: empty stored block, BFINAL=0 (already byte-aligned
/// when emitted after `align_byte`).
const SYNC_FLUSH: [u8; 4] = [0x00, 0x00, 0xff, 0xff];
/// Stream terminator: empty stored block with BFINAL=1.
const FINAL_BLOCK: [u8; 5] = [0x01, 0x00, 0x00, 0xff, 0xff];

/// One compressed block plus the trailer inputs its worker computed.
struct Fragment {
    bytes: Vec<u8>,
    crc: u32,
    len: u64,
}

/// Compress one block into a byte-aligned, non-final DEFLATE fragment.
///
/// Like [`crate::deflate`] this picks fixed-Huffman or stored blocks per
/// block content — the choice is a pure function of the block, preserving
/// cross-worker determinism.
fn deflate_fragment(block: &[u8]) -> Vec<u8> {
    // Fixed-Huffman candidate, closed by a sync flush.
    let mut w = BitWriter::new();
    w.put_bits(0, 1); // BFINAL = 0
    w.put_bits(0b01, 2); // fixed Huffman
    for tok in lz77::tokenize(block) {
        match tok {
            lz77::Token::Literal(b) => crate::put_fixed_litlen(&mut w, b as u16),
            lz77::Token::Match { len, dist } => {
                let (code, eb, ev) = crate::length_code(len);
                crate::put_fixed_litlen(&mut w, code);
                w.put_bits(ev as u32, eb as u32);
                let (dcode, deb, dev) = crate::dist_code(dist);
                crate::put_fixed_dist(&mut w, dcode);
                w.put_bits(dev as u32, deb as u32);
            }
        }
    }
    crate::put_fixed_litlen(&mut w, 256); // end of block
    // Sync flush: empty stored block, BFINAL=0, byte-aligned end.
    w.put_bits(0, 1);
    w.put_bits(0b00, 2);
    w.align_byte();
    w.put_aligned_bytes(&SYNC_FLUSH);
    let fixed = w.finish();

    // Stored fallback for incompressible blocks: 5 bytes per 64 KiB chunk,
    // naturally byte-aligned (no sync flush needed).
    let stored_size = block.len() + 5 * block.len().div_ceil(65535).max(1);
    if stored_size < fixed.len() {
        let mut out = Vec::with_capacity(stored_size);
        for chunk in block.chunks(65535) {
            out.push(0); // BFINAL=0 + BTYPE=00
            let len = chunk.len() as u16;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&(!len).to_le_bytes());
            out.extend_from_slice(chunk);
        }
        return out;
    }
    fixed
}

fn compress_block(block: &[u8]) -> Fragment {
    Fragment {
        crc: crc32(block),
        len: block.len() as u64,
        bytes: deflate_fragment(block),
    }
}

/// Streaming block-parallel gzip encoder.
///
/// Feed bytes with [`write`](GzipEncoder::write); full blocks are handed to
/// a worker pool immediately, so compression overlaps with whatever
/// produces the input (tar serialization, hashing). [`finish`] flushes the
/// tail block, joins the workers and assembles the gzip member.
pub struct GzipEncoder {
    block_size: usize,
    workers: usize,
    buf: Vec<u8>,
    next_index: usize,
    total_in: u64,
    /// Job channel into the pool (`None` once closed, or in inline mode).
    jobs: Option<mpsc::Sender<(usize, Vec<u8>)>>,
    results: Option<mpsc::Receiver<(usize, Fragment)>>,
    pool: Vec<JoinHandle<()>>,
    /// Fragments compressed inline (workers == 1 runs pool-free).
    inline: BTreeMap<usize, Fragment>,
}

impl GzipEncoder {
    /// Encoder with the given worker count (clamped to ≥ 1) and the
    /// default block size.
    pub fn new(workers: usize) -> Self {
        Self::with_block_size(workers, DEFAULT_BLOCK_SIZE)
    }

    /// Encoder with explicit worker count and block size.
    pub fn with_block_size(workers: usize, block_size: usize) -> Self {
        let workers = workers.max(1);
        let block_size = block_size.max(1024);
        let (jobs, results, pool) = if workers > 1 {
            let (job_tx, job_rx) = mpsc::channel::<(usize, Vec<u8>)>();
            let (res_tx, res_rx) = mpsc::channel::<(usize, Fragment)>();
            let job_rx = Arc::new(Mutex::new(job_rx));
            let pool = (0..workers)
                .map(|_| {
                    let job_rx = Arc::clone(&job_rx);
                    let res_tx = res_tx.clone();
                    std::thread::spawn(move || loop {
                        let job = {
                            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        match job {
                            Ok((idx, block)) => {
                                // Receiver gone ⇒ finish() already bailed.
                                if res_tx.send((idx, compress_block(&block))).is_err() {
                                    return;
                                }
                            }
                            Err(_) => return, // job channel closed: drain done
                        }
                    })
                })
                .collect();
            (Some(job_tx), Some(res_rx), pool)
        } else {
            (None, None, Vec::new())
        };
        GzipEncoder {
            block_size,
            workers,
            buf: Vec::with_capacity(block_size),
            next_index: 0,
            total_in: 0,
            jobs,
            results,
            pool,
            inline: BTreeMap::new(),
        }
    }

    /// Total uncompressed bytes consumed so far.
    pub fn total_in(&self) -> u64 {
        self.total_in
    }

    /// Worker threads compressing for this encoder (1 = inline).
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn dispatch_block(&mut self) {
        let block = std::mem::replace(&mut self.buf, Vec::with_capacity(self.block_size));
        let idx = self.next_index;
        self.next_index += 1;
        match &self.jobs {
            Some(tx) => {
                // Send fails only if every worker died (panicked); fall
                // back to inline compression rather than losing the block.
                if let Err(mpsc::SendError((idx, block))) = tx.send((idx, block)) {
                    self.inline.insert(idx, compress_block(&block));
                }
            }
            None => {
                let frag = compress_block(&block);
                self.inline.insert(idx, frag);
            }
        }
    }

    /// Absorb more input, dispatching every completed block to the pool.
    pub fn write(&mut self, mut data: &[u8]) {
        self.total_in += data.len() as u64;
        while !data.is_empty() {
            let room = self.block_size - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == self.block_size {
                self.dispatch_block();
            }
        }
    }

    /// Flush the tail, join the pool and return the complete gzip member.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        self.finish_into(|chunk| out.extend_from_slice(chunk));
        out
    }

    /// Like [`finish`](GzipEncoder::finish) but hands each output chunk to
    /// `sink` as soon as it is assembled, so callers can overlap
    /// compressed-blob hashing with assembly (the fused layer codec hashes
    /// while fragments stream out).
    pub fn finish_into(mut self, mut sink: impl FnMut(&[u8])) {
        if !self.buf.is_empty() {
            self.dispatch_block();
        }
        let n_blocks = self.next_index;
        // Close the job channel so workers exit after draining.
        drop(self.jobs.take());
        let mut fragments = std::mem::take(&mut self.inline);
        if let Some(results) = self.results.take() {
            while fragments.len() < n_blocks {
                match results.recv() {
                    Ok((idx, frag)) => {
                        fragments.insert(idx, frag);
                    }
                    Err(_) => break, // all workers gone; handled below
                }
            }
        }
        for h in self.pool.drain(..) {
            let _ = h.join();
        }
        assert_eq!(
            fragments.len(),
            n_blocks,
            "compression worker lost a block"
        );

        sink(&[
            0x1f, 0x8b, // magic
            8,    // CM = deflate
            0,    // FLG
            0, 0, 0, 0, // MTIME
            0,    // XFL
            255,  // OS = unknown
        ]);
        let mut crc = 0u32;
        for frag in fragments.values() {
            sink(&frag.bytes);
            crc = crc32_combine(crc, frag.crc, frag.len);
        }
        sink(&FINAL_BLOCK);
        sink(&crc.to_le_bytes());
        sink(&(self.total_in as u32).to_le_bytes());
    }
}

impl Drop for GzipEncoder {
    fn drop(&mut self) {
        // finish_into() joined already; this covers an encoder dropped
        // without finishing (e.g. on an error path).
        drop(self.jobs.take());
        drop(self.results.take());
        for h in self.pool.drain(..) {
            let _ = h.join();
        }
    }
}

/// One-shot block-parallel gzip of a full buffer.
///
/// Output is bit-identical for every `workers` value; `workers == 1`
/// compresses inline on the calling thread.
pub fn gzip_parallel(data: &[u8], workers: usize) -> Vec<u8> {
    let mut enc = GzipEncoder::new(workers);
    enc.write(data);
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gunzip;

    #[test]
    fn roundtrip_and_determinism_small() {
        let data = b"hello block-parallel world".repeat(40);
        let one = gzip_parallel(&data, 1);
        let two = gzip_parallel(&data, 2);
        let eight = gzip_parallel(&data, 8);
        assert_eq!(one, two);
        assert_eq!(one, eight);
        assert_eq!(gunzip(&one).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let gz = gzip_parallel(b"", 4);
        assert_eq!(gunzip(&gz).unwrap(), b"");
        assert_eq!(gz, gzip_parallel(b"", 1));
    }

    #[test]
    fn multiblock_input_compresses_and_roundtrips() {
        // > 3 blocks of repetitive data.
        let data = b"abcdefgh".repeat(60_000);
        let gz = gzip_parallel(&data, 4);
        assert!(gz.len() < data.len() / 4);
        assert_eq!(gunzip(&gz).unwrap(), data);
        assert_eq!(gz, gzip_parallel(&data, 1));
    }

    #[test]
    fn incompressible_multiblock_uses_stored_blocks() {
        let mut data = Vec::with_capacity(400_000);
        let mut s: u64 = 88172645463325252;
        while data.len() < 400_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            data.extend_from_slice(&s.to_le_bytes());
        }
        let gz = gzip_parallel(&data, 3);
        // Stored overhead: 5 B per 64 KiB chunk + per-block + header/trailer.
        assert!(gz.len() < data.len() + 1024);
        assert_eq!(gunzip(&gz).unwrap(), data);
        assert_eq!(gz, gzip_parallel(&data, 1));
    }

    #[test]
    fn streaming_writes_match_oneshot() {
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = gzip_parallel(&data, 2);
        let mut enc = GzipEncoder::new(2);
        for chunk in data.chunks(777) {
            enc.write(chunk);
        }
        assert_eq!(enc.finish(), oneshot);
    }

    #[test]
    fn custom_block_size_roundtrips() {
        let data = b"layer content ".repeat(9000);
        for bs in [4096usize, 64 * 1024, 1 << 20] {
            let mut a = GzipEncoder::with_block_size(1, bs);
            a.write(&data);
            let mut b = GzipEncoder::with_block_size(4, bs);
            b.write(&data);
            let (a, b) = (a.finish(), b.finish());
            assert_eq!(a, b, "block size {bs}");
            assert_eq!(gunzip(&a).unwrap(), data, "block size {bs}");
        }
    }

    #[test]
    fn serial_gzip_still_decodes() {
        // Foreign single-block members (our own serial writer stands in)
        // must keep inflating after the parallel codec lands.
        let data = b"single member".repeat(100);
        assert_eq!(gunzip(&crate::gzip(&data)).unwrap(), data);
    }
}
