//! LSB-first bit I/O, as DEFLATE specifies (RFC 1951 §3.1.1).

use crate::FlateError;

/// Bit-level writer; bits are packed LSB-first into bytes.
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated but not yet flushed (LSB-first).
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    /// Append `n` bits (value's low bits, LSB emitted first).
    pub fn put_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 16);
        self.acc |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Append `n` bits in *reversed* order — Huffman codes are stored
    /// most-significant-bit first in the spec's code tables but transmitted
    /// starting from the MSB of the code.
    pub fn put_bits_rev(&mut self, code: u32, n: u32) {
        let mut c = code;
        let mut rev = 0u32;
        for _ in 0..n {
            rev = (rev << 1) | (c & 1);
            c >>= 1;
        }
        self.put_bits(rev, n);
    }

    /// Zero-pad to the next byte boundary (no-op when already aligned).
    /// Needed for stored-block payloads and sync-flush joins, which are
    /// byte-aligned by specification (RFC 1951 §3.2.4).
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Append whole bytes. The writer must be byte-aligned.
    pub fn put_aligned_bytes(&mut self, data: &[u8]) {
        debug_assert_eq!(self.nbits, 0, "put_aligned_bytes on unaligned writer");
        self.out.extend_from_slice(data);
    }

    /// Flush the final partial byte (zero-padded) and return the stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

/// Bit-level reader over a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) -> Result<(), FlateError> {
        if self.pos >= self.data.len() {
            return Err(FlateError::UnexpectedEof);
        }
        self.acc |= (self.data[self.pos] as u32) << self.nbits;
        self.pos += 1;
        self.nbits += 8;
        Ok(())
    }

    /// Read `n` bits LSB-first.
    pub fn get_bits(&mut self, n: u32) -> Result<u32, FlateError> {
        debug_assert!(n <= 16);
        if n == 0 {
            return Ok(0);
        }
        while self.nbits < n {
            self.refill()?;
        }
        let v = self.acc & ((1u32 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    pub fn get_bit(&mut self) -> Result<u32, FlateError> {
        self.get_bits(1)
    }

    /// Discard bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Read a byte (must be byte-aligned).
    pub fn get_byte(&mut self) -> Result<u8, FlateError> {
        debug_assert!(self.nbits.is_multiple_of(8));
        if self.nbits >= 8 {
            let b = (self.acc & 0xff) as u8;
            self.acc >>= 8;
            self.nbits -= 8;
            return Ok(b);
        }
        if self.pos >= self.data.len() {
            return Err(FlateError::UnexpectedEof);
        }
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Read a little-endian u16 (byte-aligned).
    pub fn get_u16(&mut self) -> Result<u16, FlateError> {
        let lo = self.get_byte()? as u16;
        let hi = self.get_byte()? as u16;
        Ok(lo | (hi << 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0b11110000, 8);
        w.put_bits(0x3fff, 14);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(8).unwrap(), 0b11110000);
        assert_eq!(r.get_bits(14).unwrap(), 0x3fff);
    }

    #[test]
    fn reversed_codes() {
        let mut w = BitWriter::new();
        w.put_bits_rev(0b110, 3); // emitted as 0,1,1
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bit().unwrap(), 1);
        assert_eq!(r.get_bit().unwrap(), 1);
        assert_eq!(r.get_bit().unwrap(), 0);
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.put_bits(0b1, 1);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&[0x34, 0x12]);
        let mut r = BitReader::new(&bytes);
        r.get_bit().unwrap();
        r.align_byte();
        assert_eq!(r.get_u16().unwrap(), 0x1234);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.get_bits(8).unwrap(), 0xff);
        assert!(r.get_bits(1).is_err());
    }
}
