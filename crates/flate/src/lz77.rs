//! Greedy LZ77 matching with hash chains (the zlib approach, simplified).

/// Window size (maximum backward distance).
const WINDOW: usize = 32 * 1024;
/// Minimum/maximum match lengths DEFLATE can encode.
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Hash-chain search depth (speed/ratio tradeoff).
const MAX_CHAIN: usize = 64;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x7F4A));
    (h as usize) & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Tokenize input with greedy longest-match search.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut out = Vec::with_capacity(data.len() / 3 + 16);
    if data.len() < MIN_MATCH {
        out.extend(data.iter().map(|&b| Token::Literal(b)));
        return out;
    }
    // head[h] = most recent position with hash h (+1; 0 = none).
    let mut head = vec![0u32; HASH_SIZE];
    // prev[i % WINDOW] = previous position with the same hash (+1).
    let mut prev = vec![0u32; WINDOW];

    let mut i = 0usize;
    while i < data.len() {
        if i + MIN_MATCH > data.len() {
            out.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let h = hash3(data, i);
        let mut candidate = head[h] as usize;
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        while candidate > 0 && chain < MAX_CHAIN {
            let pos = candidate - 1;
            if i - pos > WINDOW {
                break;
            }
            let dist = i - pos;
            let max = (data.len() - i).min(MAX_MATCH);
            let mut l = 0usize;
            while l < max && data[pos + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = dist;
                if l >= MAX_MATCH {
                    break;
                }
            }
            candidate = prev[pos % WINDOW] as usize;
            chain += 1;
        }

        // Insert current position into the chains.
        prev[i % WINDOW] = head[h];
        head[h] = (i + 1) as u32;

        if best_len >= MIN_MATCH {
            out.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert the covered positions too (sparsely, for speed).
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= data.len() {
                let hj = hash3(data, j);
                prev[j % WINDOW] = head[hj];
                head[hj] = (j + 1) as u32;
                j += 1;
            }
            i = end;
        } else {
            out.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    out
}

/// Expand tokens back to bytes (test helper / reference semantics).
#[cfg(test)]
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let tokens = tokenize(data);
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn literal_only() {
        roundtrip(b"abc");
        roundtrip(b"");
        roundtrip(b"ab");
    }

    #[test]
    fn simple_repeat_found() {
        let tokens = tokenize(b"abcabcabc");
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        roundtrip(b"abcabcabc");
    }

    #[test]
    fn overlapping_match() {
        // "aaaaaaa" should produce a match with dist 1 (RLE via LZ77).
        let tokens = tokenize(b"aaaaaaaaaa");
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 1, .. })));
        roundtrip(b"aaaaaaaaaa");
    }

    #[test]
    fn long_input_roundtrip() {
        let mut data = Vec::new();
        for i in 0..50_000u32 {
            data.extend_from_slice(format!("line {} of text;", i % 100).as_bytes());
        }
        roundtrip(&data);
        // Highly repetitive: tokens far fewer than bytes.
        let tokens = tokenize(&data);
        assert!(tokens.len() < data.len() / 5);
    }

    #[test]
    fn max_match_respected() {
        let data = vec![b'z'; 1000];
        for t in tokenize(&data) {
            if let Token::Match { len, .. } = t {
                assert!(len as usize <= MAX_MATCH);
                assert!(len as usize >= MIN_MATCH);
            }
        }
    }
}
