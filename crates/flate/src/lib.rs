//! DEFLATE (RFC 1951) and gzip (RFC 1952), from scratch.
//!
//! Real OCI layers ship as `application/vnd.oci.image.layer.v1.tar+gzip`;
//! this crate provides the compression substrate so the image pipeline can
//! use the compressed media type:
//!
//! * [`deflate`] — an LZ77 compressor (greedy hash-chain matching) emitting
//!   fixed-Huffman DEFLATE blocks, with a stored-block fallback for
//!   incompressible input,
//! * [`inflate`] — a full decompressor handling stored, fixed-Huffman and
//!   dynamic-Huffman blocks (so foreign gzip streams decode too),
//! * [`gzip`] / [`gunzip`] — the RFC 1952 wrapper with CRC-32 integrity,
//! * [`gzip_parallel`] / [`GzipEncoder`] — block-parallel gzip (pigz-style)
//!   whose output is bit-identical for any worker count, built on
//!   [`crc32_combine`] and sync-flush block joins.

mod bits;
mod crc32;
mod huffman;
mod lz77;
mod parallel;

pub use crc32::{crc32, crc32_combine};
pub use parallel::{default_workers, gzip_parallel, GzipEncoder, DEFAULT_BLOCK_SIZE};

use bits::{BitReader, BitWriter};
use huffman::HuffmanDecoder;
use std::fmt;

/// Decompression failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlateError {
    /// Stream ended mid-structure.
    UnexpectedEof,
    /// Structural corruption with a description.
    Corrupt(&'static str),
    /// gzip CRC-32 or length check failed.
    ChecksumMismatch,
    /// gzip magic/flags unsupported.
    BadHeader,
}

impl fmt::Display for FlateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlateError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            FlateError::Corrupt(m) => write!(f, "corrupt deflate stream: {m}"),
            FlateError::ChecksumMismatch => write!(f, "gzip checksum mismatch"),
            FlateError::BadHeader => write!(f, "bad gzip header"),
        }
    }
}

impl std::error::Error for FlateError {}

// ---- length/distance code tables (RFC 1951 §3.2.5) -----------------------

/// `(extra bits, base length)` for length codes 257..=285.
const LENGTH_TABLE: [(u8, u16); 29] = [
    (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10),
    (1, 11), (1, 13), (1, 15), (1, 17), (2, 19), (2, 23), (2, 27), (2, 31),
    (3, 35), (3, 43), (3, 51), (3, 59), (4, 67), (4, 83), (4, 99), (4, 115),
    (5, 131), (5, 163), (5, 195), (5, 227), (0, 258),
];

/// `(extra bits, base distance)` for distance codes 0..=29.
const DIST_TABLE: [(u8, u16); 30] = [
    (0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (1, 7), (2, 9), (2, 13),
    (3, 17), (3, 25), (4, 33), (4, 49), (5, 65), (5, 97), (6, 129), (6, 193),
    (7, 257), (7, 385), (8, 513), (8, 769), (9, 1025), (9, 1537),
    (10, 2049), (10, 3073), (11, 4097), (11, 6145), (12, 8193), (12, 12289),
    (13, 16385), (13, 24577),
];

/// Length value → (code, extra bits, extra value).
fn length_code(len: u16) -> (u16, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    for (i, &(extra, base)) in LENGTH_TABLE.iter().enumerate().rev() {
        if len >= base {
            return (257 + i as u16, extra, len - base);
        }
    }
    unreachable!()
}

/// Distance value → (code, extra bits, extra value).
fn dist_code(dist: u16) -> (u16, u8, u16) {
    debug_assert!(dist >= 1);
    for (i, &(extra, base)) in DIST_TABLE.iter().enumerate().rev() {
        if dist >= base {
            return (i as u16, extra, dist - base);
        }
    }
    unreachable!()
}

// ---- fixed Huffman encoding (RFC 1951 §3.2.6) ----------------------------

/// Emit a literal/length symbol with the fixed code.
fn put_fixed_litlen(w: &mut BitWriter, sym: u16) {
    match sym {
        0..=143 => w.put_bits_rev(0b0011_0000 + sym as u32, 8),
        144..=255 => w.put_bits_rev(0b1_1001_0000 + (sym - 144) as u32, 9),
        256..=279 => w.put_bits_rev((sym - 256) as u32, 7),
        280..=287 => w.put_bits_rev(0b1100_0000 + (sym - 280) as u32, 8),
        _ => unreachable!(),
    }
}

/// Emit a distance symbol (fixed: 5 bits).
fn put_fixed_dist(w: &mut BitWriter, sym: u16) {
    w.put_bits_rev(sym as u32, 5);
}

/// Compress `data` into a raw DEFLATE stream (single fixed-Huffman block,
/// or a sequence of stored blocks when that would be smaller).
pub fn deflate(data: &[u8]) -> Vec<u8> {
    // First pass: fixed-Huffman with LZ77.
    let mut w = BitWriter::new();
    w.put_bits(1, 1); // BFINAL
    w.put_bits(0b01, 2); // fixed Huffman
    for tok in lz77::tokenize(data) {
        match tok {
            lz77::Token::Literal(b) => put_fixed_litlen(&mut w, b as u16),
            lz77::Token::Match { len, dist } => {
                let (code, eb, ev) = length_code(len);
                put_fixed_litlen(&mut w, code);
                w.put_bits(ev as u32, eb as u32);
                let (dcode, deb, dev) = dist_code(dist);
                put_fixed_dist(&mut w, dcode);
                w.put_bits(dev as u32, deb as u32);
            }
        }
    }
    put_fixed_litlen(&mut w, 256); // end of block
    let fixed = w.finish();

    // Stored-block fallback: 5 bytes of overhead per 65535-byte block.
    let stored_size = data.len() + 5 * data.len().div_ceil(65535).max(1);
    if stored_size < fixed.len() {
        let mut out = Vec::with_capacity(stored_size);
        let mut chunks = data.chunks(65535).peekable();
        if data.is_empty() {
            out.extend_from_slice(&[0b001, 0, 0, 0xff, 0xff]);
        }
        while let Some(chunk) = chunks.next() {
            let bfinal = if chunks.peek().is_none() { 1 } else { 0 };
            out.push(bfinal); // BFINAL + BTYPE=00 (byte aligned)
            let len = chunk.len() as u16;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&(!len).to_le_bytes());
            out.extend_from_slice(chunk);
        }
        return out;
    }
    fixed
}

/// Decompress a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.get_bits(1)?;
        let btype = r.get_bits(2)?;
        match btype {
            0b00 => {
                r.align_byte();
                let len = r.get_u16()?;
                let nlen = r.get_u16()?;
                if len != !nlen {
                    return Err(FlateError::Corrupt("stored block LEN/NLEN"));
                }
                for _ in 0..len {
                    out.push(r.get_byte()?);
                }
            }
            0b01 => inflate_block(&mut r, &mut out, &HuffmanDecoder::fixed_litlen(), &HuffmanDecoder::fixed_dist())?,
            0b10 => {
                let (litlen, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &mut out, &litlen, &dist)?;
            }
            _ => return Err(FlateError::Corrupt("reserved block type")),
        }
        if bfinal == 1 {
            break;
        }
    }
    Ok(out)
}

/// Decode one Huffman-coded block body.
fn inflate_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    litlen: &HuffmanDecoder,
    dist: &HuffmanDecoder,
) -> Result<(), FlateError> {
    loop {
        let sym = litlen.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (extra, base) = LENGTH_TABLE[(sym - 257) as usize];
                let len = base + r.get_bits(extra as u32)? as u16;
                let dsym = dist.decode(r)?;
                if dsym as usize >= DIST_TABLE.len() {
                    return Err(FlateError::Corrupt("distance symbol"));
                }
                let (dex, dbase) = DIST_TABLE[dsym as usize];
                let d = dbase as usize + r.get_bits(dex as u32)? as usize;
                if d == 0 || d > out.len() {
                    return Err(FlateError::Corrupt("distance beyond output"));
                }
                let start = out.len() - d;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(FlateError::Corrupt("literal/length symbol")),
        }
    }
}

/// Read the dynamic Huffman table definitions (RFC 1951 §3.2.7).
fn read_dynamic_tables(
    r: &mut BitReader<'_>,
) -> Result<(HuffmanDecoder, HuffmanDecoder), FlateError> {
    const ORDER: [usize; 19] = [
        16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
    ];
    let hlit = r.get_bits(5)? as usize + 257;
    let hdist = r.get_bits(5)? as usize + 1;
    let hclen = r.get_bits(4)? as usize + 4;
    let mut cl_lens = [0u8; 19];
    for &idx in ORDER.iter().take(hclen) {
        cl_lens[idx] = r.get_bits(3)? as u8;
    }
    let cl_decoder = HuffmanDecoder::from_lengths(&cl_lens)
        .ok_or(FlateError::Corrupt("code-length table"))?;

    let mut lens = Vec::with_capacity(hlit + hdist);
    while lens.len() < hlit + hdist {
        let sym = cl_decoder.decode(r)?;
        match sym {
            0..=15 => lens.push(sym as u8),
            16 => {
                let prev = *lens.last().ok_or(FlateError::Corrupt("repeat with no previous"))?;
                let n = 3 + r.get_bits(2)?;
                for _ in 0..n {
                    lens.push(prev);
                }
            }
            17 => {
                let n = 3 + r.get_bits(3)?;
                lens.resize(lens.len() + n as usize, 0);
            }
            18 => {
                let n = 11 + r.get_bits(7)?;
                lens.resize(lens.len() + n as usize, 0);
            }
            _ => return Err(FlateError::Corrupt("code-length symbol")),
        }
    }
    if lens.len() != hlit + hdist {
        return Err(FlateError::Corrupt("code-length overflow"));
    }
    let litlen = HuffmanDecoder::from_lengths(&lens[..hlit])
        .ok_or(FlateError::Corrupt("literal/length table"))?;
    let dist = HuffmanDecoder::from_lengths(&lens[hlit..])
        .ok_or(FlateError::Corrupt("distance table"))?;
    Ok((litlen, dist))
}

// ---- gzip wrapper (RFC 1952) ---------------------------------------------

/// Compress into a gzip member.
pub fn gzip(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&[
        0x1f, 0x8b, // magic
        8,    // CM = deflate
        0,    // FLG
        0, 0, 0, 0, // MTIME
        0,    // XFL
        255,  // OS = unknown
    ]);
    out.extend_from_slice(&deflate(data));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompress a gzip member, verifying CRC-32 and length.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    if data.len() < 18 {
        return Err(FlateError::UnexpectedEof);
    }
    if data[0] != 0x1f || data[1] != 0x8b || data[2] != 8 {
        return Err(FlateError::BadHeader);
    }
    let flg = data[3];
    let mut pos = 10usize;
    if flg & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err(FlateError::UnexpectedEof);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for mask in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flg & mask != 0 {
            while *data.get(pos).ok_or(FlateError::UnexpectedEof)? != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flg & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if pos + 8 > data.len() {
        return Err(FlateError::UnexpectedEof);
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate(body)?;
    let crc_expected = u32::from_le_bytes(data[data.len() - 8..data.len() - 4].try_into().unwrap());
    let isize = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(&out) != crc_expected || out.len() as u32 != isize {
        return Err(FlateError::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let comp = deflate(data);
        let back = inflate(&comp).expect("inflate");
        assert_eq!(back, data);
        let gz = gzip(data);
        let back2 = gunzip(&gz).expect("gunzip");
        assert_eq!(back2, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(b"");
    }

    #[test]
    fn roundtrip_short() {
        roundtrip(b"hello, deflate world");
    }

    #[test]
    fn roundtrip_repetitive_compresses() {
        let data = b"abcabcabcabcabc".repeat(1000);
        let comp = deflate(&data);
        assert!(comp.len() < data.len() / 4, "{} vs {}", comp.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        // Pseudo-random bytes: fixed-Huffman would expand them; the stored
        // fallback caps overhead at ~5 bytes / 64 KiB.
        let mut data = Vec::with_capacity(200_000);
        let mut s: u64 = 88172645463325252;
        while data.len() < 200_000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            data.extend_from_slice(&s.to_le_bytes());
        }
        let comp = deflate(&data);
        assert!(comp.len() <= data.len() + 5 * (data.len() / 65535 + 1));
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }

    #[test]
    fn long_matches_and_max_length() {
        let mut data = vec![b'x'; 10_000];
        data.extend_from_slice(b"END");
        roundtrip(&data);
    }

    #[test]
    fn gunzip_rejects_corruption() {
        let gz = gzip(b"payload payload payload");
        // Flip a body bit.
        let mut bad = gz.clone();
        bad[14] ^= 0x10;
        assert!(gunzip(&bad).is_err());
        // Flip a CRC bit.
        let mut bad2 = gz.clone();
        let n = bad2.len();
        bad2[n - 6] ^= 1;
        assert!(matches!(gunzip(&bad2), Err(FlateError::ChecksumMismatch)));
        // Truncate.
        assert!(gunzip(&gz[..10]).is_err());
        // Bad magic.
        let mut bad3 = gz;
        bad3[0] = 0;
        assert!(matches!(gunzip(&bad3), Err(FlateError::BadHeader)));
    }

    #[test]
    fn inflate_rejects_garbage() {
        assert!(inflate(&[0xff, 0xff, 0xff]).is_err());
        assert!(inflate(&[]).is_err());
    }

    #[test]
    fn gunzip_skips_optional_fname() {
        // Hand-build a gzip member with FNAME set.
        let data = b"named stream";
        let raw = deflate(data);
        let mut gz = vec![0x1f, 0x8b, 8, 0x08, 0, 0, 0, 0, 0, 255];
        gz.extend_from_slice(b"file.tar\0");
        gz.extend_from_slice(&raw);
        gz.extend_from_slice(&crc32(data).to_le_bytes());
        gz.extend_from_slice(&(data.len() as u32).to_le_bytes());
        assert_eq!(gunzip(&gz).unwrap(), data);
    }

    #[test]
    fn stored_multiblock() {
        // > 64 KiB of incompressible data exercises multiple stored blocks.
        let mut data = Vec::new();
        let mut s: u32 = 0xdeadbeef;
        while data.len() < 150_000 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            data.extend_from_slice(&s.to_le_bytes());
        }
        roundtrip(&data);
    }
}
