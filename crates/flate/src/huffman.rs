//! Canonical Huffman decoding (RFC 1951 §3.2.2).

use crate::bits::BitReader;
use crate::FlateError;

const MAX_BITS: usize = 15;

/// A canonical Huffman decoder built from code lengths.
pub struct HuffmanDecoder {
    /// Number of codes of each length 1..=15.
    counts: [u16; MAX_BITS + 1],
    /// Symbols ordered by (length, symbol) — the canonical ordering.
    symbols: Vec<u16>,
}

impl HuffmanDecoder {
    /// Build from per-symbol code lengths (0 = unused). Returns `None` for
    /// oversubscribed or (non-trivially) incomplete codes.
    pub fn from_lengths(lengths: &[u8]) -> Option<Self> {
        let mut counts = [0u16; MAX_BITS + 1];
        for &l in lengths {
            if l as usize > MAX_BITS {
                return None;
            }
            counts[l as usize] += 1;
        }
        counts[0] = 0;

        // Kraft inequality check.
        let mut left = 1i32;
        for &count in counts.iter().skip(1) {
            left <<= 1;
            left -= count as i32;
            if left < 0 {
                return None; // oversubscribed
            }
        }

        // Offsets into the symbol table per length.
        let mut offs = [0usize; MAX_BITS + 2];
        for len in 1..=MAX_BITS {
            offs[len + 1] = offs[len] + counts[len] as usize;
        }
        let total = offs[MAX_BITS + 1];
        let mut symbols = vec![0u16; total];
        let mut next = offs;
        for (sym, &l) in lengths.iter().enumerate() {
            if l != 0 {
                symbols[next[l as usize]] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Some(HuffmanDecoder { counts, symbols })
    }

    /// The fixed literal/length code (RFC 1951 §3.2.6).
    pub fn fixed_litlen() -> Self {
        let mut lengths = [0u8; 288];
        for (i, l) in lengths.iter_mut().enumerate() {
            *l = match i {
                0..=143 => 8,
                144..=255 => 9,
                256..=279 => 7,
                _ => 8,
            };
        }
        Self::from_lengths(&lengths).expect("fixed table is valid")
    }

    /// The fixed distance code: 30 symbols of length 5.
    pub fn fixed_dist() -> Self {
        Self::from_lengths(&[5u8; 30]).expect("fixed table is valid")
    }

    /// Decode one symbol, reading bits MSB-of-code-first.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, FlateError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= r.get_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(FlateError::Corrupt("invalid Huffman code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    #[test]
    fn canonical_assignment() {
        // RFC 1951's example: lengths (3,3,3,3,3,2,4,4) for symbols A..H.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        // Symbol F (index 5) has the shortest code 00.
        let mut w = BitWriter::new();
        w.put_bits_rev(0b00, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 5);
    }

    #[test]
    fn oversubscribed_rejected() {
        assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_none());
    }

    #[test]
    fn too_long_rejected() {
        assert!(HuffmanDecoder::from_lengths(&[16]).is_none());
    }

    #[test]
    fn fixed_tables_build() {
        HuffmanDecoder::fixed_litlen();
        HuffmanDecoder::fixed_dist();
    }

    #[test]
    fn fixed_litlen_roundtrip_samples() {
        let dec = HuffmanDecoder::fixed_litlen();
        // Encode symbol 65 ('A'): 8-bit code 0x30+65 = 0x71.
        let mut w = BitWriter::new();
        w.put_bits_rev(0x30 + 65, 8);
        // And symbol 256 (end of block): 7-bit code 0.
        w.put_bits_rev(0, 7);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 65);
        assert_eq!(dec.decode(&mut r).unwrap(), 256);
    }

    #[test]
    fn garbage_is_invalid_code() {
        // A single-symbol code can't consume 15 one-bits.
        let dec = HuffmanDecoder::from_lengths(&[1, 1]).unwrap();
        let bytes = [0xffu8; 4];
        let mut r = BitReader::new(&bytes);
        // Always decodes symbol 1 (code "1"); never errors for this table.
        assert_eq!(dec.decode(&mut r).unwrap(), 1);
        // But an incomplete deeper table can fail:
        let deep = HuffmanDecoder::from_lengths(&[2, 2, 2]).unwrap(); // incomplete
        let mut r2 = BitReader::new(&bytes);
        assert!(deep.decode(&mut r2).is_err() || deep.decode(&mut r2).is_ok());
    }
}
