//! Interoperability with the system gzip: our output must decode with
//! real gunzip and we must decode real gzip output (which uses dynamic
//! Huffman blocks our compressor never emits).

use std::io::Write;
use std::process::{Command, Stdio};

fn have_system_gzip() -> bool {
    Command::new("gzip").arg("--version").output().is_ok()
}

fn pipe(cmd: &str, args: &[&str], input: &[u8]) -> Vec<u8> {
    let mut child = Command::new(cmd)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn");
    child.stdin.as_mut().unwrap().write_all(input).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{cmd} failed");
    out.stdout
}

#[test]
fn system_gunzip_reads_our_output() {
    if !have_system_gzip() {
        eprintln!("skipping: no system gzip");
        return;
    }
    let data = b"coMtainer layer payload ".repeat(500);
    let ours = comt_flate::gzip(&data);
    let decoded = pipe("gzip", &["-dc"], &ours);
    assert_eq!(decoded, data);
}

#[test]
fn system_gunzip_reads_parallel_output() {
    if !have_system_gzip() {
        eprintln!("skipping: no system gzip");
        return;
    }
    // Multi-block member with sync-flush joins: real gunzip must accept the
    // fragment framing (it is plain RFC 1951/1952).
    let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
    let ours = comt_flate::gzip_parallel(&data, 4);
    let decoded = pipe("gzip", &["-dc"], &ours);
    assert_eq!(decoded, data);
}

#[test]
fn we_read_system_gzip_output() {
    if !have_system_gzip() {
        eprintln!("skipping: no system gzip");
        return;
    }
    // gzip -9 emits dynamic-Huffman blocks: exercises the full inflate path.
    let data: Vec<u8> = (0..40_000u32)
        .flat_map(|i| format!("record {} field {}\n", i % 97, i % 13).into_bytes())
        .collect();
    let theirs = pipe("gzip", &["-9c"], &data);
    let decoded = comt_flate::gunzip(&theirs).expect("decode real gzip");
    assert_eq!(decoded, data);
}

#[test]
fn we_read_system_gzip_of_incompressible() {
    if !have_system_gzip() {
        eprintln!("skipping: no system gzip");
        return;
    }
    let mut data = Vec::new();
    let mut s: u64 = 0x1234_5678_9abc_def0;
    while data.len() < 100_000 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        data.extend_from_slice(&s.to_le_bytes());
    }
    let theirs = pipe("gzip", &["-1c"], &data);
    let decoded = comt_flate::gunzip(&theirs).expect("decode real gzip");
    assert_eq!(decoded, data);
}
