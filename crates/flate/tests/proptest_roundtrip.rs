//! Property tests: compress/decompress is the identity for arbitrary
//! inputs, and the gzip container detects arbitrary corruption.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn deflate_roundtrip(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let comp = comt_flate::deflate(&data);
        prop_assert_eq!(comt_flate::inflate(&comp).unwrap(), data);
    }

    #[test]
    fn gzip_roundtrip(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let gz = comt_flate::gzip(&data);
        prop_assert_eq!(comt_flate::gunzip(&gz).unwrap(), data);
    }

    #[test]
    fn repetitive_input_compresses(
        unit in prop::collection::vec(any::<u8>(), 4..32),
        reps in 100usize..400,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let gz = comt_flate::gzip(&data);
        prop_assert!(gz.len() < data.len() / 2);
        prop_assert_eq!(comt_flate::gunzip(&gz).unwrap(), data);
    }

    #[test]
    fn bit_flips_never_pass_silently(
        data in prop::collection::vec(any::<u8>(), 64..512),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let gz = comt_flate::gzip(&data);
        let mut bad = gz.clone();
        let i = byte_idx.index(bad.len());
        bad[i] ^= 1 << bit;
        match comt_flate::gunzip(&bad) {
            // Either an error…
            Err(_) => {}
            // …or (if the flip hit a dont-care header byte) the original.
            Ok(out) => prop_assert_eq!(out, data),
        }
    }
}
