//! Property tests for the block-parallel codec: bit-identical output
//! across worker counts, roundtrip identity on every input shape, the
//! `crc32_combine` algebra, and backward compatibility with single-block
//! (serial / foreign) streams.

use comt_flate::{crc32, crc32_combine, gunzip, gzip_parallel, GzipEncoder};
use proptest::prelude::*;

/// Inputs spanning multiple 128 KiB blocks would make proptest slow; cover
/// the multi-block regime with a smaller block size instead.
fn multiblock(data: &[u8], workers: usize) -> Vec<u8> {
    let mut enc = GzipEncoder::with_block_size(workers, 4096);
    enc.write(data);
    enc.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byte_identical_across_worker_counts(
        data in prop::collection::vec(any::<u8>(), 0..40_000),
    ) {
        let k1 = gzip_parallel(&data, 1);
        let k2 = gzip_parallel(&data, 2);
        let k8 = gzip_parallel(&data, 8);
        prop_assert_eq!(&k1, &k2);
        prop_assert_eq!(&k1, &k8);
        // Same determinism with many small blocks in flight.
        let m1 = multiblock(&data, 1);
        let m8 = multiblock(&data, 8);
        prop_assert_eq!(m1, m8);
    }

    #[test]
    fn roundtrip_random(data in prop::collection::vec(any::<u8>(), 0..40_000)) {
        prop_assert_eq!(gunzip(&gzip_parallel(&data, 4)).unwrap(), data.clone());
        prop_assert_eq!(gunzip(&multiblock(&data, 4)).unwrap(), data);
    }

    #[test]
    fn roundtrip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 4..32),
        reps in 200usize..800,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let gz = multiblock(&data, 4);
        prop_assert!(gz.len() < data.len() / 2);
        prop_assert_eq!(gunzip(&gz).unwrap(), data);
    }

    #[test]
    fn roundtrip_incompressible(seed in any::<u64>(), len in 10_000usize..60_000) {
        // xorshift noise defeats LZ77: exercises the stored-block fragments.
        let mut s = seed | 1;
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            data.extend_from_slice(&s.to_le_bytes());
        }
        data.truncate(len);
        let gz = multiblock(&data, 3);
        // Stored fragments bound expansion to block framing overhead.
        prop_assert!(gz.len() < data.len() + data.len() / 16 + 128);
        prop_assert_eq!(gunzip(&gz).unwrap(), data);
    }

    #[test]
    fn crc32_combine_matches_whole_input(
        a in prop::collection::vec(any::<u8>(), 0..4096),
        b in prop::collection::vec(any::<u8>(), 0..4096),
        c in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let whole: Vec<u8> = [a.as_slice(), b.as_slice(), c.as_slice()].concat();
        let folded = crc32_combine(
            crc32_combine(crc32(&a), crc32(&b), b.len() as u64),
            crc32(&c),
            c.len() as u64,
        );
        prop_assert_eq!(folded, crc32(&whole));
    }

    #[test]
    fn chunked_streaming_is_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 1..30_000),
        chunk in 1usize..5000,
    ) {
        let mut enc = GzipEncoder::with_block_size(2, 4096);
        for piece in data.chunks(chunk) {
            enc.write(piece);
        }
        let mut oneshot = GzipEncoder::with_block_size(2, 4096);
        oneshot.write(&data);
        prop_assert_eq!(enc.finish(), oneshot.finish());
    }

    #[test]
    fn foreign_single_block_streams_still_inflate(
        data in prop::collection::vec(any::<u8>(), 0..20_000),
    ) {
        // The serial writer emits one BFINAL=1 member with no sync-flush
        // joins — the shape foreign encoders and pre-codec blobs use.
        prop_assert_eq!(gunzip(&comt_flate::gzip(&data)).unwrap(), data);
    }
}

/// RFC 1952 check values: the gzip trailer CRC for known strings must come
/// out identical whether hashed whole or folded from block CRCs.
#[test]
fn crc32_combine_known_vectors() {
    let cases: [(&[u8], &[u8], u32); 3] = [
        (b"123456789", b"", 0xCBF4_3926),
        (b"1234", b"56789", 0xCBF4_3926),
        (
            b"The quick brown fox ",
            b"jumps over the lazy dog",
            0x414F_A339,
        ),
    ];
    for (a, b, expected) in cases {
        assert_eq!(
            crc32_combine(crc32(a), crc32(b), b.len() as u64),
            expected,
            "{:?} + {:?}",
            a,
            b
        );
    }
}

/// The gzip members the parallel encoder emits carry the standard header
/// and an RFC 1952 trailer (CRC32 + ISIZE) over the whole input.
#[test]
fn parallel_member_has_standard_framing() {
    let data = b"framing check ".repeat(1000);
    let gz = gzip_parallel(&data, 4);
    assert_eq!(&gz[..3], &[0x1f, 0x8b, 8], "magic + deflate CM");
    let n = gz.len();
    let crc = u32::from_le_bytes(gz[n - 8..n - 4].try_into().unwrap());
    let isize_ = u32::from_le_bytes(gz[n - 4..].try_into().unwrap());
    assert_eq!(crc, crc32(&data));
    assert_eq!(isize_ as usize, data.len());
}
