//! Disk-backed content-addressed storage with a crash-safe commit protocol.
//!
//! Every mutation of an on-disk layout follows the same discipline:
//!
//! ```text
//! write payload → .tmp.<pid>-<seq> (same directory)
//! fsync the tmp file
//! rename(tmp, final)              # atomic on POSIX
//! fsync the directory             # persist the rename itself
//! ```
//!
//! Blobs are immutable once renamed into `blobs/sha256/<hex>`; `index.json`
//! and the `oci-layout` marker are replaced atomically the same way. A
//! process killed at any instant therefore leaves either the old file, the
//! new file, or an orphan `.tmp.*` — never a half-written final path.
//! `comt fsck` diagnoses (and `--repair` sweeps) the orphans.
//!
//! Writers coordinate through [`LayoutLock`], an advisory OS lock on
//! `.comt.lock` in the layout root. The lock dies with the process (even
//! `kill -9`), so a crashed daemon never wedges the layout.

use crate::layout::LayoutError;
use crate::spec::{Descriptor, ImageIndex, MediaType};
use crate::store::{closure_of_manifest, RegistryError};
use bytes::Bytes;
use comt_digest::Digest;
use std::fs::{File, OpenOptions, TryLockError};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Advisory lock file name, in the layout root (not under `blobs/`).
pub const LOCK_FILE: &str = ".comt.lock";

/// Prefix of in-flight commit files. Anything carrying it is an orphan of
/// a crashed writer once no process holds the layout lock.
pub const TMP_PREFIX: &str = ".tmp.";

/// Contents of the `oci-layout` version marker.
pub const OCI_LAYOUT_MARKER: &[u8] = b"{\"imageLayoutVersion\": \"1.0.0\"}";

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_name() -> String {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{TMP_PREFIX}{}-{}", std::process::id(), seq)
}

/// fsync a directory so a just-committed rename survives power loss.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Write `data` to a fresh tmp file in `path`'s directory, fsync it, and
/// atomically rename it over `path`, fsyncing the directory after.
pub(crate) fn commit_file(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().expect("commit target has a parent");
    let tmp = dir.join(tmp_name());
    let mut f = File::create(&tmp)?;
    f.write_all(data)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    fsync_dir(dir)
}

/// An exclusive advisory lock on one on-disk layout.
///
/// `comt serve` holds it for the daemon's lifetime; `save`, `gc --apply`
/// and `fsck --repair` hold it for the duration of their mutation. The OS
/// releases it when the holding process exits by any means, so no stale
/// lock survives a crash.
#[derive(Debug)]
pub struct LayoutLock {
    _file: File,
    path: PathBuf,
}

impl LayoutLock {
    /// Acquire the layout's exclusive lock, creating the directory and the
    /// lock file as needed. Fails fast with [`LayoutError::Locked`] if
    /// another live process holds it.
    pub fn acquire(dir: &Path) -> Result<LayoutLock, LayoutError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_FILE);
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {
                // Record the holder's pid — purely diagnostic; the OS lock
                // is the actual mutual exclusion.
                let _ = file.set_len(0);
                let _ = writeln!(&file, "{}", std::process::id());
                Ok(LayoutLock { _file: file, path })
            }
            Err(TryLockError::WouldBlock) => {
                let holder = std::fs::read_to_string(&path)
                    .ok()
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty());
                Err(LayoutError::Locked {
                    path: path.display().to_string(),
                    holder,
                })
            }
            Err(TryLockError::Error(e)) => Err(e.into()),
        }
    }

    /// Path of the lock file (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A disk-backed content-addressed blob store rooted at an OCI layout
/// directory. Reads are lazy and digest-verified; writes follow the
/// tmp → fsync → rename commit protocol, so a blob path either holds the
/// complete verified content or does not exist.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Open a layout directory for writing, creating the skeleton
    /// (`blobs/sha256/`, `oci-layout` marker) if absent.
    pub fn init(root: &Path) -> Result<DiskStore, LayoutError> {
        let store = DiskStore {
            root: root.to_path_buf(),
        };
        std::fs::create_dir_all(store.blobs_dir())?;
        let marker = root.join("oci-layout");
        if !marker.exists() {
            commit_file(&marker, OCI_LAYOUT_MARKER)?;
        }
        Ok(store)
    }

    /// Open an existing layout directory without creating anything.
    pub fn open(root: &Path) -> Result<DiskStore, LayoutError> {
        if !root.join("index.json").is_file() && !root.join("blobs").is_dir() {
            return Err(LayoutError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("not an OCI layout: {}", root.display()),
            )));
        }
        Ok(DiskStore {
            root: root.to_path_buf(),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn blobs_dir(&self) -> PathBuf {
        self.root.join("blobs").join("sha256")
    }

    /// Final on-disk path of a blob.
    pub fn blob_path(&self, digest: &Digest) -> PathBuf {
        self.blobs_dir().join(digest.hex())
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.blob_path(digest).is_file()
    }

    /// Size in bytes of a committed blob, if present.
    pub fn blob_len(&self, digest: &Digest) -> Option<u64> {
        std::fs::metadata(self.blob_path(digest))
            .ok()
            .filter(|m| m.is_file())
            .map(|m| m.len())
    }

    /// Read a blob and verify its content against its address. `Ok(None)`
    /// means absent; a present-but-corrupt blob is
    /// [`LayoutError::DigestMismatch`] — torn state, never silently served.
    pub fn read_blob(&self, digest: &Digest) -> Result<Option<Bytes>, LayoutError> {
        let path = self.blob_path(digest);
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if Digest::of(&data) != *digest {
            return Err(LayoutError::DigestMismatch {
                path: path.display().to_string(),
            });
        }
        Ok(Some(Bytes::from(data)))
    }

    /// Commit a blob under its claimed digest, re-hashing first (the trust
    /// boundary for wire uploads and cross-process copies). Returns `true`
    /// if the blob was newly written, `false` if already present.
    pub fn put_blob(&self, digest: &Digest, data: &[u8]) -> Result<bool, LayoutError> {
        if Digest::of(data) != *digest {
            return Err(LayoutError::DigestMismatch {
                path: self.blob_path(digest).display().to_string(),
            });
        }
        let path = self.blob_path(digest);
        if path.is_file() {
            return Ok(false);
        }
        commit_file(&path, data)?;
        Ok(true)
    }

    /// Delete a committed blob (GC path); returns whether it existed.
    pub fn remove_blob(&self, digest: &Digest) -> Result<bool, LayoutError> {
        let path = self.blob_path(digest);
        match std::fs::remove_file(&path) {
            Ok(()) => {
                fsync_dir(&self.blobs_dir())?;
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Digests of every well-formed blob file with its size, in digest
    /// order. Tmp orphans and foreign files are skipped here — `comt fsck`
    /// is the pass that reports them.
    pub fn digests(&self) -> Result<Vec<(Digest, u64)>, LayoutError> {
        let dir = self.blobs_dir();
        let mut out = Vec::new();
        if !dir.is_dir() {
            return Ok(out);
        }
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Ok(d) = format!("sha256:{name}").parse::<Digest>() else {
                continue;
            };
            let meta = entry.metadata()?;
            if meta.is_file() {
                out.push((d, meta.len()));
            }
        }
        out.sort_by_key(|(d, _)| *d);
        Ok(out)
    }

    /// Parse `index.json`, refusing torn or missing state with an error
    /// that points at `comt fsck`.
    pub fn read_index(&self) -> Result<ImageIndex, LayoutError> {
        let path = self.root.join("index.json");
        let raw = match std::fs::read(&path) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(LayoutError::Torn {
                    path: path.display().to_string(),
                    detail: "index.json is missing".into(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        serde_json::from_slice(&raw).map_err(|e| LayoutError::Torn {
            path: path.display().to_string(),
            detail: format!("index.json does not parse: {e}"),
        })
    }

    /// Atomically replace `index.json` (and refresh the `oci-layout`
    /// marker). This is the commit point of every layout mutation: the tag
    /// table flips from old to new in one rename.
    pub fn commit_index(&self, index: &ImageIndex) -> Result<(), LayoutError> {
        let marker = self.root.join("oci-layout");
        if !marker.is_file() {
            commit_file(&marker, OCI_LAYOUT_MARKER)?;
        }
        let json = serde_json::to_vec_pretty(index)
            .map_err(|e| LayoutError::BadJson(e.to_string()))?;
        commit_file(&self.root.join("index.json"), &json)?;
        Ok(())
    }
}

fn storage_err(e: LayoutError) -> RegistryError {
    match e {
        LayoutError::DigestMismatch { path } => RegistryError::DigestMismatch(path),
        other => RegistryError::Storage(other.to_string()),
    }
}

/// A registry whose blobs and tag table live on disk, held open under the
/// layout lock. Each published manifest is committed durably before its
/// tag becomes visible, so a `kill -9` of the daemon loses at most the
/// in-flight stage: every previously visible tag still resolves and pulls
/// bit-identically after restart.
#[derive(Debug)]
pub struct DiskRegistry {
    store: DiskStore,
    index: ImageIndex,
    _lock: LayoutLock,
}

impl DiskRegistry {
    /// Lock and open a layout directory as a live registry. An empty or
    /// absent directory becomes an empty registry; an existing layout's
    /// tags are served as `name:tag` keys (bare ref names answer to
    /// `name:latest`).
    pub fn open(dir: &Path) -> Result<DiskRegistry, LayoutError> {
        let lock = LayoutLock::acquire(dir)?;
        let store = DiskStore::init(dir)?;
        let index = if store.root().join("index.json").is_file() {
            store.read_index()?
        } else {
            // Commit the empty tag table now so the layout is complete
            // (fsck-clean) from the first instant, however the daemon dies.
            let index = ImageIndex::default();
            store.commit_index(&index)?;
            index
        };
        Ok(DiskRegistry {
            store,
            index,
            _lock: lock,
        })
    }

    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    pub fn index(&self) -> &ImageIndex {
        &self.index
    }

    /// Tag keys served on the wire, sorted.
    pub fn tags(&self) -> Vec<String> {
        self.index.ref_names()
    }

    /// Resolve a wire tag key (`name:reference`). Layout ref names that
    /// already carry an explicit `:tag` match exactly; a bare ref name
    /// (`app.dist+coM`) answers to its `latest` reference.
    pub fn resolve(&self, key: &str) -> Option<Digest> {
        if let Some(desc) = self.index.find_ref(key) {
            return desc.parsed_digest().ok();
        }
        let bare = key.strip_suffix(":latest")?;
        self.index.find_ref(bare)?.parsed_digest().ok()
    }

    /// Stage-and-commit a manifest publish: verify every closure blob is
    /// already durable and bit-correct (lazy reads, one blob in memory at
    /// a time), persist the manifest blob, then atomically commit the new
    /// tag table. A failure at any step leaves the previous tag table and
    /// all previously committed blobs untouched.
    pub fn publish_manifest(
        &mut self,
        key: &str,
        manifest: Bytes,
    ) -> Result<Digest, RegistryError> {
        let digest = Digest::of(&manifest);
        let closure = closure_of_manifest(&manifest, &digest)?;
        for d in closure.iter().skip(1) {
            match self.store.read_blob(d) {
                Ok(Some(_)) => {}
                Ok(None) => return Err(RegistryError::MissingBlob(d.to_string())),
                Err(LayoutError::DigestMismatch { .. }) => {
                    return Err(RegistryError::DigestMismatch(d.to_string()))
                }
                Err(e) => return Err(storage_err(e)),
            }
        }
        self.store
            .put_blob(&digest, &manifest)
            .map_err(storage_err)?;
        let mut next = self.index.clone();
        next.set_ref(
            key,
            Descriptor::new(MediaType::ImageManifest, digest, manifest.len() as u64),
        );
        self.store.commit_index(&next).map_err(storage_err)?;
        self.index = next;
        Ok(digest)
    }

    /// Chunkmap blob digest recorded for a layer blob, if any.
    pub fn chunkmap_for(&self, layer: &Digest) -> Option<Digest> {
        self.index.chunkmap_for(layer)?.parsed_digest().ok()
    }

    /// Persist `map` as the chunkmap of `layer`: commit the map bytes as a
    /// normal blob, then atomically flip the index with the association
    /// descriptor. Crash-safe like every other mutation — a kill between
    /// the two steps leaves an unreferenced blob for gc, never a torn
    /// association.
    pub fn put_chunkmap(&mut self, layer: Digest, map: Bytes) -> Result<Digest, RegistryError> {
        if !self.store.contains(&layer) {
            return Err(RegistryError::MissingBlob(layer.to_string()));
        }
        let digest = Digest::of(&map);
        self.store.put_blob(&digest, &map).map_err(storage_err)?;
        let mut next = self.index.clone();
        next.set_chunkmap(
            &layer,
            Descriptor::new(MediaType::Chunkmap, digest, map.len() as u64),
        );
        self.store.commit_index(&next).map_err(storage_err)?;
        self.index = next;
        Ok(digest)
    }

    /// Digests reachable from any index ref. Walks each ref's manifest
    /// closure lazily — only manifest blobs are read (and verified); layer
    /// and config blobs are never loaded. A broken ref (missing/corrupt
    /// manifest, bad digest) is an error: gc must not treat blobs as dead
    /// because a closure could not be enumerated. A chunkmap blob is live
    /// iff the layer it describes is live (its lifetime is slaved to the
    /// layer's through the closure walk).
    pub fn live_set(&self) -> Result<std::collections::BTreeSet<Digest>, RegistryError> {
        let mut live = std::collections::BTreeSet::new();
        for name in self.index.ref_names() {
            let desc = self.index.find_ref(&name).expect("ref listed by index");
            let digest = desc
                .parsed_digest()
                .map_err(|_| RegistryError::CorruptManifest(format!("ref {name}: bad digest")))?;
            if live.contains(&digest) {
                continue;
            }
            let raw = self
                .store
                .read_blob(&digest)
                .map_err(storage_err)?
                .ok_or_else(|| RegistryError::MissingBlob(digest.to_string()))?;
            live.extend(closure_of_manifest(&raw, &digest)?);
        }
        for desc in self.index.chunkmap_entries() {
            let layer_live = desc.chunkmap_layer().is_some_and(|l| live.contains(&l));
            if layer_live {
                if let Ok(d) = desc.parsed_digest() {
                    live.insert(d);
                }
            }
        }
        Ok(live)
    }

    /// GC plan: blobs on disk unreachable from every ref, with the bytes
    /// they hold. The scan is metadata-only (names and sizes); no blob
    /// content is read except the manifests of live refs.
    pub fn gc_plan(&self) -> Result<(Vec<Digest>, u64), RegistryError> {
        let live = self.live_set()?;
        let mut dead = Vec::new();
        let mut bytes = 0u64;
        for (d, len) in self.store.digests().map_err(storage_err)? {
            if !live.contains(&d) {
                bytes += len;
                dead.push(d);
            }
        }
        Ok((dead, bytes))
    }

    /// Delete every unreachable blob file (the registry holds the layout
    /// lock, so no concurrent publisher can re-reference one mid-sweep).
    /// Orphan chunkmap entries — associations whose layer blob is no longer
    /// live — are swept from the index first (atomic commit), so the sweep
    /// never leaves a descriptor pointing at a deleted blob.
    /// Returns (blobs removed, bytes reclaimed).
    pub fn gc_apply(&mut self) -> Result<(usize, u64), RegistryError> {
        let live = self.live_set()?;
        let orphan_maps = self
            .index
            .chunkmap_entries()
            .filter(|d| d.parsed_digest().map(|m| !live.contains(&m)).unwrap_or(true))
            .count();
        if orphan_maps > 0 {
            let mut next = self.index.clone();
            next.manifests.retain(|d| {
                d.media_type != MediaType::Chunkmap
                    || d.parsed_digest().map(|m| live.contains(&m)).unwrap_or(false)
            });
            self.store.commit_index(&next).map_err(storage_err)?;
            self.index = next;
        }
        let (dead, bytes) = self.gc_plan()?;
        let mut removed = 0usize;
        for d in &dead {
            if self.store.remove_blob(d).map_err(storage_err)? {
                removed += 1;
            }
        }
        Ok((removed, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "comt-disk-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_read_roundtrip_and_dedupe() {
        let dir = tmp_dir("rt");
        let store = DiskStore::init(&dir).unwrap();
        let data = b"blob payload";
        let d = Digest::of(data);
        assert!(store.put_blob(&d, data).unwrap());
        assert!(!store.put_blob(&d, data).unwrap()); // dedupe
        assert_eq!(store.read_blob(&d).unwrap().unwrap(), Bytes::from_static(data));
        assert_eq!(store.blob_len(&d), Some(data.len() as u64));
        assert!(store.contains(&d));
        // No tmp residue after a clean commit.
        let residue: Vec<_> = std::fs::read_dir(store.blobs_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(TMP_PREFIX))
            .collect();
        assert!(residue.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_blob_rejects_claim_mismatch() {
        let dir = tmp_dir("claim");
        let store = DiskStore::init(&dir).unwrap();
        let wrong = Digest::of(b"other content");
        let err = store.put_blob(&wrong, b"actual content").unwrap_err();
        assert!(matches!(err, LayoutError::DigestMismatch { .. }));
        assert!(!store.contains(&wrong));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_blob_detects_corruption() {
        let dir = tmp_dir("corrupt");
        let store = DiskStore::init(&dir).unwrap();
        let d = Digest::of(b"original");
        store.put_blob(&d, b"original").unwrap();
        std::fs::write(store.blob_path(&d), b"tampered").unwrap();
        assert!(matches!(
            store.read_blob(&d),
            Err(LayoutError::DigestMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_excludes_second_holder() {
        let dir = tmp_dir("lock");
        let first = LayoutLock::acquire(&dir).unwrap();
        // Same-process second handle: advisory OS locks are per-open-file,
        // so this models a second process contending for the layout.
        match LayoutLock::acquire(&dir) {
            Err(LayoutError::Locked { holder, .. }) => {
                assert_eq!(holder.as_deref(), Some(std::process::id().to_string().as_str()));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(first);
        LayoutLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_reclaims_only_unreachable_blobs() {
        let dir = tmp_dir("gc");
        {
            let mut reg = DiskRegistry::open(&dir).unwrap();
            // A tiny published image: config + layer + manifest.
            let store = crate::store::BlobStore::new();
            let mut blobs = store;
            let image = crate::ImageBuilder::from_scratch("x86_64")
                .with_layer_tar(Bytes::from_static(b"layer tar bytes"), "layer")
                .commit(&mut blobs)
                .unwrap();
            for (d, data) in blobs.iter() {
                reg.store().put_blob(d, data).unwrap();
            }
            let manifest = blobs.get(&image.manifest_digest).unwrap();
            reg.publish_manifest("app:1", manifest).unwrap();
            // Plus one blob nothing references.
            let orphan = Bytes::from_static(b"unreferenced bytes");
            let od = Digest::of(&orphan);
            reg.store().put_blob(&od, &orphan).unwrap();

            let (dead, bytes) = reg.gc_plan().unwrap();
            assert_eq!(dead, vec![od]);
            assert_eq!(bytes, orphan.len() as u64);
            let (removed, reclaimed) = reg.gc_apply().unwrap();
            assert_eq!((removed, reclaimed), (1, orphan.len() as u64));
            assert!(!reg.store().contains(&od));
            // Everything live survived and the tag still resolves.
            assert_eq!(reg.resolve("app:1"), Some(image.manifest_digest));
            let (dead, _) = reg.gc_plan().unwrap();
            assert!(dead.is_empty());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunkmap_lifetime_is_slaved_to_its_layer() {
        let dir = tmp_dir("chunkmap");
        {
            let mut reg = DiskRegistry::open(&dir).unwrap();
            let mut blobs = crate::store::BlobStore::new();
            let layer_bytes = Bytes::from(vec![7u8; 64 * 1024]);
            let image = crate::ImageBuilder::from_scratch("x86_64")
                .with_layer_tar(layer_bytes.clone(), "layer")
                .commit(&mut blobs)
                .unwrap();
            for (d, data) in blobs.iter() {
                reg.store().put_blob(d, data).unwrap();
            }
            let manifest = blobs.get(&image.manifest_digest).unwrap();
            reg.publish_manifest("app:1", manifest).unwrap();

            let layer = image.manifest.layers[0].parsed_digest().unwrap();
            let layer_blob = reg.store().read_blob(&layer).unwrap().unwrap();
            let map = comt_chunk::ChunkMap::build(&layer_blob, comt_chunk::ChunkParams::default())
                .unwrap();
            let map_digest = reg
                .put_chunkmap(layer, Bytes::from(map.to_json()))
                .unwrap();
            assert_eq!(reg.chunkmap_for(&layer), Some(map_digest));

            // A chunkmap for a blob the store does not hold is refused.
            assert!(matches!(
                reg.put_chunkmap(Digest::of(b"ghost layer"), Bytes::from_static(b"{}")),
                Err(RegistryError::MissingBlob(_))
            ));

            // Layer live → chunkmap live: nothing to collect.
            let (dead, _) = reg.gc_plan().unwrap();
            assert!(dead.is_empty(), "{dead:?}");

            // Survives reopen (the association is in the committed index).
            drop(reg);
            let mut reg = DiskRegistry::open(&dir).unwrap();
            assert_eq!(reg.chunkmap_for(&layer), Some(map_digest));

            // Drop the ref: the layer dies, and the chunkmap must die with
            // it — blob swept, association gone from the index.
            let mut next = reg.index().clone();
            assert!(next.remove_ref("app:1"));
            reg.store.commit_index(&next).unwrap();
            reg.index = next;
            let (dead, _) = reg.gc_plan().unwrap();
            assert!(dead.contains(&map_digest), "orphan chunkmap not planned");
            let (removed, _) = reg.gc_apply().unwrap();
            assert!(removed >= 4); // manifest + config + layer + chunkmap
            assert!(!reg.store().contains(&map_digest));
            assert_eq!(reg.chunkmap_for(&layer), None);
            assert!(reg.index().chunkmap_entries().next().is_none());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_commit_is_atomic_replace() {
        let dir = tmp_dir("index");
        let store = DiskStore::init(&dir).unwrap();
        let mut index = ImageIndex::default();
        index.set_ref(
            "app:1",
            Descriptor::new(MediaType::ImageManifest, Digest::of(b"m"), 1),
        );
        store.commit_index(&index).unwrap();
        assert_eq!(store.read_index().unwrap(), index);
        // Torn JSON refuses with a Torn error pointing at fsck.
        std::fs::write(dir.join("index.json"), &serde_json::to_vec(&index).unwrap()[..10])
            .unwrap();
        assert!(matches!(store.read_index(), Err(LayoutError::Torn { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
