//! Image assembly and flattening.

use crate::codec::{EncodedLayer, LayerCodec};
use crate::spec::{
    Descriptor, HistoryEntry, ImageConfig, ImageManifest, MediaType, RuntimeConfig,
};
use crate::store::BlobStore;
use bytes::Bytes;
use comt_digest::Digest;
use comt_tar::Entry;
use comt_vfs::Vfs;
use std::collections::BTreeMap;
use std::fmt;

/// Errors during image assembly or flattening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    MissingBlob(String),
    CorruptJson(String),
    BadLayer(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::MissingBlob(d) => write!(f, "missing blob {d}"),
            ImageError::CorruptJson(e) => write!(f, "corrupt json blob: {e}"),
            ImageError::BadLayer(e) => write!(f, "bad layer: {e}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// A loaded image: its manifest digest plus parsed manifest and config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    pub manifest_digest: Digest,
    pub manifest: ImageManifest,
    pub config: ImageConfig,
}

impl Image {
    /// Load an image from a store by manifest digest.
    pub fn load(store: &BlobStore, manifest_digest: Digest) -> Result<Self, ImageError> {
        let raw = store
            .get(&manifest_digest)
            .ok_or_else(|| ImageError::MissingBlob(manifest_digest.to_string()))?;
        let manifest: ImageManifest =
            serde_json::from_slice(&raw).map_err(|e| ImageError::CorruptJson(e.to_string()))?;
        let cfg_digest = manifest
            .config
            .parsed_digest()
            .map_err(|e| ImageError::CorruptJson(e.to_string()))?;
        let raw_cfg = store
            .get(&cfg_digest)
            .ok_or_else(|| ImageError::MissingBlob(cfg_digest.to_string()))?;
        let config: ImageConfig = serde_json::from_slice(&raw_cfg)
            .map_err(|e| ImageError::CorruptJson(e.to_string()))?;
        Ok(Image {
            manifest_digest,
            manifest,
            config,
        })
    }

    /// Total size of all layer blobs (the "image size" users see).
    pub fn layers_size(&self) -> u64 {
        self.manifest.layers.iter().map(|l| l.size).sum()
    }

    /// Architecture from the config.
    pub fn architecture(&self) -> &str {
        &self.config.architecture
    }
}

/// A layer queued on the builder, encoded at commit time so serialization,
/// hashing and compression run fused (and layers encode concurrently).
enum PendingLayer {
    /// Pre-serialized tar bytes.
    Tar(Bytes),
    /// A changeset whose tar serialization is deferred into the fused
    /// encode pass (never materialized separately).
    Entries(Vec<Entry>),
}

impl PendingLayer {
    fn encode(&self, codec: &LayerCodec) -> Result<EncodedLayer, ImageError> {
        match self {
            PendingLayer::Tar(tar) => Ok(codec.encode_tar(tar.clone())),
            PendingLayer::Entries(entries) => codec
                .encode_entries(entries)
                .map_err(|e| ImageError::BadLayer(e.to_string())),
        }
    }
}

/// Builder assembling a new image into a [`BlobStore`].
pub struct ImageBuilder {
    arch: String,
    /// Existing layer descriptors inherited from a base image.
    layers: Vec<Descriptor>,
    diff_ids: Vec<String>,
    history: Vec<HistoryEntry>,
    /// Layers added by this builder (encoded and stored at commit).
    new_layers: Vec<(PendingLayer, String)>,
    runtime: RuntimeConfig,
    annotations: BTreeMap<String, String>,
    /// Store new layers gzip-compressed (`tar+gzip` media type).
    compress: bool,
}

impl ImageBuilder {
    /// Start from an empty image.
    pub fn from_scratch(arch: &str) -> Self {
        ImageBuilder {
            arch: arch.to_string(),
            layers: Vec::new(),
            diff_ids: Vec::new(),
            history: Vec::new(),
            new_layers: Vec::new(),
            runtime: RuntimeConfig::default(),
            annotations: BTreeMap::new(),
            compress: false,
        }
    }

    /// Start from an existing base image (inherits layers, env, history).
    pub fn from_base(store: &BlobStore, base: &Image) -> Result<Self, ImageError> {
        // Ensure all base layers exist so commit cannot dangle.
        for l in &base.manifest.layers {
            let d = l
                .parsed_digest()
                .map_err(|e| ImageError::CorruptJson(e.to_string()))?;
            if !store.contains(&d) {
                return Err(ImageError::MissingBlob(l.digest.clone()));
            }
        }
        Ok(ImageBuilder {
            arch: base.config.architecture.clone(),
            layers: base.manifest.layers.clone(),
            diff_ids: base.config.rootfs.diff_ids.clone(),
            history: base.config.history.clone(),
            new_layers: Vec::new(),
            runtime: base.config.config.clone(),
            annotations: BTreeMap::new(),
            compress: false,
        })
    }

    /// Store the layers this builder adds gzip-compressed, the common
    /// production media type (`…layer.v1.tar+gzip`).
    pub fn with_compression(mut self) -> Self {
        self.compress = true;
        self
    }

    /// Add a raw tar changeset as the next layer.
    pub fn with_layer_tar(mut self, tar: impl Into<Bytes>, created_by: &str) -> Self {
        self.new_layers
            .push((PendingLayer::Tar(tar.into()), created_by.to_string()));
        self
    }

    /// Add a layer computed as the diff between two filesystem states. The
    /// changeset's tar serialization is deferred to commit, where it fuses
    /// with hashing and compression in a single streaming pass.
    pub fn with_layer_from_fs(mut self, from: &Vfs, to: &Vfs) -> Self {
        let entries = comt_vfs::diff_layers(from, to);
        self.new_layers
            .push((PendingLayer::Entries(entries), "layer-from-fs".to_string()));
        self
    }

    /// Add a layer directly from tar entries (deferred serialization, like
    /// [`with_layer_from_fs`](Self::with_layer_from_fs)).
    pub fn with_layer_entries(mut self, entries: Vec<Entry>, created_by: &str) -> Self {
        self.new_layers
            .push((PendingLayer::Entries(entries), created_by.to_string()));
        self
    }

    pub fn with_env(mut self, var: &str, value: &str) -> Self {
        self.runtime.env.retain(|e| !e.starts_with(&format!("{var}=")));
        self.runtime.env.push(format!("{var}={value}"));
        self
    }

    pub fn with_entrypoint(mut self, entrypoint: Vec<String>) -> Self {
        self.runtime.entrypoint = entrypoint;
        self
    }

    pub fn with_cmd(mut self, cmd: Vec<String>) -> Self {
        self.runtime.cmd = cmd;
        self
    }

    pub fn with_working_dir(mut self, dir: &str) -> Self {
        self.runtime.working_dir = dir.to_string();
        self
    }

    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.runtime.labels.insert(key.to_string(), value.to_string());
        self
    }

    pub fn with_annotation(mut self, key: &str, value: &str) -> Self {
        self.annotations.insert(key.to_string(), value.to_string());
        self
    }

    /// Write config + layers + manifest blobs and return the loaded image.
    ///
    /// Pending layers are independent, so they encode concurrently (one
    /// fused serialize+hash+compress pass each); results land in the
    /// manifest in the order the layers were added.
    pub fn commit(mut self, store: &mut BlobStore) -> Result<Image, ImageError> {
        let pending = std::mem::take(&mut self.new_layers);
        let codec = LayerCodec::new(self.compress);
        let encoded: Vec<(EncodedLayer, String)> = if pending.len() > 1 {
            comt_observe::global().count("codec.layers.concurrent", pending.len() as u64);
            std::thread::scope(|s| {
                let handles: Vec<_> = pending
                    .iter()
                    .map(|(layer, _)| s.spawn(move || layer.encode(&codec)))
                    .collect();
                handles
                    .into_iter()
                    .zip(pending.iter())
                    .map(|(h, (_, created_by))| {
                        Ok((h.join().expect("layer encode panicked")?, created_by.clone()))
                    })
                    .collect::<Result<Vec<_>, ImageError>>()
            })?
        } else {
            pending
                .iter()
                .map(|(layer, created_by)| Ok((layer.encode(&codec)?, created_by.clone())))
                .collect::<Result<Vec<_>, ImageError>>()?
        };

        for (enc, created_by) in encoded {
            let size = enc.blob.len() as u64;
            let digest = store.put_prehashed(enc.blob_digest, enc.blob);
            self.layers.push(Descriptor::new(enc.media_type, digest, size));
            self.diff_ids.push(enc.diff_id.to_oci_string());
            self.history.push(HistoryEntry {
                created_by,
                empty_layer: false,
            });
        }

        let mut config = ImageConfig::new(&self.arch);
        config.config = self.runtime;
        config.rootfs.diff_ids = self.diff_ids;
        config.history = self.history;
        let cfg_json =
            serde_json::to_vec(&config).map_err(|e| ImageError::CorruptJson(e.to_string()))?;
        let cfg_size = cfg_json.len() as u64;
        let cfg_digest = store.put(Bytes::from(cfg_json));

        let manifest = ImageManifest {
            schema_version: 2,
            media_type: MediaType::ImageManifest,
            config: Descriptor::new(MediaType::ImageConfig, cfg_digest, cfg_size),
            layers: self.layers,
            annotations: self.annotations,
        };
        let man_json =
            serde_json::to_vec(&manifest).map_err(|e| ImageError::CorruptJson(e.to_string()))?;
        let manifest_digest = store.put(Bytes::from(man_json));

        Ok(Image {
            manifest_digest,
            manifest,
            config,
        })
    }
}

/// Compute the final filesystem state of an image by applying all layers in
/// order — the "POSIX file system simulator" step of the paper (§4.5).
/// Fetch one layer blob and return its *uncompressed* tar bytes (the form
/// the config's `diff_ids` describe). Shared by [`flatten`] and the layer
/// verifier in `comt-analyze`.
pub fn layer_tar(store: &BlobStore, layer: &crate::spec::Descriptor) -> Result<Bytes, ImageError> {
    let d = layer
        .parsed_digest()
        .map_err(|e| ImageError::CorruptJson(e.to_string()))?;
    let blob = store
        .get(&d)
        .ok_or_else(|| ImageError::MissingBlob(layer.digest.clone()))?;
    LayerCodec::decode(blob, &layer.media_type).map_err(|e| ImageError::BadLayer(e.to_string()))
}

pub fn flatten(store: &BlobStore, image: &Image) -> Result<Vfs, ImageError> {
    // Layer decode (gunzip + tar parse) is independent per layer, so it
    // fans out; application must stay sequential — changesets stack.
    let layers = &image.manifest.layers;
    let decoded: Vec<Result<Vec<comt_tar::Entry>, ImageError>> = if layers.len() > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = layers
                .iter()
                .map(|layer| {
                    s.spawn(move || {
                        let tar = layer_tar(store, layer)?;
                        comt_tar::read_archive(&tar)
                            .map_err(|e| ImageError::BadLayer(e.to_string()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("layer decode panicked"))
                .collect()
        })
    } else {
        layers
            .iter()
            .map(|layer| {
                let tar = layer_tar(store, layer)?;
                comt_tar::read_archive(&tar).map_err(|e| ImageError::BadLayer(e.to_string()))
            })
            .collect()
    };

    let mut fs = Vfs::new();
    for entries in decoded {
        comt_vfs::apply_layer(&mut fs, &entries?)
            .map_err(|e| ImageError::BadLayer(e.to_string()))?;
    }
    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with(files: &[(&str, &str)]) -> Vfs {
        let mut v = Vfs::new();
        for (p, c) in files {
            v.write_file_p(p, Bytes::from(c.as_bytes().to_vec()), 0o644)
                .unwrap();
        }
        v
    }

    #[test]
    fn builder_from_scratch_single_layer() {
        let mut store = BlobStore::new();
        let fs = fs_with(&[("/a", "1")]);
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        assert_eq!(img.manifest.layers.len(), 1);
        assert_eq!(img.config.rootfs.diff_ids.len(), 1);
        assert_eq!(flatten(&store, &img).unwrap(), fs);
    }

    #[test]
    fn diff_ids_match_uncompressed_layer_digests() {
        let mut store = BlobStore::new();
        let fs = fs_with(&[("/a", "1")]);
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        // Uncompressed layers: diff_id == layer blob digest.
        assert_eq!(
            img.config.rootfs.diff_ids[0],
            img.manifest.layers[0].digest
        );
    }

    #[test]
    fn layered_build_on_base() {
        let mut store = BlobStore::new();
        let base_fs = fs_with(&[("/bin/sh", "sh")]);
        let base = ImageBuilder::from_scratch("aarch64")
            .with_layer_from_fs(&Vfs::new(), &base_fs)
            .with_env("PATH", "/bin")
            .commit(&mut store)
            .unwrap();

        let app_fs = {
            let mut f = base_fs.clone();
            f.write_file_p("/app/x", Bytes::from_static(b"X"), 0o755)
                .unwrap();
            f
        };
        let app = ImageBuilder::from_base(&store, &base)
            .unwrap()
            .with_layer_from_fs(&base_fs, &app_fs)
            .commit(&mut store)
            .unwrap();

        assert_eq!(app.manifest.layers.len(), 2);
        assert_eq!(app.config.config.env, vec!["PATH=/bin"]);
        assert_eq!(app.architecture(), "aarch64");
        assert_eq!(flatten(&store, &app).unwrap(), app_fs);
    }

    #[test]
    fn env_replacement_not_duplication() {
        let mut store = BlobStore::new();
        let img = ImageBuilder::from_scratch("x86_64")
            .with_env("CC", "gcc")
            .with_env("CC", "clang")
            .commit(&mut store)
            .unwrap();
        assert_eq!(img.config.config.env, vec!["CC=clang"]);
    }

    #[test]
    fn image_reload_identical() {
        let mut store = BlobStore::new();
        let fs = fs_with(&[("/f", "x")]);
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .with_label("app", "demo")
            .commit(&mut store)
            .unwrap();
        let reloaded = Image::load(&store, img.manifest_digest).unwrap();
        assert_eq!(reloaded, img);
    }

    #[test]
    fn from_base_missing_layer_fails() {
        let mut store = BlobStore::new();
        let fs = fs_with(&[("/f", "x")]);
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        let empty = BlobStore::new();
        assert!(matches!(
            ImageBuilder::from_base(&empty, &img),
            Err(ImageError::MissingBlob(_))
        ));
    }

    #[test]
    fn flatten_missing_layer_fails() {
        let mut store = BlobStore::new();
        let fs = fs_with(&[("/f", "x")]);
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        let empty = BlobStore::new();
        assert!(matches!(
            flatten(&empty, &img),
            Err(ImageError::MissingBlob(_))
        ));
    }

    #[test]
    fn compressed_layers_roundtrip() {
        let mut store = BlobStore::new();
        // Repetitive payload so compression actually shrinks the blob.
        let fs = fs_with(&[("/data/table", &"row 1;row 2;row 3;".repeat(500))]);
        let plain = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        let gz = ImageBuilder::from_scratch("x86_64")
            .with_compression()
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        assert_eq!(
            gz.manifest.layers[0].media_type,
            crate::spec::MediaType::LayerTarGzip
        );
        assert!(gz.layers_size() < plain.layers_size() / 2);
        // diff_ids describe the uncompressed tar: identical across forms.
        assert_eq!(gz.config.rootfs.diff_ids, plain.config.rootfs.diff_ids);
        assert_eq!(flatten(&store, &gz).unwrap(), fs);
    }

    #[test]
    fn mixed_plain_and_gzip_layers() {
        let mut store = BlobStore::new();
        let base_fs = fs_with(&[("/base", "B")]);
        let base = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &base_fs)
            .commit(&mut store)
            .unwrap();
        let mut upper = base_fs.clone();
        upper
            .write_file_p("/app/x", Bytes::from_static(b"X"), 0o755)
            .unwrap();
        let img = ImageBuilder::from_base(&store, &base)
            .unwrap()
            .with_compression()
            .with_layer_from_fs(&base_fs, &upper)
            .commit(&mut store)
            .unwrap();
        assert_eq!(img.manifest.layers[0].media_type, crate::spec::MediaType::LayerTar);
        assert_eq!(
            img.manifest.layers[1].media_type,
            crate::spec::MediaType::LayerTarGzip
        );
        assert_eq!(flatten(&store, &img).unwrap(), upper);
    }

    #[test]
    fn layers_size_sums() {
        let mut store = BlobStore::new();
        let fs = fs_with(&[("/f", "x")]);
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap();
        assert_eq!(img.layers_size(), img.manifest.layers[0].size);
        assert!(img.layers_size() > 0);
    }
}
