//! `comt fsck` — diagnose and repair torn on-disk layouts.
//!
//! The commit protocol in [`crate::disk`] guarantees that a crash leaves
//! only a bounded set of artifacts; `fsck` enumerates exactly those, with
//! one stable code per failure shape (same `COMT-xxxx` discipline as
//! `comt check`):
//!
//! | code        | severity | meaning                                   | `--repair` action            |
//! |-------------|----------|-------------------------------------------|------------------------------|
//! | `COMT-F001` | error    | blob content does not hash to its name    | delete the corrupt blob      |
//! | `COMT-F002` | error    | ref whose closure is missing or corrupt   | drop the ref, commit index   |
//! | `COMT-F003` | warning  | orphan `.tmp.*` from an interrupted commit| delete the tmp file          |
//! | `COMT-F004` | error    | `index.json` missing or unparseable       | commit an empty index        |
//! | `COMT-F005` | warning  | foreign file in the blob directory        | delete the file              |
//! | `COMT-F006` | warning  | `oci-layout` marker missing or invalid    | rewrite the marker           |
//! | `COMT-F007` | error    | chunkmap disagrees with its stored layer  | quarantine map, drop entry   |
//!
//! Valid-but-unreachable blobs are *not* findings — that is garbage, not
//! damage, and `comt gc` owns it. Repair is conservative: it only ever
//! removes artifacts that can no longer serve a bit-correct pull, so a
//! repaired layout always loads and every surviving tag pulls exactly the
//! bytes that were originally published.

use crate::disk::{commit_file, DiskStore, LayoutLock, OCI_LAYOUT_MARKER, TMP_PREFIX};
use crate::layout::LayoutError;
use crate::spec::{ImageIndex, MediaType};
use crate::store::closure_of_manifest;
use comt_digest::Digest;
use serde::Serialize;
use std::collections::BTreeSet;
use std::path::Path;

/// Finding severity. Only unrepaired `Error`s make a layout unservable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum FsckSeverity {
    #[serde(rename = "warning")]
    Warning,
    #[serde(rename = "error")]
    Error,
}

impl std::fmt::Display for FsckSeverity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckSeverity::Warning => write!(f, "warning"),
            FsckSeverity::Error => write!(f, "error"),
        }
    }
}

/// One diagnosed defect in a layout.
#[derive(Debug, Clone, Serialize)]
pub struct FsckFinding {
    pub code: &'static str,
    pub severity: FsckSeverity,
    /// Layout-relative path of the damaged artifact (or the ref name for
    /// `COMT-F002`).
    pub path: String,
    pub detail: String,
    /// Whether `--repair` fixed it in this run.
    pub repaired: bool,
}

/// Options for a fsck pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsckOptions {
    /// Repair findings in place (requires the layout lock either way; a
    /// scan of a layout being served fails fast with `Locked`).
    pub repair: bool,
}

/// The result of scanning (and optionally repairing) one layout.
#[derive(Debug, Clone, Serialize)]
pub struct FsckReport {
    pub root: String,
    pub blobs_scanned: usize,
    pub refs_checked: usize,
    pub findings: Vec<FsckFinding>,
}

impl FsckReport {
    /// Unrepaired error-severity findings — the exit-code signal.
    pub fn unrepaired_errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == FsckSeverity::Error && !f.repaired)
            .count()
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human rendering, one rustc-style line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}[{}]: {} ({}){}\n",
                f.severity,
                f.code,
                f.detail,
                f.path,
                if f.repaired { " [repaired]" } else { "" },
            ));
        }
        let errors = self
            .findings
            .iter()
            .filter(|f| f.severity == FsckSeverity::Error)
            .count();
        let warnings = self.findings.len() - errors;
        let repaired = self.findings.iter().filter(|f| f.repaired).count();
        out.push_str(&format!(
            "fsck {}: {} blob(s), {} ref(s): {} error(s), {} warning(s), {} repaired\n",
            self.root, self.blobs_scanned, self.refs_checked, errors, warnings, repaired,
        ));
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fsck report serializes")
    }
}

/// Scan a layout for torn/corrupt state, optionally repairing it.
///
/// Always runs under the layout lock: a concurrent `comt serve` or `gc
/// --apply` would make in-flight tmp files look like damage, so contention
/// is surfaced as [`LayoutError::Locked`] instead of a false report.
pub fn fsck(dir: &Path, opts: &FsckOptions) -> Result<FsckReport, LayoutError> {
    if !dir.join("index.json").is_file() && !dir.join("blobs").is_dir() {
        return Err(LayoutError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("not an OCI layout: {}", dir.display()),
        )));
    }
    let _lock = LayoutLock::acquire(dir)?;
    let store = DiskStore::open(dir)?;
    let mut findings = Vec::new();
    let rel = |p: &Path| {
        p.strip_prefix(dir)
            .unwrap_or(p)
            .display()
            .to_string()
    };

    // Pass 1: the oci-layout version marker.
    let marker = dir.join("oci-layout");
    let marker_ok = std::fs::read_to_string(&marker)
        .ok()
        .and_then(|raw| serde_json::parse_value(&raw).ok())
        .and_then(|v| {
            v.as_object()
                .map(|o| o.iter().any(|(k, _)| k == "imageLayoutVersion"))
        })
        .unwrap_or(false);
    if !marker_ok {
        let mut repaired = false;
        if opts.repair {
            commit_file(&marker, OCI_LAYOUT_MARKER)?;
            repaired = true;
        }
        findings.push(FsckFinding {
            code: "COMT-F006",
            severity: FsckSeverity::Warning,
            path: rel(&marker),
            detail: "oci-layout version marker is missing or invalid".into(),
            repaired,
        });
    }

    // Pass 2: the blob directory. Build the set of digests whose content
    // verifies; everything else is a finding.
    let blobs_dir = store.blobs_dir();
    let mut valid: BTreeSet<Digest> = BTreeSet::new();
    let mut blobs_scanned = 0usize;
    if blobs_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&blobs_dir)?
            .collect::<Result<Vec<_>, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            blobs_scanned += 1;
            if name.starts_with(TMP_PREFIX) {
                let mut repaired = false;
                if opts.repair {
                    std::fs::remove_file(&path)?;
                    repaired = true;
                }
                findings.push(FsckFinding {
                    code: "COMT-F003",
                    severity: FsckSeverity::Warning,
                    path: rel(&path),
                    detail: "orphan temp file from an interrupted commit".into(),
                    repaired,
                });
                continue;
            }
            let Ok(digest) = format!("sha256:{name}").parse::<Digest>() else {
                let mut repaired = false;
                if opts.repair {
                    std::fs::remove_file(&path)?;
                    repaired = true;
                }
                findings.push(FsckFinding {
                    code: "COMT-F005",
                    severity: FsckSeverity::Warning,
                    path: rel(&path),
                    detail: "foreign file in the blob directory".into(),
                    repaired,
                });
                continue;
            };
            // Streaming digest check: a multi-GiB layer is hashed in
            // bounded chunks, never materialized (see
            // `BlobHandle::stream_verified`).
            let handle = crate::backend::BlobHandle::File {
                path: path.clone(),
                len: entry.metadata()?.len(),
            };
            match handle.stream_verified(&digest) {
                Ok(_) => {
                    valid.insert(digest);
                }
                Err(e) => {
                    let mut repaired = false;
                    if opts.repair {
                        std::fs::remove_file(&path)?;
                        repaired = true;
                    }
                    let size = handle.len();
                    let detail = match e {
                        crate::store::RegistryError::DigestMismatch(_) => format!(
                            "blob content does not hash to its name (torn or corrupt write, {size} bytes)"
                        ),
                        other => format!("blob unreadable: {other}"),
                    };
                    findings.push(FsckFinding {
                        code: "COMT-F001",
                        severity: FsckSeverity::Error,
                        path: rel(&path),
                        detail,
                        repaired,
                    });
                    continue;
                }
            }
        }
    }

    // Pass 3: the index and every ref's closure.
    let mut refs_checked = 0usize;
    let index_path = dir.join("index.json");
    let index: Option<ImageIndex> = match std::fs::read(&index_path) {
        Ok(raw) => match serde_json::from_slice(&raw) {
            Ok(idx) => Some(idx),
            Err(e) => {
                let mut repaired = false;
                if opts.repair {
                    store.commit_index(&ImageIndex::default())?;
                    repaired = true;
                }
                findings.push(FsckFinding {
                    code: "COMT-F004",
                    severity: FsckSeverity::Error,
                    path: rel(&index_path),
                    detail: format!(
                        "index.json does not parse ({e}); its tags cannot be recovered"
                    ),
                    repaired,
                });
                if repaired {
                    Some(ImageIndex::default())
                } else {
                    None
                }
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let mut repaired = false;
            if opts.repair {
                store.commit_index(&ImageIndex::default())?;
                repaired = true;
            }
            findings.push(FsckFinding {
                code: "COMT-F004",
                severity: FsckSeverity::Error,
                path: rel(&index_path),
                detail: "index.json is missing".into(),
                repaired,
            });
            if repaired {
                Some(ImageIndex::default())
            } else {
                None
            }
        }
        Err(e) => return Err(e.into()),
    };

    if let Some(index) = index {
        let mut kept = index.clone();
        let mut dropped_any = false;
        for desc in &index.manifests {
            if desc.media_type == MediaType::Chunkmap {
                continue; // not a ref; validated in pass 4 below
            }
            refs_checked += 1;
            let name = desc
                .ref_name()
                .map(String::from)
                .unwrap_or_else(|| format!("(unnamed {})", desc.digest));
            let broken: Option<String> = match desc.parsed_digest() {
                Err(e) => Some(format!("unparseable manifest digest: {e}")),
                Ok(md) if !valid.contains(&md) => {
                    Some(format!("manifest blob {md} is missing or corrupt"))
                }
                Ok(md) => {
                    // Manifest blob verified in pass 2; walk its closure.
                    let raw = std::fs::read(store.blob_path(&md))?;
                    match closure_of_manifest(&raw, &md) {
                        Err(e) => Some(format!("manifest does not parse: {e}")),
                        Ok(closure) => closure
                            .iter()
                            .find(|d| !valid.contains(d))
                            .map(|d| format!("closure blob {d} is missing or corrupt")),
                    }
                }
            };
            if let Some(why) = broken {
                let mut repaired = false;
                if opts.repair {
                    if let Some(n) = desc.ref_name() {
                        kept.remove_ref(n);
                    } else {
                        kept.manifests.retain(|d| d != desc);
                    }
                    dropped_any = true;
                    repaired = true;
                }
                findings.push(FsckFinding {
                    code: "COMT-F002",
                    severity: FsckSeverity::Error,
                    path: name,
                    detail: format!("ref cannot serve a complete image: {why}"),
                    repaired,
                });
            }
        }
        // Pass 4: chunkmap entries. A chunkmap must parse, name a layer
        // that exists, and agree with the stored layer bytes offset-for-
        // offset and digest-for-digest — a stale or tampered map would make
        // delta pulls assemble garbage (caught client-side, but every such
        // pull fails). Repair quarantines the map blob (moved aside, not
        // destroyed) and drops the association; the layer itself is
        // untouched and full-blob pulls keep working.
        for desc in index.chunkmap_entries() {
            let path_label = format!("chunkmap {}", desc.digest);
            let broken: Option<String> = (|| {
                let Some(layer) = desc.chunkmap_layer() else {
                    return Some("chunkmap entry has no layer annotation".to_string());
                };
                let Ok(md) = desc.parsed_digest() else {
                    return Some(format!("unparseable chunkmap digest {}", desc.digest));
                };
                if !valid.contains(&md) {
                    return Some(format!("chunkmap blob {md} is missing or corrupt"));
                }
                if !valid.contains(&layer) {
                    return Some(format!("described layer {layer} is missing or corrupt"));
                }
                let raw = match std::fs::read(store.blob_path(&md)) {
                    Ok(r) => r,
                    Err(e) => return Some(format!("chunkmap blob unreadable: {e}")),
                };
                let map = match comt_chunk::ChunkMap::from_json(&raw) {
                    Ok(m) => m,
                    Err(e) => return Some(format!("{e}")),
                };
                if map.parsed_blob_digest().ok() != Some(layer) {
                    return Some(format!(
                        "chunkmap describes {} but is recorded for layer {layer}",
                        map.blob_digest
                    ));
                }
                let layer_bytes = match std::fs::read(store.blob_path(&layer)) {
                    Ok(r) => r,
                    Err(e) => return Some(format!("layer blob unreadable: {e}")),
                };
                map.verify_layer(&layer_bytes).err().map(|e| format!("{e}"))
            })();
            if let Some(why) = broken {
                let mut repaired = false;
                if opts.repair {
                    if let Ok(md) = desc.parsed_digest() {
                        let blob_path = store.blob_path(&md);
                        if blob_path.is_file() {
                            let qdir = dir.join("quarantine");
                            std::fs::create_dir_all(&qdir)?;
                            std::fs::rename(&blob_path, qdir.join(md.hex()))?;
                        }
                    }
                    kept.manifests.retain(|d| d != desc);
                    dropped_any = true;
                    repaired = true;
                }
                findings.push(FsckFinding {
                    code: "COMT-F007",
                    severity: FsckSeverity::Error,
                    path: path_label,
                    detail: format!("chunkmap disagrees with its stored layer: {why}"),
                    repaired,
                });
            }
        }
        if dropped_any {
            store.commit_index(&kept)?;
        }
    }

    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.path.cmp(&b.path))
    });
    Ok(FsckReport {
        root: dir.display().to_string(),
        blobs_scanned,
        refs_checked,
        findings,
    })
}

/// Stable fsck code table (code, severity, title) — mirrored into the
/// `comt-analyze` explain registry so `comt check --explain COMT-F001`
/// works from the CLI.
pub const FSCK_CODES: &[(&str, &str, &str)] = &[
    (
        "COMT-F001",
        "error",
        "blob content does not hash to its name",
    ),
    (
        "COMT-F002",
        "error",
        "ref whose manifest closure is missing or corrupt",
    ),
    (
        "COMT-F003",
        "warning",
        "orphan temp file from an interrupted commit",
    ),
    ("COMT-F004", "error", "index.json missing or unparseable"),
    ("COMT-F005", "warning", "foreign file in the blob directory"),
    (
        "COMT-F006",
        "warning",
        "oci-layout version marker missing or invalid",
    ),
    (
        "COMT-F007",
        "error",
        "chunkmap disagrees with its stored layer",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::OciDir;
    use crate::store::BlobStore;
    use crate::ImageBuilder;
    use bytes::Bytes;
    use comt_vfs::Vfs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_layout(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "comt-fsck-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn saved_layout(tag: &str) -> (PathBuf, Digest) {
        let mut store = BlobStore::new();
        let mut fs = Vfs::new();
        fs.write_file_p("/app/bin", Bytes::from_static(b"ELF"), 0o755)
            .unwrap();
        let md = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(&mut store)
            .unwrap()
            .manifest_digest;
        let mut oci = OciDir::new();
        oci.export("app.dist+coM", md, &store).unwrap();
        let dir = tmp_layout(tag);
        oci.save(&dir).unwrap();
        (dir, md)
    }

    #[test]
    fn clean_layout_is_clean() {
        let (dir, _) = saved_layout("clean");
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render_human());
        assert_eq!(report.refs_checked, 1);
        assert_eq!(report.blobs_scanned, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diagnoses_and_repairs_each_damage_shape() {
        let (dir, md) = saved_layout("damage");
        let blobs = dir.join("blobs").join("sha256");
        // F003: orphan tmp file.
        std::fs::write(blobs.join(".tmp.9999-0"), b"partial").unwrap();
        // F005: foreign file.
        std::fs::write(blobs.join("README"), b"not a blob").unwrap();
        // F001: corrupt a non-manifest blob (the manifest stays valid so
        // the ref is broken only through its closure).
        let config_digest = {
            let raw = std::fs::read(blobs.join(md.hex())).unwrap();
            let m: crate::spec::ImageManifest = serde_json::from_slice(&raw).unwrap();
            m.config.parsed_digest().unwrap()
        };
        std::fs::write(blobs.join(config_digest.hex()), b"torn write").unwrap();

        // Loading refuses the torn state outright.
        assert!(OciDir::load(&dir).is_err());

        // Scan-only: all four findings (F001 + F002-from-F001 + F003 + F005).
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        let codes: Vec<&str> = report.findings.iter().map(|f| f.code).collect();
        assert_eq!(
            codes,
            vec!["COMT-F001", "COMT-F002", "COMT-F003", "COMT-F005"],
            "{}",
            report.render_human()
        );
        assert_eq!(report.unrepaired_errors(), 2);
        assert!(report.findings.iter().all(|f| !f.repaired));
        // Scanning changed nothing.
        assert!(blobs.join("README").exists());

        // Repair: everything fixed, layout loads again (ref dropped).
        let report = fsck(&dir, &FsckOptions { repair: true }).unwrap();
        assert!(report.findings.iter().all(|f| f.repaired));
        assert_eq!(report.unrepaired_errors(), 0);
        let clean = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(clean.is_clean(), "{}", clean.render_human());
        let back = OciDir::load(&dir).unwrap();
        assert!(back.index.ref_names().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_index_is_f004_and_repairable() {
        let (dir, _) = saved_layout("index");
        let full = std::fs::read(dir.join("index.json")).unwrap();
        std::fs::write(dir.join("index.json"), &full[..full.len() / 2]).unwrap();

        assert!(OciDir::load(&dir).is_err());
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].code, "COMT-F004");
        assert_eq!(report.unrepaired_errors(), 1);

        let report = fsck(&dir, &FsckOptions { repair: true }).unwrap();
        assert!(report.findings[0].repaired);
        let back = OciDir::load(&dir).unwrap();
        assert!(back.index.ref_names().is_empty());
        // Blobs survive for gc to reclaim; fsck does not touch valid data.
        assert_eq!(back.blobs.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_chunkmap_is_f007_and_quarantined() {
        use crate::disk::DiskRegistry;

        let (dir, md) = saved_layout("chunkmap");
        let layer = {
            let raw = std::fs::read(dir.join("blobs").join("sha256").join(md.hex())).unwrap();
            let m: crate::spec::ImageManifest = serde_json::from_slice(&raw).unwrap();
            m.layers[0].parsed_digest().unwrap()
        };
        // Record a chunkmap that is structurally fine and names the right
        // layer, but whose chunk digests describe different bytes — the
        // shape a stale map takes after a layer blob is regenerated.
        let map_digest = {
            let mut reg = DiskRegistry::open(&dir).unwrap();
            let layer_bytes = reg.store().read_blob(&layer).unwrap().unwrap();
            let mut map =
                comt_chunk::ChunkMap::build(&layer_bytes, comt_chunk::ChunkParams::default())
                    .unwrap();
            map.chunks[0].digest = Digest::of(b"bytes from another life").to_oci_string();
            reg.put_chunkmap(layer, Bytes::from(map.to_json())).unwrap()
        };

        // Scan-only: exactly one F007, nothing touched.
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        let codes: Vec<&str> = report.findings.iter().map(|f| f.code).collect();
        assert_eq!(codes, vec!["COMT-F007"], "{}", report.render_human());
        assert_eq!(report.unrepaired_errors(), 1);

        // Repair: map quarantined (preserved, not destroyed), association
        // dropped, layout clean, and the image still pulls bit-correctly.
        let report = fsck(&dir, &FsckOptions { repair: true }).unwrap();
        assert!(report.findings.iter().all(|f| f.repaired));
        assert!(dir.join("quarantine").join(map_digest.hex()).is_file());
        assert!(!dir
            .join("blobs")
            .join("sha256")
            .join(map_digest.hex())
            .exists());
        let clean = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(clean.is_clean(), "{}", clean.render_human());
        let back = OciDir::load(&dir).unwrap();
        assert!(back.index.chunkmap_entries().next().is_none());
        assert!(back.load_image("app.dist+coM").is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn valid_chunkmap_is_not_a_finding() {
        use crate::disk::DiskRegistry;

        let (dir, md) = saved_layout("chunkmap-ok");
        let layer = {
            let raw = std::fs::read(dir.join("blobs").join("sha256").join(md.hex())).unwrap();
            let m: crate::spec::ImageManifest = serde_json::from_slice(&raw).unwrap();
            m.layers[0].parsed_digest().unwrap()
        };
        {
            let mut reg = DiskRegistry::open(&dir).unwrap();
            let layer_bytes = reg.store().read_blob(&layer).unwrap().unwrap();
            let map =
                comt_chunk::ChunkMap::build(&layer_bytes, comt_chunk::ChunkParams::default())
                    .unwrap();
            reg.put_chunkmap(layer, Bytes::from(map.to_json())).unwrap();
        }
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render_human());
        // The chunkmap descriptor is not counted as a ref.
        assert_eq!(report.refs_checked, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_report_is_stable_shape() {
        let (dir, _) = saved_layout("json");
        std::fs::write(
            dir.join("blobs").join("sha256").join(".tmp.1-2"),
            b"x",
        )
        .unwrap();
        let report = fsck(&dir, &FsckOptions::default()).unwrap();
        let json = report.to_json();
        // Round-trips through the JSON parser and carries the stable keys.
        serde_json::parse_value(&json).unwrap();
        for key in [
            "\"code\": \"COMT-F003\"",
            "\"severity\": \"warning\"",
            "\"repaired\": false",
            "\"blobs_scanned\": 4",
            "\"refs_checked\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
