//! Fused layer encode/decode — the image data plane.
//!
//! Producing an OCI layer needs three passes over the same bytes: tar
//! serialization, the uncompressed diff_id SHA-256, and gzip (plus a hash of
//! the compressed blob). Done naively that materializes the tar several
//! times and runs each pass back-to-back. [`LayerCodec`] fuses them: the
//! tar writer streams into a sink that tees every chunk into the diff_id
//! hasher and the block-parallel [`GzipEncoder`](comt_flate::GzipEncoder)
//! in one pass, and the compressed-blob hash is computed while fragments
//! are assembled. Compression itself fans out across worker threads, with
//! output bytes bit-identical for any worker count (see `comt-flate`).
//!
//! Throughput is observable under `--stats` via the global
//! [`comt_observe`] recorder: `flate.bytes_in` / `flate.bytes_out`,
//! `codec.workers`, and the `codec.encode` / `codec.decode` spans.

use crate::spec::MediaType;
use bytes::Bytes;
use comt_digest::{Digest, Sha256};
use comt_flate::GzipEncoder;
use comt_tar::{Entry, FnSink, HeaderError, Writer};

/// A fully encoded layer: the blob to store plus every identity the
/// manifest/config needs, computed in the same pass that produced it.
#[derive(Debug, Clone)]
pub struct EncodedLayer {
    /// Blob bytes as stored (compressed when the codec compresses).
    pub blob: Bytes,
    /// Digest of `blob` (the manifest `layers[].digest`).
    pub blob_digest: Digest,
    /// Digest of the uncompressed tar (the config `diff_ids[]` entry).
    pub diff_id: Digest,
    /// Media type matching the blob encoding.
    pub media_type: MediaType,
    /// Uncompressed tar size in bytes.
    pub uncompressed_len: u64,
}

/// Streaming encoder/decoder for layer blobs.
#[derive(Debug, Clone, Copy)]
pub struct LayerCodec {
    compress: bool,
    workers: usize,
}

impl LayerCodec {
    /// Codec with the host's worker count ([`comt_flate::default_workers`]).
    pub fn new(compress: bool) -> Self {
        Self::with_workers(compress, comt_flate::default_workers())
    }

    /// Codec with an explicit compression worker count (clamped to ≥ 1).
    /// Output bytes do not depend on this value.
    pub fn with_workers(compress: bool, workers: usize) -> Self {
        LayerCodec {
            compress,
            workers: workers.max(1),
        }
    }

    /// Whether this codec emits `tar+gzip` blobs.
    pub fn compresses(&self) -> bool {
        self.compress
    }

    /// Encode a layer changeset: serialize, hash and compress in one pass.
    ///
    /// Fails when an entry cannot be represented in a tar header (path or
    /// link target too long, payload ≥ 8 GiB) — see [`HeaderError`].
    pub fn encode_entries(&self, entries: &[Entry]) -> Result<EncodedLayer, HeaderError> {
        let obs = comt_observe::global();
        let _span = obs.span("codec.encode");

        if !self.compress {
            // Uncompressed: tar bytes are the blob; tee the serialization
            // into the hasher so the archive is still produced in one pass.
            let mut hasher = Sha256::new();
            let mut out: Vec<u8> = Vec::new();
            let mut w = Writer::with_sink(FnSink(|chunk: &[u8]| {
                hasher.update(chunk);
                out.extend_from_slice(chunk);
            }));
            for e in entries {
                w.append(e)?;
            }
            w.finish();
            let diff_id = Digest::from_raw(hasher.finalize());
            let len = out.len() as u64;
            obs.count("codec.layers.encoded", 1);
            return Ok(EncodedLayer {
                blob: Bytes::from(out),
                blob_digest: diff_id,
                diff_id,
                media_type: MediaType::LayerTar,
                uncompressed_len: len,
            });
        }

        let mut hasher = Sha256::new();
        let mut enc = GzipEncoder::new(self.workers);
        let mut w = Writer::with_sink(FnSink(|chunk: &[u8]| {
            hasher.update(chunk);
            enc.write(chunk);
        }));
        for e in entries {
            w.append(e)?;
        }
        w.finish();
        let diff_id = Digest::from_raw(hasher.finalize());
        Ok(self.finish_compressed(enc, diff_id))
    }

    /// Encode an already-serialized tar (the `with_layer_tar` path): hashing
    /// and compression still overlap, the tar is just not re-serialized.
    pub fn encode_tar(&self, tar: impl Into<Bytes>) -> EncodedLayer {
        let tar = tar.into();
        let obs = comt_observe::global();
        let _span = obs.span("codec.encode");
        let diff_id = Digest::of(&tar);
        if !self.compress {
            obs.count("codec.layers.encoded", 1);
            return EncodedLayer {
                blob_digest: diff_id,
                diff_id,
                media_type: MediaType::LayerTar,
                uncompressed_len: tar.len() as u64,
                blob: tar,
            };
        }
        let mut enc = GzipEncoder::new(self.workers);
        enc.write(&tar);
        self.finish_compressed(enc, diff_id)
    }

    /// Drain the encoder, hashing the compressed stream while fragments are
    /// assembled, and record throughput counters.
    fn finish_compressed(&self, enc: GzipEncoder, diff_id: Digest) -> EncodedLayer {
        let obs = comt_observe::global();
        let uncompressed_len = enc.total_in();
        let mut blob_hasher = Sha256::new();
        let mut blob: Vec<u8> = Vec::new();
        enc.finish_into(|chunk| {
            blob_hasher.update(chunk);
            blob.extend_from_slice(chunk);
        });
        obs.count("flate.bytes_in", uncompressed_len);
        obs.count("flate.bytes_out", blob.len() as u64);
        obs.count("codec.workers", self.workers as u64);
        obs.count("codec.layers.encoded", 1);
        EncodedLayer {
            blob_digest: Digest::from_raw(blob_hasher.finalize()),
            diff_id,
            media_type: MediaType::LayerTarGzip,
            uncompressed_len,
            blob: Bytes::from(blob),
        }
    }

    /// Decode a layer blob back to its uncompressed tar bytes.
    pub fn decode(blob: Bytes, media_type: &MediaType) -> Result<Bytes, comt_flate::FlateError> {
        let obs = comt_observe::global();
        let _span = obs.span("codec.decode");
        match media_type {
            MediaType::LayerTarGzip => {
                let tar = comt_flate::gunzip(&blob)?;
                obs.count("flate.bytes_in", blob.len() as u64);
                obs.count("flate.bytes_out", tar.len() as u64);
                obs.count("codec.layers.decoded", 1);
                Ok(Bytes::from(tar))
            }
            _ => {
                obs.count("codec.layers.decoded", 1);
                Ok(blob)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<Entry> {
        vec![
            Entry::dir("app", 0o755),
            Entry::file("app/main.c", "int main(void) { return 0; }\n".repeat(200), 0o644),
            Entry::symlink("app/link", "main.c"),
        ]
    }

    #[test]
    fn fused_encode_matches_separate_passes() {
        let entries = sample_entries();
        let tar = comt_tar::write_archive(&entries).unwrap();
        for compress in [false, true] {
            let enc = LayerCodec::with_workers(compress, 2).encode_entries(&entries).unwrap();
            assert_eq!(enc.diff_id, Digest::of(&tar), "compress={compress}");
            assert_eq!(enc.uncompressed_len, tar.len() as u64);
            assert_eq!(enc.blob_digest, Digest::of(&enc.blob));
            let back = LayerCodec::decode(enc.blob.clone(), &enc.media_type).unwrap();
            assert_eq!(&back[..], &tar[..], "compress={compress}");
        }
    }

    #[test]
    fn encode_tar_matches_encode_entries() {
        let entries = sample_entries();
        let tar = comt_tar::write_archive(&entries).unwrap();
        let a = LayerCodec::with_workers(true, 2).encode_entries(&entries).unwrap();
        let b = LayerCodec::with_workers(true, 2).encode_tar(tar);
        assert_eq!(a.blob, b.blob);
        assert_eq!(a.diff_id, b.diff_id);
        assert_eq!(a.blob_digest, b.blob_digest);
    }

    #[test]
    fn worker_count_never_changes_blob_bytes() {
        let entries = sample_entries();
        let one = LayerCodec::with_workers(true, 1).encode_entries(&entries).unwrap();
        let four = LayerCodec::with_workers(true, 4).encode_entries(&entries).unwrap();
        assert_eq!(one.blob, four.blob);
        assert_eq!(one.blob_digest, four.blob_digest);
    }

    #[test]
    fn compressed_blob_matches_serial_gzip_of_tar() {
        // The parallel codec is a different encoder than `comt_flate::gzip`
        // (block joins), so bytes differ — but the decoded content must not.
        let entries = sample_entries();
        let tar = comt_tar::write_archive(&entries).unwrap();
        let enc = LayerCodec::new(true).encode_entries(&entries).unwrap();
        assert_eq!(comt_flate::gunzip(&enc.blob).unwrap(), tar);
    }
}
