//! Content-addressed blob storage and the simulated registry.

use bytes::Bytes;
use comt_digest::Digest;
use std::collections::BTreeMap;

/// Content-addressed blob store. Blobs are immutable; storing the same
/// content twice is a no-op (deduplication by digest).
#[derive(Debug, Clone, Default)]
pub struct BlobStore {
    blobs: BTreeMap<Digest, Bytes>,
}

impl BlobStore {
    pub fn new() -> Self {
        BlobStore::default()
    }

    /// Store a blob, returning its digest.
    pub fn put(&mut self, data: impl Into<Bytes>) -> Digest {
        let data = data.into();
        let d = Digest::of(&data);
        self.blobs.entry(d).or_insert(data);
        d
    }

    /// Store a blob whose digest the caller already computed **in the same
    /// process from the same bytes** (the fused layer codec hashes while
    /// compressing), skipping the re-hash.
    ///
    /// This is a *trusted* fast path: the digest check is a `debug_assert`
    /// only, so a wrong digest poisons the store in release builds. Never
    /// call it with a digest that arrived from outside the process (wire
    /// uploads, files on disk) — that is what [`BlobStore::put_verified`]
    /// is for.
    pub fn put_prehashed(&mut self, digest: Digest, data: impl Into<Bytes>) -> Digest {
        let data = data.into();
        debug_assert_eq!(digest, Digest::of(&data), "put_prehashed digest mismatch");
        self.blobs.entry(digest).or_insert(data);
        digest
    }

    /// Store a blob under a caller-claimed digest, re-hashing the content
    /// first and rejecting a mismatch — in every build profile.
    ///
    /// This is the trust boundary for bytes whose address was claimed by
    /// someone else: registry pushes, wire uploads, files read back from
    /// disk. Unlike [`BlobStore::put_prehashed`] the verification here is
    /// real code, not a `debug_assert`, so a poisoned upload can never
    /// enter the store in a release build.
    pub fn put_verified(
        &mut self,
        digest: Digest,
        data: impl Into<Bytes>,
    ) -> Result<Digest, RegistryError> {
        let data = data.into();
        let actual = Digest::of(&data);
        if actual != digest {
            return Err(RegistryError::DigestMismatch(digest.to_string()));
        }
        self.blobs.entry(digest).or_insert(data);
        Ok(digest)
    }

    /// Fetch a blob by digest.
    pub fn get(&self, digest: &Digest) -> Option<Bytes> {
        self.blobs.get(digest).cloned()
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.blobs.contains_key(digest)
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total stored bytes (deduplicated).
    pub fn total_size(&self) -> u64 {
        self.blobs.values().map(|b| b.len() as u64).sum()
    }

    /// Iterate all `(digest, blob)` pairs in digest order.
    pub fn iter(&self) -> impl Iterator<Item = (&Digest, &Bytes)> {
        self.blobs.iter()
    }

    /// Keep only blobs whose digest satisfies the predicate; returns how
    /// many were dropped (garbage collection support).
    pub fn retain(&mut self, keep: impl Fn(&Digest) -> bool) -> usize {
        let before = self.blobs.len();
        self.blobs.retain(|d, _| keep(d));
        before - self.blobs.len()
    }

    /// Insert a blob under an arbitrary digest, bypassing hashing — only
    /// for corruption/fault-injection tests (hence the name and the
    /// `#[doc(hidden)]`; production paths go through [`BlobStore::put`] or
    /// [`BlobStore::put_prehashed`]).
    #[doc(hidden)]
    pub fn insert_raw_for_tests(&mut self, digest: Digest, data: Bytes) {
        self.blobs.insert(digest, data);
    }

    #[cfg(test)]
    pub(crate) fn insert_raw(&mut self, digest: Digest, data: Bytes) {
        self.insert_raw_for_tests(digest, data);
    }

    /// Copy a blob from another store if missing here.
    pub fn fetch_from(&mut self, other: &BlobStore, digest: &Digest) -> bool {
        if self.contains(digest) {
            return true;
        }
        match other.get(digest) {
            Some(b) => {
                self.blobs.insert(*digest, b);
                true
            }
            None => false,
        }
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No manifest tagged with the requested name.
    UnknownTag(String),
    /// A referenced blob is missing from the source store.
    MissingBlob(String),
    /// Manifest blob failed to parse.
    CorruptManifest(String),
    /// A blob's content does not hash to its digest.
    DigestMismatch(String),
    /// The backing storage failed (disk I/O, torn layout). Unlike the
    /// other variants this is the *store's* fault, not the caller's: the
    /// wire surface maps it to a 5xx, never a 4xx.
    Storage(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTag(t) => write!(f, "unknown tag: {t}"),
            RegistryError::MissingBlob(d) => write!(f, "missing blob: {d}"),
            RegistryError::CorruptManifest(e) => write!(f, "corrupt manifest: {e}"),
            RegistryError::DigestMismatch(d) => {
                write!(f, "blob content does not match digest {d}")
            }
            RegistryError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

/// Re-hash each closure blob in `src` and check it against its address.
///
/// Blobs are independent, so verification fans out across threads (real
/// registries do the same on push/pull: digest checks dominate transfer CPU
/// time). Runs under the `store.verify` span with a `store.verify.blobs`
/// counter.
fn verify_blobs(src: &BlobStore, digests: &[Digest]) -> Result<(), RegistryError> {
    let obs = comt_observe::global();
    let _span = obs.span("store.verify");
    let verify_one = |d: &Digest| -> Result<(), RegistryError> {
        let blob = src
            .get(d)
            .ok_or_else(|| RegistryError::MissingBlob(d.to_string()))?;
        if Digest::of(&blob) != *d {
            return Err(RegistryError::DigestMismatch(d.to_string()));
        }
        Ok(())
    };
    obs.count("store.verify.blobs", digests.len() as u64);
    if digests.len() > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = digests
                .iter()
                .map(|d| s.spawn(move || verify_one(d)))
                .collect();
            handles
                .into_iter()
                .try_for_each(|h| h.join().expect("verify worker panicked"))
        })
    } else {
        digests.iter().try_for_each(verify_one)
    }
}

impl std::error::Error for RegistryError {}

/// Recursively collect the digests reachable from a manifest in `src`: the
/// manifest itself first, then its config, then every layer in order. This
/// is the transfer unit of both the in-process [`Registry`] and the wire
/// protocol (`comt-dist`): a push/pull moves exactly this closure.
pub fn closure_digests(
    src: &BlobStore,
    manifest_digest: &Digest,
) -> Result<Vec<Digest>, RegistryError> {
    let raw = src
        .get(manifest_digest)
        .ok_or_else(|| RegistryError::MissingBlob(manifest_digest.to_string()))?;
    closure_of_manifest(&raw, manifest_digest)
}

/// Collect the closure digests from already-fetched manifest bytes: the
/// manifest itself first, then its config, then every layer in order.
/// Store-agnostic so that lazy disk-backed stores can walk closures
/// without materializing anything else.
pub fn closure_of_manifest(
    raw: &[u8],
    manifest_digest: &Digest,
) -> Result<Vec<Digest>, RegistryError> {
    let manifest: crate::spec::ImageManifest = serde_json::from_slice(raw)
        .map_err(|e| RegistryError::CorruptManifest(e.to_string()))?;
    let mut out = vec![*manifest_digest];
    let cfg = manifest
        .config
        .parsed_digest()
        .map_err(|e| RegistryError::CorruptManifest(e.to_string()))?;
    out.push(cfg);
    for layer in &manifest.layers {
        out.push(
            layer
                .parsed_digest()
                .map_err(|e| RegistryError::CorruptManifest(e.to_string()))?,
        );
    }
    Ok(out)
}

/// A simulated OCI registry: tag → manifest digest, backed by a blob store.
///
/// `push`/`pull` between registries transfer only missing blobs, mirroring
/// real registry cross-repo behaviour. The registry is also the transport
/// between the user side and the HPC system side in the coMtainer workflow.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    tags: BTreeMap<String, Digest>,
    store: BlobStore,
    /// layer blob digest → chunkmap blob digest (sub-layer dedupe).
    chunkmaps: BTreeMap<Digest, Digest>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn store(&self) -> &BlobStore {
        &self.store
    }

    pub fn store_mut(&mut self) -> &mut BlobStore {
        &mut self.store
    }

    /// Tags present, sorted.
    pub fn tags(&self) -> Vec<String> {
        self.tags.keys().cloned().collect()
    }

    /// Manifest digest for a tag.
    pub fn resolve(&self, tag: &str) -> Option<Digest> {
        self.tags.get(tag).copied()
    }

    /// Digest of the chunkmap blob recorded for a layer blob, if any.
    pub fn chunkmap_for(&self, layer: &Digest) -> Option<Digest> {
        self.chunkmaps.get(layer).copied()
    }

    /// Record a chunkmap blob for `layer`, storing its bytes. The layer
    /// blob must already be committed — a chunkmap for bytes the registry
    /// does not hold could never serve a chunk GET.
    pub fn put_chunkmap(&mut self, layer: Digest, map: Bytes) -> Result<Digest, RegistryError> {
        if !self.store.contains(&layer) {
            return Err(RegistryError::MissingBlob(layer.to_string()));
        }
        let digest = self.store.put(map);
        self.chunkmaps.insert(layer, digest);
        Ok(digest)
    }

    /// Recursively collect the digests reachable from a manifest: the
    /// manifest itself, its config, and all layers.
    fn closure(
        src: &BlobStore,
        manifest_digest: &Digest,
    ) -> Result<Vec<Digest>, RegistryError> {
        closure_digests(src, manifest_digest)
    }

    /// Push a manifest (and its blob closure) from a local store under `tag`.
    pub fn push(
        &mut self,
        tag: &str,
        manifest_digest: Digest,
        src: &BlobStore,
    ) -> Result<usize, RegistryError> {
        let closure = Self::closure(src, &manifest_digest)?;
        // Verify content-addressing before admitting blobs (concurrently —
        // layers are independent).
        verify_blobs(src, &closure)?;
        // Blobs the remote already holds are re-verified too: deduplication
        // must not mask a poisoned or truncated pre-existing blob — that is
        // a `DigestMismatch`, not a free skip.
        let present: Vec<Digest> = closure
            .iter()
            .filter(|d| self.store.contains(d))
            .copied()
            .collect();
        verify_blobs(&self.store, &present)?;
        let mut transferred = 0usize;
        for d in closure {
            if !self.store.contains(&d) {
                if !self.store.fetch_from(src, &d) {
                    return Err(RegistryError::MissingBlob(d.to_string()));
                }
                transferred += 1;
            }
        }
        self.tags.insert(tag.to_string(), manifest_digest);
        Ok(transferred)
    }

    /// Tag a manifest whose closure already lives in this registry's own
    /// store, verifying every blob's bytes first. This is the manifest-PUT
    /// path of the wire protocol: blobs arrive one at a time over
    /// connections, and the tag only becomes visible once the whole closure
    /// is present and content-addressed correctly.
    pub fn tag_verified(
        &mut self,
        tag: &str,
        manifest_digest: Digest,
    ) -> Result<(), RegistryError> {
        let closure = Self::closure(&self.store, &manifest_digest)?;
        verify_blobs(&self.store, &closure)?;
        self.tags.insert(tag.to_string(), manifest_digest);
        Ok(())
    }

    /// Publish manifest bytes under `tag`: stage the manifest blob, verify
    /// the full closure is present and bit-correct, and only then make the
    /// tag visible. On failure a freshly staged manifest blob is unwound so
    /// a rejected publish leaves no trace. This is the manifest-PUT path of
    /// the wire protocol.
    pub fn publish_manifest(
        &mut self,
        tag: &str,
        manifest: Bytes,
    ) -> Result<Digest, RegistryError> {
        let fresh = !self.store.contains(&Digest::of(&manifest));
        let digest = self.store.put(manifest);
        match self.tag_verified(tag, digest) {
            Ok(()) => Ok(digest),
            Err(e) => {
                if fresh {
                    self.store.retain(|d| *d != digest);
                }
                Err(e)
            }
        }
    }

    /// Pull a tag's manifest closure into a local store; returns the
    /// manifest digest and how many blobs were transferred.
    pub fn pull(
        &self,
        tag: &str,
        dst: &mut BlobStore,
    ) -> Result<(Digest, usize), RegistryError> {
        let manifest_digest = self
            .resolve(tag)
            .ok_or_else(|| RegistryError::UnknownTag(tag.to_string()))?;
        let closure = Self::closure(&self.store, &manifest_digest)?;
        verify_blobs(&self.store, &closure)?;
        let mut transferred = 0usize;
        for d in closure {
            if !dst.contains(&d) {
                if !dst.fetch_from(&self.store, &d) {
                    return Err(RegistryError::MissingBlob(d.to_string()));
                }
                transferred += 1;
            }
        }
        Ok((manifest_digest, transferred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use bytes::Bytes;
    use comt_vfs::Vfs;

    #[test]
    fn put_dedupes() {
        let mut s = BlobStore::new();
        let d1 = s.put(Bytes::from_static(b"same"));
        let d2 = s.put(Bytes::from_static(b"same"));
        assert_eq!(d1, d2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_size(), 4);
    }

    #[test]
    fn get_missing() {
        let s = BlobStore::new();
        assert!(s.get(&Digest::of(b"nope")).is_none());
    }

    #[test]
    fn fetch_from_copies_once() {
        let mut a = BlobStore::new();
        let d = a.put(Bytes::from_static(b"blob"));
        let mut b = BlobStore::new();
        assert!(b.fetch_from(&a, &d));
        assert!(b.fetch_from(&a, &d)); // idempotent
        assert!(!b.fetch_from(&a, &Digest::of(b"missing")));
    }

    fn tiny_image(store: &mut BlobStore) -> Digest {
        let mut fs = Vfs::new();
        fs.write_file_p("/bin/x", Bytes::from_static(b"X"), 0o755)
            .unwrap();
        let img = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(store)
            .unwrap();
        img.manifest_digest
    }

    #[test]
    fn push_pull_transfers_closure() {
        let mut local = BlobStore::new();
        let md = tiny_image(&mut local);

        let mut reg = Registry::new();
        let n = reg.push("app:1.0", md, &local).unwrap();
        assert_eq!(n, 3); // manifest + config + 1 layer

        // Second push transfers nothing.
        assert_eq!(reg.push("app:dup", md, &local).unwrap(), 0);

        let mut remote = BlobStore::new();
        let (got, n2) = reg.pull("app:1.0", &mut remote).unwrap();
        assert_eq!(got, md);
        assert_eq!(n2, 3);
        assert!(remote.contains(&md));
    }

    #[test]
    fn pull_unknown_tag() {
        let reg = Registry::new();
        let mut dst = BlobStore::new();
        assert!(matches!(
            reg.pull("ghost:latest", &mut dst),
            Err(RegistryError::UnknownTag(_))
        ));
    }

    #[test]
    fn push_detects_corrupt_blob() {
        let mut local = BlobStore::new();
        let md = tiny_image(&mut local);
        // Corrupt the first layer blob in place (content no longer hashes
        // to its address).
        let layer_digest = {
            let raw = local.get(&md).unwrap();
            let manifest: crate::spec::ImageManifest = serde_json::from_slice(&raw).unwrap();
            manifest.layers[0].parsed_digest().unwrap()
        };
        local.insert_raw(layer_digest, Bytes::from_static(b"tampered"));
        let mut reg = Registry::new();
        assert!(matches!(
            reg.push("bad:1", md, &local),
            Err(RegistryError::DigestMismatch(_))
        ));
    }

    #[test]
    fn push_detects_poisoned_preexisting_remote_blob() {
        // Regression: a blob that already exists on the remote used to be
        // deduplicated away without ever re-hashing the remote's bytes, so
        // a poisoned/truncated remote copy silently survived. The second
        // push must now surface it as DigestMismatch.
        let mut local = BlobStore::new();
        let md = tiny_image(&mut local);
        let mut reg = Registry::new();
        reg.push("app:1", md, &local).unwrap();

        let layer_digest = {
            let raw = local.get(&md).unwrap();
            let manifest: crate::spec::ImageManifest = serde_json::from_slice(&raw).unwrap();
            manifest.layers[0].parsed_digest().unwrap()
        };
        // Poison the REMOTE copy; the local source stays pristine.
        reg.store_mut()
            .insert_raw(layer_digest, Bytes::from_static(b"truncated"));

        assert!(matches!(
            reg.push("app:2", md, &local),
            Err(RegistryError::DigestMismatch(_))
        ));
        // The poisoned blob was not re-tagged as a fresh ref either.
        assert!(reg.resolve("app:2").is_none());
    }

    #[test]
    fn tag_verified_requires_complete_valid_closure() {
        let mut local = BlobStore::new();
        let md = tiny_image(&mut local);

        // Closure complete and valid → tag appears.
        let mut reg = Registry::new();
        for (d, b) in local.iter() {
            reg.store_mut().put_prehashed(*d, b.clone());
        }
        reg.tag_verified("ok:1", md).unwrap();
        assert_eq!(reg.resolve("ok:1"), Some(md));

        // Missing layer blob → no tag.
        let mut partial = Registry::new();
        partial.store_mut().put(local.get(&md).unwrap());
        assert!(matches!(
            partial.tag_verified("bad:1", md),
            Err(RegistryError::MissingBlob(_))
        ));
        assert!(partial.resolve("bad:1").is_none());

        // Corrupt layer blob → no tag.
        let layer_digest = {
            let raw = local.get(&md).unwrap();
            let manifest: crate::spec::ImageManifest = serde_json::from_slice(&raw).unwrap();
            manifest.layers[0].parsed_digest().unwrap()
        };
        let mut poisoned = Registry::new();
        for (d, b) in local.iter() {
            poisoned.store_mut().put_prehashed(*d, b.clone());
        }
        poisoned
            .store_mut()
            .insert_raw(layer_digest, Bytes::from_static(b"garbage"));
        assert!(matches!(
            poisoned.tag_verified("bad:2", md),
            Err(RegistryError::DigestMismatch(_))
        ));
        assert!(poisoned.resolve("bad:2").is_none());
    }

    #[test]
    fn closure_digests_orders_manifest_config_layers() {
        let mut local = BlobStore::new();
        let md = tiny_image(&mut local);
        let closure = closure_digests(&local, &md).unwrap();
        assert_eq!(closure.len(), 3);
        assert_eq!(closure[0], md);
        let raw = local.get(&md).unwrap();
        let manifest: crate::spec::ImageManifest = serde_json::from_slice(&raw).unwrap();
        assert_eq!(closure[1], manifest.config.parsed_digest().unwrap());
        assert_eq!(closure[2], manifest.layers[0].parsed_digest().unwrap());
    }

    #[test]
    fn put_prehashed_skips_rehash_but_addresses_correctly() {
        let mut s = BlobStore::new();
        let data = Bytes::from_static(b"layer blob");
        let d = Digest::of(&data);
        assert_eq!(s.put_prehashed(d, data.clone()), d);
        assert_eq!(s.get(&d).unwrap(), data);
    }

    #[test]
    fn push_with_missing_blob_fails() {
        let local = BlobStore::new();
        let mut reg = Registry::new();
        let err = reg.push("x", Digest::of(b"not-a-manifest"), &local);
        assert!(matches!(err, Err(RegistryError::MissingBlob(_))));
    }
}
