//! OCI image substrate: content-addressed blobs, manifests, layers,
//! registries and on-disk image layouts.
//!
//! coMtainer operates purely on OCI data structures: the user side exports
//! the `dist` image as an OCI layout directory, mounts it into the build
//! container, and appends a *cache layer* plus a new manifest tagged
//! `<ref>+coM`; the system side appends a *rebuild layer* (`+coMre`) and
//! finally commits a redirected image. This crate reproduces the OCI
//! mechanics those steps rely on:
//!
//! * [`BlobStore`] — content-addressed storage, deduplicating by digest,
//! * [`spec`] — manifests, configs, image index (serde, OCI field names),
//! * [`Image`] / [`ImageBuilder`] — building images from layer changesets,
//!   flattening an image to a filesystem ([`flatten`]),
//! * [`Registry`] — named repositories with push/pull blob transfer,
//! * [`layout`] — on-disk OCI image layout (`oci-layout`, `index.json`,
//!   `blobs/sha256/…`),
//! * [`disk`] — the crash-safe persistent store ([`DiskStore`],
//!   [`DiskRegistry`], [`LayoutLock`]): tmp → fsync → atomic-rename
//!   commits, lazy digest-verified reads, advisory layout locking,
//! * [`backend`] — the [`RegistryBackend`] trait the wire daemon is
//!   generic over (in-memory or disk-backed),
//! * [`fsck`] — torn-layout diagnosis and repair (`comt fsck`).

pub mod backend;
pub mod codec;
pub mod disk;
pub mod fsck;
pub mod image;
pub mod layout;
pub mod spec;
pub mod store;

pub use backend::{BlobHandle, BlobReader, RegistryBackend, BLOB_STREAM_CHUNK, FILE_BYTES_READ};
pub use codec::{EncodedLayer, LayerCodec};
pub use disk::{DiskRegistry, DiskStore, LayoutLock};
pub use fsck::{fsck, FsckFinding, FsckOptions, FsckReport};
pub use image::{flatten, layer_tar, Image, ImageBuilder, ImageError};
pub use spec::{
    Descriptor, ImageConfig, ImageIndex, ImageManifest, MediaType, Platform, RuntimeConfig,
};
pub use store::{closure_digests, closure_of_manifest, BlobStore, Registry, RegistryError};

/// Serialize a manifest to its canonical JSON bytes (exposed for tests and
/// tools that need to hand-craft manifests).
pub fn manifest_to_json(m: &spec::ImageManifest) -> Vec<u8> {
    serde_json::to_vec(m).expect("manifest serializes")
}

/// Serialize an image config to JSON bytes (companion to
/// [`manifest_to_json`], for the same hand-crafting use cases).
pub fn config_to_json(c: &spec::ImageConfig) -> Vec<u8> {
    serde_json::to_vec(c).expect("config serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use comt_vfs::Vfs;

    #[test]
    fn build_flatten_roundtrip() {
        let mut store = BlobStore::new();

        // Base rootfs as layer 0.
        let mut base_fs = Vfs::new();
        base_fs.mkdir_p("/bin").unwrap();
        base_fs
            .write_file("/bin/sh", Bytes::from_static(b"sh"), 0o755)
            .unwrap();

        let base = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &base_fs)
            .commit(&mut store)
            .unwrap();

        // App layer on top.
        let mut app_fs = base_fs.clone();
        app_fs.mkdir_p("/app").unwrap();
        app_fs
            .write_file("/app/run", Bytes::from_static(b"ELF"), 0o755)
            .unwrap();

        let app = ImageBuilder::from_base(&store, &base)
            .unwrap()
            .with_layer_from_fs(&base_fs, &app_fs)
            .with_entrypoint(vec!["/app/run".into()])
            .commit(&mut store)
            .unwrap();

        let fs = flatten(&store, &app).unwrap();
        assert_eq!(fs, app_fs);
        assert_eq!(app.config.config.entrypoint, vec!["/app/run".to_string()]);
        assert_eq!(app.manifest.layers.len(), 2);
    }
}
