//! OCI image-spec data structures (manifest, config, index).
//!
//! Field names and casing follow the OCI image specification so the JSON we
//! emit is recognizable OCI JSON. Only the subset container layers need is
//! modeled; extension points live in `annotations`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Media types used by this implementation (uncompressed layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediaType {
    #[serde(rename = "application/vnd.oci.image.manifest.v1+json")]
    ImageManifest,
    #[serde(rename = "application/vnd.oci.image.config.v1+json")]
    ImageConfig,
    #[serde(rename = "application/vnd.oci.image.layer.v1.tar")]
    LayerTar,
    #[serde(rename = "application/vnd.oci.image.layer.v1.tar+gzip")]
    LayerTarGzip,
    #[serde(rename = "application/vnd.oci.image.index.v1+json")]
    ImageIndex,
    /// Chunk manifest of one layer blob (sub-layer dedupe, see `comt-chunk`).
    #[serde(rename = "application/vnd.comt.chunkmap.v1+json")]
    Chunkmap,
}

/// Target platform of a manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    pub architecture: String,
    pub os: String,
}

impl Platform {
    pub fn linux(arch: &str) -> Self {
        Platform {
            architecture: arch.to_string(),
            os: "linux".to_string(),
        }
    }
}

/// A content descriptor: typed, sized reference to a blob by digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    #[serde(rename = "mediaType")]
    pub media_type: MediaType,
    /// `sha256:<hex>` string form (kept as string for spec fidelity).
    pub digest: String,
    pub size: u64,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub annotations: BTreeMap<String, String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub platform: Option<Platform>,
}

impl Descriptor {
    pub fn new(media_type: MediaType, digest: comt_digest::Digest, size: u64) -> Self {
        Descriptor {
            media_type,
            digest: digest.to_oci_string(),
            size,
            annotations: BTreeMap::new(),
            platform: None,
        }
    }

    /// Parse the digest string back into a typed digest.
    pub fn parsed_digest(&self) -> Result<comt_digest::Digest, comt_digest::DigestParseError> {
        self.digest.parse()
    }

    /// The `org.opencontainers.image.ref.name` annotation, if present.
    pub fn ref_name(&self) -> Option<&str> {
        self.annotations
            .get("org.opencontainers.image.ref.name")
            .map(String::as_str)
    }

    /// Set the ref-name annotation (builder style).
    pub fn with_ref_name(mut self, name: &str) -> Self {
        self.annotations.insert(
            "org.opencontainers.image.ref.name".to_string(),
            name.to_string(),
        );
        self
    }

    /// For a chunkmap descriptor: the digest of the layer blob it describes
    /// (the `org.comtainer.chunkmap.layer` annotation).
    pub fn chunkmap_layer(&self) -> Option<comt_digest::Digest> {
        self.annotations
            .get(comt_chunk::ANNOTATION_CHUNKMAP_LAYER)?
            .parse()
            .ok()
    }

    /// Annotate this descriptor as the chunkmap of `layer` (builder style).
    pub fn with_chunkmap_layer(mut self, layer: &comt_digest::Digest) -> Self {
        self.annotations.insert(
            comt_chunk::ANNOTATION_CHUNKMAP_LAYER.to_string(),
            layer.to_oci_string(),
        );
        self
    }
}

/// An image manifest: config descriptor plus ordered layer descriptors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageManifest {
    #[serde(rename = "schemaVersion")]
    pub schema_version: u32,
    #[serde(rename = "mediaType")]
    pub media_type: MediaType,
    pub config: Descriptor,
    pub layers: Vec<Descriptor>,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub annotations: BTreeMap<String, String>,
}

/// Runtime configuration stored in the image config.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RuntimeConfig {
    #[serde(rename = "Env", default, skip_serializing_if = "Vec::is_empty")]
    pub env: Vec<String>,
    #[serde(rename = "Entrypoint", default, skip_serializing_if = "Vec::is_empty")]
    pub entrypoint: Vec<String>,
    #[serde(rename = "Cmd", default, skip_serializing_if = "Vec::is_empty")]
    pub cmd: Vec<String>,
    #[serde(rename = "WorkingDir", default, skip_serializing_if = "String::is_empty")]
    pub working_dir: String,
    #[serde(rename = "Labels", default, skip_serializing_if = "BTreeMap::is_empty")]
    pub labels: BTreeMap<String, String>,
}

/// One history record per layer-producing step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HistoryEntry {
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub created_by: String,
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub empty_layer: bool,
}

/// Rootfs section: the uncompressed-layer digest chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RootFs {
    #[serde(rename = "type")]
    pub fs_type: String,
    pub diff_ids: Vec<String>,
}

impl Default for RootFs {
    fn default() -> Self {
        RootFs {
            fs_type: "layers".to_string(),
            diff_ids: Vec::new(),
        }
    }
}

/// The image configuration blob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageConfig {
    pub architecture: String,
    pub os: String,
    #[serde(default)]
    pub config: RuntimeConfig,
    pub rootfs: RootFs,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub history: Vec<HistoryEntry>,
}

impl ImageConfig {
    pub fn new(arch: &str) -> Self {
        ImageConfig {
            architecture: arch.to_string(),
            os: "linux".to_string(),
            config: RuntimeConfig::default(),
            rootfs: RootFs::default(),
            history: Vec::new(),
        }
    }
}

/// The image index (`index.json`): the entry point of an OCI layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageIndex {
    #[serde(rename = "schemaVersion")]
    pub schema_version: u32,
    pub manifests: Vec<Descriptor>,
}

impl Default for ImageIndex {
    fn default() -> Self {
        ImageIndex {
            schema_version: 2,
            manifests: Vec::new(),
        }
    }
}

impl ImageIndex {
    /// Find the manifest descriptor annotated with `ref.name == name`.
    pub fn find_ref(&self, name: &str) -> Option<&Descriptor> {
        self.manifests.iter().find(|d| d.ref_name() == Some(name))
    }

    /// Add or replace a manifest entry for `name`.
    pub fn set_ref(&mut self, name: &str, desc: Descriptor) {
        self.manifests.retain(|d| d.ref_name() != Some(name));
        self.manifests.push(desc.with_ref_name(name));
    }

    /// Remove the manifest entry for `name`; returns whether it existed.
    /// Blobs are untouched — run [`crate::layout::OciDir::gc`] afterwards
    /// to drop whatever the remaining refs no longer reach.
    pub fn remove_ref(&mut self, name: &str) -> bool {
        let before = self.manifests.len();
        self.manifests.retain(|d| d.ref_name() != Some(name));
        self.manifests.len() != before
    }

    /// Add or replace the chunkmap entry for one layer blob. The descriptor
    /// is stored alongside the manifest entries (chunkmaps carry no
    /// `ref.name` annotation, so they never appear in [`Self::ref_names`]).
    pub fn set_chunkmap(&mut self, layer: &comt_digest::Digest, desc: Descriptor) {
        self.manifests.retain(|d| {
            d.media_type != MediaType::Chunkmap || d.chunkmap_layer() != Some(*layer)
        });
        self.manifests.push(desc.with_chunkmap_layer(layer));
    }

    /// The chunkmap descriptor for a layer blob, if one is recorded.
    pub fn chunkmap_for(&self, layer: &comt_digest::Digest) -> Option<&Descriptor> {
        self.manifests.iter().find(|d| {
            d.media_type == MediaType::Chunkmap && d.chunkmap_layer() == Some(*layer)
        })
    }

    /// All chunkmap descriptors in the index.
    pub fn chunkmap_entries(&self) -> impl Iterator<Item = &Descriptor> {
        self.manifests
            .iter()
            .filter(|d| d.media_type == MediaType::Chunkmap)
    }

    /// All ref names present in the index, sorted.
    pub fn ref_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .manifests
            .iter()
            .filter_map(|d| d.ref_name().map(String::from))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comt_digest::Digest;

    #[test]
    fn manifest_json_shape() {
        let m = ImageManifest {
            schema_version: 2,
            media_type: MediaType::ImageManifest,
            config: Descriptor::new(MediaType::ImageConfig, Digest::of(b"cfg"), 3),
            layers: vec![Descriptor::new(MediaType::LayerTar, Digest::of(b"l0"), 2)],
            annotations: BTreeMap::new(),
        };
        let json = serde_json::to_string_pretty(&m).unwrap();
        assert!(json.contains("\"schemaVersion\": 2"));
        assert!(json.contains("application/vnd.oci.image.manifest.v1+json"));
        assert!(json.contains("application/vnd.oci.image.layer.v1.tar"));
        let back: ImageManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn config_json_roundtrip() {
        let mut c = ImageConfig::new("aarch64");
        c.config.env.push("PATH=/usr/bin".into());
        c.config.entrypoint.push("/app/run".into());
        c.rootfs.diff_ids.push(Digest::of(b"layer").to_oci_string());
        c.history.push(HistoryEntry {
            created_by: "RUN make".into(),
            empty_layer: false,
        });
        let json = serde_json::to_string(&c).unwrap();
        let back: ImageConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn descriptor_digest_parses_back() {
        let d = Descriptor::new(MediaType::LayerTar, Digest::of(b"x"), 1);
        assert_eq!(d.parsed_digest().unwrap(), Digest::of(b"x"));
    }

    #[test]
    fn index_ref_management() {
        let mut idx = ImageIndex::default();
        let d1 = Descriptor::new(MediaType::ImageManifest, Digest::of(b"m1"), 10);
        let d2 = Descriptor::new(MediaType::ImageManifest, Digest::of(b"m2"), 11);
        idx.set_ref("app:latest", d1);
        idx.set_ref("app:latest+coM", d2.clone());
        assert_eq!(idx.ref_names(), vec!["app:latest", "app:latest+coM"]);
        assert_eq!(
            idx.find_ref("app:latest+coM").unwrap().digest,
            d2.digest
        );
        // Replacing a ref drops the old entry.
        let d3 = Descriptor::new(MediaType::ImageManifest, Digest::of(b"m3"), 12);
        idx.set_ref("app:latest", d3.clone());
        assert_eq!(idx.manifests.len(), 2);
        assert_eq!(idx.find_ref("app:latest").unwrap().digest, d3.digest);
    }

    #[test]
    fn index_missing_ref() {
        let idx = ImageIndex::default();
        assert!(idx.find_ref("nope").is_none());
    }
}
