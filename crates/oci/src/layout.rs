//! The OCI image layout: the directory interchange format.
//!
//! In the coMtainer workflow the `dist` image is exported as an OCI layout
//! directory (`buildah push xxx.dist oci:./xxx.dist.oci`) which is then
//! bind-mounted into the build/rebuild/redirect containers. We model that
//! directory both **in memory** ([`OciDir`], the form "mounted" into
//! simulated containers) and **on disk** (`save`/`load`), with the standard
//! structure:
//!
//! ```text
//! oci-layout          # {"imageLayoutVersion": "1.0.0"}
//! index.json          # ImageIndex with ref.name annotations
//! blobs/sha256/<hex>  # content-addressed blobs
//! ```

use crate::spec::{Descriptor, ImageIndex, MediaType};
use crate::store::BlobStore;
use bytes::Bytes;
use comt_digest::Digest;
use std::fmt;
use std::io;
use std::path::Path;

/// An OCI layout held in memory: the unit mounted at `/.coMtainer/io`.
#[derive(Debug, Clone, Default)]
pub struct OciDir {
    pub index: ImageIndex,
    pub blobs: BlobStore,
}

/// Errors from layout I/O.
#[derive(Debug)]
pub enum LayoutError {
    Io(io::Error),
    BadJson(String),
    BadDigest(String),
    /// A blob file's name does not match its content digest.
    DigestMismatch { path: String },
    UnknownRef(String),
    /// Another live process holds the layout's advisory lock.
    Locked {
        path: String,
        /// Pid recorded by the holder, when readable (diagnostic only).
        holder: Option<String>,
    },
    /// The on-disk layout is torn (interrupted commit: orphan tmp file,
    /// truncated `index.json`, foreign file in the blob directory).
    Torn { path: String, detail: String },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Io(e) => write!(f, "io error: {e}"),
            LayoutError::BadJson(e) => write!(f, "bad json: {e}"),
            LayoutError::BadDigest(e) => write!(f, "bad digest: {e}"),
            LayoutError::DigestMismatch { path } => {
                write!(f, "blob content does not match its digest: {path}")
            }
            LayoutError::UnknownRef(r) => write!(f, "unknown ref: {r}"),
            LayoutError::Locked { path, holder } => {
                write!(f, "layout is locked by another process ({path}")?;
                if let Some(pid) = holder {
                    write!(f, ", held by pid {pid}")?;
                }
                write!(f, ")")
            }
            LayoutError::Torn { path, detail } => {
                write!(
                    f,
                    "torn layout: {detail} ({path}); run `comt fsck` to diagnose and `comt fsck --repair` to recover"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

impl From<io::Error> for LayoutError {
    fn from(e: io::Error) -> Self {
        LayoutError::Io(e)
    }
}

impl OciDir {
    pub fn new() -> Self {
        OciDir::default()
    }

    /// Export an image (manifest closure) from `src` into this layout under
    /// the ref name `name` — the `buildah push … oci:./dir` step.
    pub fn export(
        &mut self,
        name: &str,
        manifest_digest: Digest,
        src: &BlobStore,
    ) -> Result<(), LayoutError> {
        let raw = src
            .get(&manifest_digest)
            .ok_or_else(|| LayoutError::BadDigest(manifest_digest.to_string()))?;
        let manifest: crate::spec::ImageManifest =
            serde_json::from_slice(&raw).map_err(|e| LayoutError::BadJson(e.to_string()))?;

        let mut needed = vec![manifest_digest];
        needed.push(
            manifest
                .config
                .parsed_digest()
                .map_err(|e| LayoutError::BadDigest(e.to_string()))?,
        );
        for l in &manifest.layers {
            needed.push(
                l.parsed_digest()
                    .map_err(|e| LayoutError::BadDigest(e.to_string()))?,
            );
        }
        for d in needed {
            if !self.blobs.fetch_from(src, &d) {
                return Err(LayoutError::BadDigest(d.to_string()));
            }
        }

        let size = raw.len() as u64;
        self.index.set_ref(
            name,
            Descriptor::new(MediaType::ImageManifest, manifest_digest, size),
        );
        Ok(())
    }

    /// Resolve a ref name to its manifest digest.
    pub fn resolve(&self, name: &str) -> Result<Digest, LayoutError> {
        let desc = self
            .index
            .find_ref(name)
            .ok_or_else(|| LayoutError::UnknownRef(name.to_string()))?;
        desc.parsed_digest()
            .map_err(|e| LayoutError::BadDigest(e.to_string()))
    }

    /// Load an [`crate::Image`] by ref name.
    pub fn load_image(&self, name: &str) -> Result<crate::Image, LayoutError> {
        let d = self.resolve(name)?;
        crate::Image::load(&self.blobs, d).map_err(|e| LayoutError::BadJson(e.to_string()))
    }

    /// Digests reachable from any indexed manifest (the union of every
    /// tagged closure). A blob referenced by two tags is naturally kept
    /// alive by either — reachability is the refcount.
    fn live_set(&self) -> std::collections::BTreeSet<comt_digest::Digest> {
        let mut live: std::collections::BTreeSet<comt_digest::Digest> =
            std::collections::BTreeSet::new();
        for desc in &self.index.manifests {
            if desc.media_type == MediaType::Chunkmap {
                continue; // handled below, once layer liveness is known
            }
            let Ok(md) = desc.parsed_digest() else { continue };
            let Some(raw) = self.blobs.get(&md) else { continue };
            live.insert(md);
            let Ok(manifest) = serde_json::from_slice::<crate::spec::ImageManifest>(&raw) else {
                continue;
            };
            if let Ok(d) = manifest.config.parsed_digest() {
                live.insert(d);
            }
            for layer in &manifest.layers {
                if let Ok(d) = layer.parsed_digest() {
                    live.insert(d);
                }
            }
        }
        // A chunkmap blob is live iff the layer it describes is live.
        for desc in self.index.chunkmap_entries() {
            if desc.chunkmap_layer().is_some_and(|l| live.contains(&l)) {
                if let Ok(d) = desc.parsed_digest() {
                    live.insert(d);
                }
            }
        }
        live
    }

    /// What a garbage collection would delete: the unreachable digests (in
    /// digest order) and their total byte count. `comt gc` prints this as
    /// its dry run; [`OciDir::gc`] is the `--apply` path over the same set.
    pub fn gc_plan(&self) -> (Vec<comt_digest::Digest>, u64) {
        let live = self.live_set();
        let mut dead = Vec::new();
        let mut bytes = 0u64;
        for (d, b) in self.blobs.iter() {
            if !live.contains(d) {
                dead.push(*d);
                bytes += b.len() as u64;
            }
        }
        (dead, bytes)
    }

    /// Garbage-collect blobs unreachable from any indexed manifest —
    /// repeated rebuild/redirect rounds replace `+coMre`/`+opt` manifests
    /// and orphan their old layers. Chunkmap index entries whose layer died
    /// are swept along with their blobs. Returns the number of blobs
    /// dropped.
    pub fn gc(&mut self) -> usize {
        let live = self.live_set();
        self.index.manifests.retain(|d| {
            d.media_type != MediaType::Chunkmap
                || d.parsed_digest().map(|m| live.contains(&m)).unwrap_or(false)
        });
        self.blobs.retain(|d| live.contains(d))
    }

    /// Persist to a real directory in standard OCI layout form, under the
    /// layout lock and with the crash-safe commit protocol: blobs are
    /// committed incrementally (only the missing ones are written, each
    /// via tmp → fsync → atomic rename), and `index.json` is replaced
    /// atomically last, so a kill mid-save leaves either the old or the
    /// new tag table — never a torn one.
    pub fn save(&self, dir: &Path) -> Result<(), LayoutError> {
        let _lock = crate::disk::LayoutLock::acquire(dir)?;
        let store = crate::disk::DiskStore::init(dir)?;
        for (digest, blob) in self.blobs.iter() {
            store.put_blob(digest, blob)?;
        }
        store.commit_index(&self.index)
    }

    /// Load from a real directory, verifying every blob against its name
    /// and refusing torn state: an orphan tmp file, a foreign file in the
    /// blob directory, or an unparseable `index.json` all fail with an
    /// error pointing at `comt fsck` instead of being silently skipped.
    pub fn load(dir: &Path) -> Result<Self, LayoutError> {
        let store = crate::disk::DiskStore::open(dir)?;
        let index = store.read_index()?;
        let mut blobs = BlobStore::new();
        let blobs_dir = dir.join("blobs").join("sha256");
        if blobs_dir.is_dir() {
            for entry in std::fs::read_dir(&blobs_dir)? {
                let entry = entry?;
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with(crate::disk::TMP_PREFIX) {
                    return Err(LayoutError::Torn {
                        path: path.display().to_string(),
                        detail: "orphan temp file from an interrupted commit".into(),
                    });
                }
                if format!("sha256:{name}").parse::<Digest>().is_err() {
                    return Err(LayoutError::Torn {
                        path: path.display().to_string(),
                        detail: "foreign file in the blob directory".into(),
                    });
                }
                let data = std::fs::read(&path)?;
                let stored = blobs.put(Bytes::from(data));
                if stored.hex() != name {
                    return Err(LayoutError::DigestMismatch {
                        path: path.display().to_string(),
                    });
                }
            }
        }
        Ok(OciDir { index, blobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use comt_vfs::Vfs;

    fn tiny_image(store: &mut BlobStore) -> Digest {
        let mut fs = Vfs::new();
        fs.write_file_p("/app/bin", Bytes::from_static(b"B"), 0o755)
            .unwrap();
        ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &fs)
            .commit(store)
            .unwrap()
            .manifest_digest
    }

    #[test]
    fn export_and_resolve() {
        let mut store = BlobStore::new();
        let md = tiny_image(&mut store);
        let mut dir = OciDir::new();
        dir.export("app.dist", md, &store).unwrap();
        assert_eq!(dir.resolve("app.dist").unwrap(), md);
        assert_eq!(dir.blobs.len(), 3);
        assert!(dir.load_image("app.dist").is_ok());
    }

    #[test]
    fn resolve_unknown_ref() {
        let dir = OciDir::new();
        assert!(matches!(
            dir.resolve("ghost"),
            Err(LayoutError::UnknownRef(_))
        ));
    }

    #[test]
    fn save_load_roundtrip_on_disk() {
        let mut store = BlobStore::new();
        let md = tiny_image(&mut store);
        let mut dir = OciDir::new();
        dir.export("app.dist", md, &store).unwrap();

        let tmp = std::env::temp_dir().join(format!("comt-oci-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        dir.save(&tmp).unwrap();

        assert!(tmp.join("oci-layout").exists());
        assert!(tmp.join("index.json").exists());

        let back = OciDir::load(&tmp).unwrap();
        assert_eq!(back.index, dir.index);
        assert_eq!(back.blobs.len(), dir.blobs.len());
        assert_eq!(back.resolve("app.dist").unwrap(), md);

        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn load_detects_corrupt_blob() {
        let mut store = BlobStore::new();
        let md = tiny_image(&mut store);
        let mut dir = OciDir::new();
        dir.export("app.dist", md, &store).unwrap();

        let tmp = std::env::temp_dir().join(format!("comt-oci-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        dir.save(&tmp).unwrap();

        // Corrupt one blob file.
        let blob_dir = tmp.join("blobs").join("sha256");
        let victim = std::fs::read_dir(&blob_dir).unwrap().next().unwrap().unwrap();
        std::fs::write(victim.path(), b"corrupted!").unwrap();

        assert!(matches!(
            OciDir::load(&tmp),
            Err(LayoutError::DigestMismatch { .. })
        ));
        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn gc_drops_orphaned_blobs() {
        let mut store = BlobStore::new();
        let md = tiny_image(&mut store);
        let mut dir = OciDir::new();
        dir.export("app.dist", md, &store).unwrap();
        // Orphans: a stray blob and a replaced manifest generation.
        dir.blobs.put(Bytes::from_static(b"orphaned layer bytes"));
        let before = dir.blobs.len();
        let dropped = dir.gc();
        assert_eq!(dropped, 1);
        assert_eq!(dir.blobs.len(), before - 1);
        // Image still loads and flattens after GC.
        let img = dir.load_image("app.dist").unwrap();
        assert!(crate::flatten(&dir.blobs, &img).is_ok());
        // Idempotent.
        assert_eq!(dir.gc(), 0);
    }

    #[test]
    fn gc_refcounts_shared_layers_across_two_tags() {
        // Two tags sharing a base layer: dropping one tag must prune only
        // the blobs unique to it; the shared layer survives because the
        // other tag still reaches it (reachability is the refcount).
        let mut store = BlobStore::new();
        let mut base_fs = Vfs::new();
        base_fs
            .write_file_p("/lib/libm.so", Bytes::from_static(b"MATH"), 0o644)
            .unwrap();
        let base = ImageBuilder::from_scratch("x86_64")
            .with_layer_from_fs(&Vfs::new(), &base_fs)
            .commit(&mut store)
            .unwrap();
        let mut app_fs = base_fs.clone();
        app_fs
            .write_file_p("/app/run", Bytes::from_static(b"ELF"), 0o755)
            .unwrap();
        let app = ImageBuilder::from_base(&store, &base)
            .unwrap()
            .with_layer_from_fs(&base_fs, &app_fs)
            .commit(&mut store)
            .unwrap();

        let shared_layer = base.manifest.layers[0].parsed_digest().unwrap();
        let app_only_layer = app.manifest.layers[1].parsed_digest().unwrap();

        let mut dir = OciDir::new();
        dir.export("base:1", base.manifest_digest, &store).unwrap();
        dir.export("app:1", app.manifest_digest, &store).unwrap();

        // Both tags present: nothing is collectable.
        let (dead, bytes) = dir.gc_plan();
        assert!(dead.is_empty(), "{dead:?}");
        assert_eq!(bytes, 0);

        // Drop the app tag: exactly its manifest, config and unique layer
        // become unreachable; the shared base layer must NOT be listed.
        assert!(dir.index.remove_ref("app:1"));
        let (dead, bytes) = dir.gc_plan();
        assert_eq!(dead.len(), 3, "{dead:?}");
        assert!(dead.contains(&app.manifest_digest));
        assert!(dead.contains(&app_only_layer));
        assert!(!dead.contains(&shared_layer));
        assert!(bytes > 0);

        // Apply: the plan and the deletion agree, and the surviving tag
        // still loads and flattens.
        assert_eq!(dir.gc(), 3);
        assert!(dir.blobs.contains(&shared_layer));
        assert!(!dir.blobs.contains(&app_only_layer));
        let img = dir.load_image("base:1").unwrap();
        assert_eq!(crate::flatten(&dir.blobs, &img).unwrap(), base_fs);
    }

    #[test]
    fn multiple_refs_share_blobs() {
        let mut store = BlobStore::new();
        let md = tiny_image(&mut store);
        let mut dir = OciDir::new();
        dir.export("app:1", md, &store).unwrap();
        dir.export("app:1+coM", md, &store).unwrap();
        assert_eq!(dir.blobs.len(), 3); // shared closure
        assert_eq!(dir.index.ref_names(), vec!["app:1", "app:1+coM"]);
    }
}
