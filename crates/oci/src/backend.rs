//! The registry backend abstraction: one wire daemon, two stores.
//!
//! `comt-dist`'s server is generic over [`RegistryBackend`], so the same
//! protocol code serves the in-memory [`Registry`] (engine/VFS tests,
//! benches) and the crash-safe [`DiskRegistry`] (`comt serve` on a real
//! layout). The trait's contract encodes the durability story:
//!
//! * [`RegistryBackend::put_blob`] verifies the claimed digest against the
//!   bytes **in every build profile** and, for disk backends, makes the
//!   blob durable before returning — a killed daemon never forgets an
//!   acknowledged blob.
//! * [`RegistryBackend::put_manifest`] is staged: the tag becomes visible
//!   only after the whole closure is present and bit-verified, and a
//!   rejected publish leaves no trace.
//! * [`RegistryBackend::blob_handle`] returns a cheap handle so the server
//!   can drop its lock before the expensive part (file read + re-hash)
//!   happens in [`BlobHandle::read_verified`].

use crate::disk::DiskRegistry;
use crate::store::{Registry, RegistryError};
use bytes::Bytes;
use comt_digest::{Digest, Sha256};
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;

/// Chunk size for streaming reads of file-backed blobs. Large enough to
/// amortize syscalls, small enough that a streaming verify or copy never
/// holds more than this much of the blob in memory.
pub const BLOB_STREAM_CHUNK: usize = 256 * 1024;

/// Observe counter: bytes read from disk by file-backed blob handles.
/// The Range-GET regression test asserts on this — a ranged read must
/// cost ~the range, never the whole blob.
pub const FILE_BYTES_READ: &str = "oci.blob.file_bytes_read";

/// A cheap reference to a stored blob, resolvable to verified bytes
/// outside any registry lock.
#[derive(Debug, Clone)]
pub enum BlobHandle {
    /// The blob lives in memory; cloning `Bytes` is refcount-cheap.
    Resident(Bytes),
    /// The blob lives on disk; reading is deferred to the caller.
    File { path: PathBuf, len: u64 },
}

impl BlobHandle {
    pub fn len(&self) -> u64 {
        match self {
            BlobHandle::Resident(b) => b.len() as u64,
            BlobHandle::File { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the blob and verify its content against `want`. This is
    /// where the re-hash (and for disk handles, the file read) happens —
    /// call it after releasing the registry lock. Use only where the whole
    /// blob is genuinely needed in memory (LRU admission, manifest reads);
    /// the serve path streams via [`BlobHandle::stream_verified`] and
    /// [`BlobHandle::read_range`] instead.
    pub fn read_verified(&self, want: &Digest) -> Result<Bytes, RegistryError> {
        let data = match self {
            BlobHandle::Resident(b) => b.clone(),
            BlobHandle::File { path, .. } => {
                let data = std::fs::read(path)
                    .map_err(|e| RegistryError::Storage(format!("{}: {e}", path.display())))?;
                comt_observe::global().count(FILE_BYTES_READ, data.len() as u64);
                Bytes::from(data)
            }
        };
        if Digest::of(&data) != *want {
            return Err(RegistryError::DigestMismatch(want.to_string()));
        }
        Ok(data)
    }

    /// A chunked [`Read`] over the blob. Resident handles read from the
    /// shared buffer; file handles read from disk in whatever chunk size
    /// the caller brings — nothing is slurped up front.
    pub fn reader(&self) -> Result<BlobReader, RegistryError> {
        match self {
            BlobHandle::Resident(b) => Ok(BlobReader::Resident {
                data: b.clone(),
                pos: 0,
            }),
            BlobHandle::File { path, .. } => std::fs::File::open(path)
                .map(BlobReader::File)
                .map_err(|e| RegistryError::Storage(format!("{}: {e}", path.display()))),
        }
    }

    /// Verify the blob's content against `want` without materializing it:
    /// hash in [`BLOB_STREAM_CHUNK`]-sized pieces and discard. Peak memory
    /// is one chunk regardless of blob size. Returns the byte count hashed.
    pub fn stream_verified(&self, want: &Digest) -> Result<u64, RegistryError> {
        let mut reader = self.reader()?;
        let mut hasher = Sha256::new();
        let mut buf = vec![0u8; BLOB_STREAM_CHUNK.min(self.len().max(1) as usize)];
        let mut total = 0u64;
        loop {
            let n = reader
                .read(&mut buf)
                .map_err(|e| RegistryError::Storage(format!("stream blob: {e}")))?;
            if n == 0 {
                break;
            }
            hasher.update(&buf[..n]);
            total += n as u64;
        }
        if Digest::from_raw(hasher.finalize()) != *want {
            return Err(RegistryError::DigestMismatch(want.to_string()));
        }
        Ok(total)
    }

    /// Read only the half-open byte window `[start, end)`. Resident handles
    /// slice the shared buffer (zero-copy); file handles seek and read
    /// exactly the window — a ranged request for 1 KiB of a 2 GiB layer
    /// costs 1 KiB of I/O, not 2 GiB. The window is unverified by itself
    /// (a partial body cannot be checked against a whole-blob digest);
    /// clients verify the assembled blob.
    pub fn read_range(&self, start: u64, end: u64) -> Result<Bytes, RegistryError> {
        let total = self.len();
        if start > end || end > total {
            return Err(RegistryError::Storage(format!(
                "range {start}..{end} out of bounds for {total}-byte blob"
            )));
        }
        match self {
            BlobHandle::Resident(b) => Ok(b.slice(start as usize..end as usize)),
            BlobHandle::File { path, .. } => {
                let mut f = std::fs::File::open(path)
                    .map_err(|e| RegistryError::Storage(format!("{}: {e}", path.display())))?;
                f.seek(SeekFrom::Start(start))
                    .map_err(|e| RegistryError::Storage(format!("{}: seek: {e}", path.display())))?;
                let mut out = vec![0u8; (end - start) as usize];
                f.read_exact(&mut out)
                    .map_err(|e| RegistryError::Storage(format!("{}: {e}", path.display())))?;
                comt_observe::global().count(FILE_BYTES_READ, out.len() as u64);
                Ok(Bytes::from(out))
            }
        }
    }
}

/// Chunked reader over a [`BlobHandle`] (see [`BlobHandle::reader`]).
#[derive(Debug)]
pub enum BlobReader {
    Resident { data: Bytes, pos: usize },
    File(std::fs::File),
}

impl Read for BlobReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            BlobReader::Resident { data, pos } => {
                let rest = &data[(*pos).min(data.len())..];
                let n = rest.len().min(buf.len());
                buf[..n].copy_from_slice(&rest[..n]);
                *pos += n;
                Ok(n)
            }
            BlobReader::File(f) => {
                let n = f.read(buf)?;
                comt_observe::global().count(FILE_BYTES_READ, n as u64);
                Ok(n)
            }
        }
    }
}

/// Storage behind the wire-protocol daemon.
pub trait RegistryBackend: Send + 'static {
    /// Manifest digest for a wire tag key (`name:reference`).
    fn resolve(&self, key: &str) -> Option<Digest>;

    /// Whether a blob is already committed (HEAD dedupe probe).
    fn contains_blob(&self, digest: &Digest) -> bool;

    /// Cheap handle to a committed blob, if present.
    fn blob_handle(&self, digest: &Digest) -> Option<BlobHandle>;

    /// Verify `data` against the claimed `digest` and commit it (durably,
    /// for persistent backends). Returns `true` if newly stored.
    fn put_blob(&mut self, digest: Digest, data: Bytes) -> Result<bool, RegistryError>;

    /// Staged manifest publish: verify the closure, commit, expose the tag.
    fn put_manifest(&mut self, key: &str, manifest: Bytes) -> Result<Digest, RegistryError>;

    /// Digest of the chunkmap blob recorded for a layer blob, if any.
    /// Backends without sub-layer dedupe keep the default (`None`), which
    /// makes every chunkmap GET a 404 and pushes clients onto the full-blob
    /// fallback path.
    fn chunkmap_for(&self, layer: &Digest) -> Option<Digest> {
        let _ = layer;
        None
    }

    /// Record `map` as the chunkmap of `layer`, storing its bytes as a
    /// normal content-addressed blob. The association must survive exactly
    /// as long as the layer blob does (gc ties their lifetimes together).
    fn put_chunkmap(&mut self, layer: Digest, map: Bytes) -> Result<Digest, RegistryError> {
        let _ = (layer, map);
        Err(RegistryError::Storage(
            "this backend does not support chunkmaps".into(),
        ))
    }

    /// Committed blob count (startup banner / stats).
    fn blob_count(&self) -> usize;

    /// Visible tag count (startup banner / stats).
    fn tag_count(&self) -> usize;
}

impl RegistryBackend for Registry {
    fn resolve(&self, key: &str) -> Option<Digest> {
        Registry::resolve(self, key)
    }

    fn contains_blob(&self, digest: &Digest) -> bool {
        self.store().contains(digest)
    }

    fn blob_handle(&self, digest: &Digest) -> Option<BlobHandle> {
        self.store().get(digest).map(BlobHandle::Resident)
    }

    fn put_blob(&mut self, digest: Digest, data: Bytes) -> Result<bool, RegistryError> {
        let fresh = !self.store().contains(&digest);
        self.store_mut().put_verified(digest, data)?;
        Ok(fresh)
    }

    fn put_manifest(&mut self, key: &str, manifest: Bytes) -> Result<Digest, RegistryError> {
        self.publish_manifest(key, manifest)
    }

    fn chunkmap_for(&self, layer: &Digest) -> Option<Digest> {
        Registry::chunkmap_for(self, layer)
    }

    fn put_chunkmap(&mut self, layer: Digest, map: Bytes) -> Result<Digest, RegistryError> {
        Registry::put_chunkmap(self, layer, map)
    }

    fn blob_count(&self) -> usize {
        self.store().len()
    }

    fn tag_count(&self) -> usize {
        self.tags().len()
    }
}

impl RegistryBackend for DiskRegistry {
    fn resolve(&self, key: &str) -> Option<Digest> {
        DiskRegistry::resolve(self, key)
    }

    fn contains_blob(&self, digest: &Digest) -> bool {
        self.store().contains(digest)
    }

    fn blob_handle(&self, digest: &Digest) -> Option<BlobHandle> {
        let path = self.store().blob_path(digest);
        let len = self.store().blob_len(digest)?;
        Some(BlobHandle::File { path, len })
    }

    fn put_blob(&mut self, digest: Digest, data: Bytes) -> Result<bool, RegistryError> {
        self.store().put_blob(&digest, &data).map_err(|e| match e {
            crate::layout::LayoutError::DigestMismatch { .. } => {
                RegistryError::DigestMismatch(digest.to_string())
            }
            other => RegistryError::Storage(other.to_string()),
        })
    }

    fn put_manifest(&mut self, key: &str, manifest: Bytes) -> Result<Digest, RegistryError> {
        self.publish_manifest(key, manifest)
    }

    fn chunkmap_for(&self, layer: &Digest) -> Option<Digest> {
        DiskRegistry::chunkmap_for(self, layer)
    }

    fn put_chunkmap(&mut self, layer: Digest, map: Bytes) -> Result<Digest, RegistryError> {
        DiskRegistry::put_chunkmap(self, layer, map)
    }

    fn blob_count(&self) -> usize {
        self.store().digests().map(|v| v.len()).unwrap_or(0)
    }

    fn tag_count(&self) -> usize {
        self.tags().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlobStore;

    #[test]
    fn resident_handle_verifies() {
        let data = Bytes::from_static(b"payload");
        let d = Digest::of(&data);
        let h = BlobHandle::Resident(data.clone());
        assert_eq!(h.len(), 7);
        assert_eq!(h.read_verified(&d).unwrap(), data);
        assert!(matches!(
            h.read_verified(&Digest::of(b"other")),
            Err(RegistryError::DigestMismatch(_))
        ));
    }

    #[test]
    fn file_handle_streams_and_ranges() {
        let dir = std::env::temp_dir().join(format!("comt-backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let payload: Vec<u8> = (0..BLOB_STREAM_CHUNK * 2 + 77).map(|i| (i % 241) as u8).collect();
        let d = Digest::of(&payload);
        let path = dir.join("blob");
        std::fs::write(&path, &payload).unwrap();
        let h = BlobHandle::File {
            path: path.clone(),
            len: payload.len() as u64,
        };

        // Streaming verify hashes every byte without materializing.
        assert_eq!(h.stream_verified(&d).unwrap(), payload.len() as u64);
        assert!(matches!(
            h.stream_verified(&Digest::of(b"other")),
            Err(RegistryError::DigestMismatch(_))
        ));

        // Ranged reads return exactly the window.
        let w = h.read_range(100, 612).unwrap();
        assert_eq!(&w[..], &payload[100..612]);
        assert!(h.read_range(10, 5).is_err());
        assert!(h.read_range(0, payload.len() as u64 + 1).is_err());

        // The chunked reader round-trips the full content.
        let mut via_reader = Vec::new();
        std::io::Read::read_to_end(&mut h.reader().unwrap(), &mut via_reader).unwrap();
        assert_eq!(via_reader, payload);

        // Resident handles slice zero-copy and stream-verify too.
        let r = BlobHandle::Resident(Bytes::from(payload.clone()));
        assert_eq!(r.stream_verified(&d).unwrap(), payload.len() as u64);
        assert_eq!(&r.read_range(7, 19).unwrap()[..], &payload[7..19]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_backend_put_blob_rejects_poison_in_release_too() {
        // Regression for the put_prehashed debug_assert hole: the backend
        // trust boundary must verify in every build profile. This test is
        // meaningful precisely when run with --release.
        let mut reg = Registry::new();
        let claimed = Digest::of(b"what the client promised");
        let err = RegistryBackend::put_blob(&mut reg, claimed, Bytes::from_static(b"poison"))
            .unwrap_err();
        assert!(matches!(err, RegistryError::DigestMismatch(_)));
        assert!(!reg.store().contains(&claimed));

        // put_verified is the same boundary on the raw store.
        let mut store = BlobStore::new();
        assert!(store
            .put_verified(claimed, Bytes::from_static(b"poison"))
            .is_err());
        assert!(store.is_empty());
        let ok = Bytes::from_static(b"honest bytes");
        let d = Digest::of(&ok);
        assert_eq!(store.put_verified(d, ok.clone()).unwrap(), d);
        assert_eq!(store.get(&d).unwrap(), ok);
    }
}
