//! The registry backend abstraction: one wire daemon, two stores.
//!
//! `comt-dist`'s server is generic over [`RegistryBackend`], so the same
//! protocol code serves the in-memory [`Registry`] (engine/VFS tests,
//! benches) and the crash-safe [`DiskRegistry`] (`comt serve` on a real
//! layout). The trait's contract encodes the durability story:
//!
//! * [`RegistryBackend::put_blob`] verifies the claimed digest against the
//!   bytes **in every build profile** and, for disk backends, makes the
//!   blob durable before returning — a killed daemon never forgets an
//!   acknowledged blob.
//! * [`RegistryBackend::put_manifest`] is staged: the tag becomes visible
//!   only after the whole closure is present and bit-verified, and a
//!   rejected publish leaves no trace.
//! * [`RegistryBackend::blob_handle`] returns a cheap handle so the server
//!   can drop its lock before the expensive part (file read + re-hash)
//!   happens in [`BlobHandle::read_verified`].

use crate::disk::DiskRegistry;
use crate::store::{Registry, RegistryError};
use bytes::Bytes;
use comt_digest::Digest;
use std::path::PathBuf;

/// A cheap reference to a stored blob, resolvable to verified bytes
/// outside any registry lock.
#[derive(Debug, Clone)]
pub enum BlobHandle {
    /// The blob lives in memory; cloning `Bytes` is refcount-cheap.
    Resident(Bytes),
    /// The blob lives on disk; reading is deferred to the caller.
    File { path: PathBuf, len: u64 },
}

impl BlobHandle {
    pub fn len(&self) -> u64 {
        match self {
            BlobHandle::Resident(b) => b.len() as u64,
            BlobHandle::File { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the blob and verify its content against `want`. This is
    /// where the re-hash (and for disk handles, the file read) happens —
    /// call it after releasing the registry lock.
    pub fn read_verified(&self, want: &Digest) -> Result<Bytes, RegistryError> {
        let data = match self {
            BlobHandle::Resident(b) => b.clone(),
            BlobHandle::File { path, .. } => std::fs::read(path)
                .map(Bytes::from)
                .map_err(|e| RegistryError::Storage(format!("{}: {e}", path.display())))?,
        };
        if Digest::of(&data) != *want {
            return Err(RegistryError::DigestMismatch(want.to_string()));
        }
        Ok(data)
    }
}

/// Storage behind the wire-protocol daemon.
pub trait RegistryBackend: Send + 'static {
    /// Manifest digest for a wire tag key (`name:reference`).
    fn resolve(&self, key: &str) -> Option<Digest>;

    /// Whether a blob is already committed (HEAD dedupe probe).
    fn contains_blob(&self, digest: &Digest) -> bool;

    /// Cheap handle to a committed blob, if present.
    fn blob_handle(&self, digest: &Digest) -> Option<BlobHandle>;

    /// Verify `data` against the claimed `digest` and commit it (durably,
    /// for persistent backends). Returns `true` if newly stored.
    fn put_blob(&mut self, digest: Digest, data: Bytes) -> Result<bool, RegistryError>;

    /// Staged manifest publish: verify the closure, commit, expose the tag.
    fn put_manifest(&mut self, key: &str, manifest: Bytes) -> Result<Digest, RegistryError>;

    /// Committed blob count (startup banner / stats).
    fn blob_count(&self) -> usize;

    /// Visible tag count (startup banner / stats).
    fn tag_count(&self) -> usize;
}

impl RegistryBackend for Registry {
    fn resolve(&self, key: &str) -> Option<Digest> {
        Registry::resolve(self, key)
    }

    fn contains_blob(&self, digest: &Digest) -> bool {
        self.store().contains(digest)
    }

    fn blob_handle(&self, digest: &Digest) -> Option<BlobHandle> {
        self.store().get(digest).map(BlobHandle::Resident)
    }

    fn put_blob(&mut self, digest: Digest, data: Bytes) -> Result<bool, RegistryError> {
        let fresh = !self.store().contains(&digest);
        self.store_mut().put_verified(digest, data)?;
        Ok(fresh)
    }

    fn put_manifest(&mut self, key: &str, manifest: Bytes) -> Result<Digest, RegistryError> {
        self.publish_manifest(key, manifest)
    }

    fn blob_count(&self) -> usize {
        self.store().len()
    }

    fn tag_count(&self) -> usize {
        self.tags().len()
    }
}

impl RegistryBackend for DiskRegistry {
    fn resolve(&self, key: &str) -> Option<Digest> {
        DiskRegistry::resolve(self, key)
    }

    fn contains_blob(&self, digest: &Digest) -> bool {
        self.store().contains(digest)
    }

    fn blob_handle(&self, digest: &Digest) -> Option<BlobHandle> {
        let path = self.store().blob_path(digest);
        let len = self.store().blob_len(digest)?;
        Some(BlobHandle::File { path, len })
    }

    fn put_blob(&mut self, digest: Digest, data: Bytes) -> Result<bool, RegistryError> {
        self.store().put_blob(&digest, &data).map_err(|e| match e {
            crate::layout::LayoutError::DigestMismatch { .. } => {
                RegistryError::DigestMismatch(digest.to_string())
            }
            other => RegistryError::Storage(other.to_string()),
        })
    }

    fn put_manifest(&mut self, key: &str, manifest: Bytes) -> Result<Digest, RegistryError> {
        self.publish_manifest(key, manifest)
    }

    fn blob_count(&self) -> usize {
        self.store().digests().map(|v| v.len()).unwrap_or(0)
    }

    fn tag_count(&self) -> usize {
        self.tags().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlobStore;

    #[test]
    fn resident_handle_verifies() {
        let data = Bytes::from_static(b"payload");
        let d = Digest::of(&data);
        let h = BlobHandle::Resident(data.clone());
        assert_eq!(h.len(), 7);
        assert_eq!(h.read_verified(&d).unwrap(), data);
        assert!(matches!(
            h.read_verified(&Digest::of(b"other")),
            Err(RegistryError::DigestMismatch(_))
        ));
    }

    #[test]
    fn mem_backend_put_blob_rejects_poison_in_release_too() {
        // Regression for the put_prehashed debug_assert hole: the backend
        // trust boundary must verify in every build profile. This test is
        // meaningful precisely when run with --release.
        let mut reg = Registry::new();
        let claimed = Digest::of(b"what the client promised");
        let err = RegistryBackend::put_blob(&mut reg, claimed, Bytes::from_static(b"poison"))
            .unwrap_err();
        assert!(matches!(err, RegistryError::DigestMismatch(_)));
        assert!(!reg.store().contains(&claimed));

        // put_verified is the same boundary on the raw store.
        let mut store = BlobStore::new();
        assert!(store
            .put_verified(claimed, Bytes::from_static(b"poison"))
            .is_err());
        assert!(store.is_empty());
        let ok = Bytes::from_static(b"honest bytes");
        let d = Digest::of(&ok);
        assert_eq!(store.put_verified(d, ok.clone()).unwrap(), d);
        assert_eq!(store.get(&d).unwrap(), ok);
    }
}
